//! Property tests for the interned hot path.
//!
//! Three claims the perf refactor rests on, each exercised over generated
//! input rather than fixed cases:
//!
//! 1. **Interner determinism** — [`SymbolTable`] ids depend only on the key
//!    *set*: insertion order and thread width never change them.
//! 2. **Behavioural equivalence** — the interned, scratch-reusing linker
//!    returns exactly what the retired String-based [`ReferenceLinker`]
//!    returns, on arbitrary UTF-8 (Latin, symbols, CJK) mentions and
//!    contexts, via both the shared-memo `link` and the scratch `link_with`.
//! 3. **Width invariance** — `annotate_batch` output is identical at thread
//!    widths 1 and 4 (the morsel scheduler only moves work, never bytes; the
//!    byte-level goldens pin the same property end-to-end via `make golden`).

use dim_par::Parallelism;
use dimkb::{DimUnitKb, SymbolTable};
use dimlink::reference::ReferenceLinker;
use dimlink::{Annotator, LinkerConfig, ScratchSpace, UnitLinker};
use proptest::prelude::*;

/// Unit-shaped surface strings: Latin letters, digits, SI punctuation, and
/// the CJK range the KB's Chinese aliases live in.
const MENTION: &str = "[a-zA-Z0-9/²³·°µΩ 一-龥]{0,10}";

/// Free-text context: the full printable space (ASCII, Latin-1, CJK, emoji).
const CONTEXT: &str = "\\PC{0,60}";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Interner ids are a pure function of the key set: forward, reversed,
    /// and pre-sorted insertion all build the identical table.
    #[test]
    fn interner_ids_are_insertion_order_independent(
        keys in prop::collection::vec(MENTION, 0..24)
    ) {
        let forward = SymbolTable::build(keys.clone());
        let mut reversed = keys.clone();
        reversed.reverse();
        let backward = SymbolTable::build(reversed);
        let mut sorted = keys.clone();
        sorted.sort();
        let presorted = SymbolTable::build(sorted);
        prop_assert_eq!(forward.strings(), backward.strings());
        prop_assert_eq!(forward.strings(), presorted.strings());
        for k in &keys {
            prop_assert!(forward.get(k).is_some(), "built key must resolve: {k:?}");
            prop_assert_eq!(forward.get(k), backward.get(k));
            prop_assert_eq!(forward.get(k), presorted.get(k));
        }
    }

    /// Building the same table concurrently under a width-4 morsel scheduler
    /// yields bit-identical ids on every worker — interning is safe to race.
    #[test]
    fn interner_ids_identical_across_thread_widths(
        keys in prop::collection::vec(MENTION, 0..24)
    ) {
        let sequential = SymbolTable::build(keys.clone());
        let lanes = [0u8, 1, 2, 3];
        let concurrent =
            dim_par::par_map(Parallelism::new(4), &lanes, |_| SymbolTable::build(keys.clone()));
        for table in &concurrent {
            prop_assert_eq!(table.strings(), sequential.strings());
            for k in &keys {
                prop_assert_eq!(table.get(k), sequential.get(k));
            }
        }
    }
}

proptest! {
    // Linking runs the full fuzzy pipeline per case; fewer, richer cases.
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The interned linker is result-equivalent to the String-based
    /// reference on arbitrary mentions/contexts, through both entry points.
    #[test]
    fn interned_linker_matches_reference_on_arbitrary_utf8(
        mention in MENTION,
        context in CONTEXT,
    ) {
        let kb = DimUnitKb::shared();
        let config = LinkerConfig::default();
        let reference = ReferenceLinker::new(kb.clone(), None, config);
        let optimized = UnitLinker::new(kb, None, config);
        let mut scratch = ScratchSpace::new();
        let want = reference.link(&mention, &context);
        prop_assert_eq!(&want, &optimized.link(&mention, &context));
        prop_assert_eq!(&want, &optimized.link_with(&mention, &context, &mut scratch));
        // A second pass through the now-warm memo must not change anything.
        prop_assert_eq!(&want, &optimized.link(&mention, &context));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batch annotation is thread-width invariant: widths 1 and 4 produce
    /// equal mention lists on arbitrary sentence batches.
    #[test]
    fn annotate_batch_is_identical_at_widths_1_and_4(
        texts in prop::collection::vec("\\PC{0,48}", 0..12)
    ) {
        let annotator = || {
            Annotator::new(UnitLinker::new(
                DimUnitKb::shared(),
                None,
                LinkerConfig::default(),
            ))
        };
        let sequential = annotator().annotate_batch(&texts, Parallelism::new(1));
        let wide = annotator().annotate_batch(&texts, Parallelism::new(4));
        prop_assert_eq!(sequential, wide);
    }
}
