//! The before/after repair-accuracy experiment.
//!
//! A deterministic simulated equation-generating model ([`BeamSim`])
//! emits a small ranked beam per problem: the gold equation plus
//! corruptions in the classes NUMCoT identifies as the dominant failure
//! modes (wrong quantity picked, wrong operator, dropped unit-conversion
//! step). With probability `noise` a corruption outranks gold. The
//! *before* column scores the beam's top candidate; the *after* column
//! scores the [`crate::VerifiedSolver`] policy — first candidate that
//! survives both checker layers, top candidate when none does. Because
//! gold equations always verify (a tested invariant), the after column
//! can never fall below the before column on any problem.

use crate::solution::verify_prediction;
use dim_mwp::solve::prediction_correct;
use dim_mwp::{CandidateSolver, MwpProblem, MwpSolver, Node, Op, Prediction};
use dim_par::{par_map_indexed, seed_for, Parallelism};
use dimkb::DimUnitKb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-item seed stream salt for candidate generation.
const BEAM_SALT: u64 = 0x5EAB;

/// Probability that a corruption outranks gold in the simulated beam.
pub const DEFAULT_NOISE: f64 = 0.5;

/// One row of the before/after repair table.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairRow {
    /// Evaluation-set label.
    pub dataset: &'static str,
    /// Problems evaluated.
    pub n: usize,
    /// Top-candidate accuracy without verification.
    pub before: f64,
    /// Accuracy with the rejection/repair pass.
    pub after: f64,
    /// Problems whose top candidate failed verification.
    pub rejected: usize,
    /// Problems where a lower-ranked candidate was promoted.
    pub promoted: usize,
}

/// Swaps two quantity references throughout the tree.
fn swap_quantities(node: &Node, a: usize, b: usize) -> Node {
    node.map_q(&mut |i| {
        if i == a {
            Node::Q(b)
        } else if i == b {
            Node::Q(a)
        } else {
            Node::Q(i)
        }
    })
}

/// Flips the operator of the `target`-th binary node (preorder).
fn flip_op(node: &Node, target: usize, next: &mut usize) -> Node {
    match node {
        Node::Q(i) => Node::Q(*i),
        Node::Const(c) => Node::Const(*c),
        Node::Bin(op, l, r) => {
            let here = *next;
            *next += 1;
            let op = if here == target {
                match op {
                    Op::Add => Op::Mul,
                    Op::Mul => Op::Add,
                    Op::Sub => Op::Div,
                    Op::Div => Op::Sub,
                }
            } else {
                *op
            };
            Node::bin(op, flip_op(l, target, next), flip_op(r, target, next))
        }
    }
}

/// Drops the first `Q(i) ∘ const` wrap (a unit-conversion step).
fn strip_conversion(node: &Node, stripped: &mut bool) -> Node {
    match node {
        Node::Q(i) => Node::Q(*i),
        Node::Const(c) => Node::Const(*c),
        Node::Bin(op, l, r) => {
            if !*stripped {
                if let (Op::Mul | Op::Div, Node::Q(i), Node::Const(_)) = (op, &**l, &**r) {
                    *stripped = true;
                    return Node::Q(*i);
                }
            }
            Node::bin(*op, strip_conversion(l, stripped), strip_conversion(r, stripped))
        }
    }
}

fn literals(problem: &MwpProblem) -> Vec<String> {
    problem.quantities.iter().map(|q| q.equation_literal()).collect()
}

/// The deterministic simulated beam for one problem.
pub fn beam_candidates(problem: &MwpProblem, seed: u64, noise: f64, k: usize) -> Vec<Prediction> {
    let mut rng = StdRng::seed_from_u64(seed);
    let lits = literals(problem);
    let gold = Prediction::Equation(problem.equation.render(&lits));

    let nq = problem.quantities.len();
    let corrupt_swap = if nq >= 2 {
        let a = rng.gen_range(0..nq);
        let step = rng.gen_range(1..nq);
        let b = (a + step) % nq;
        Some(Prediction::Equation(swap_quantities(&problem.equation, a, b).render(&lits)))
    } else {
        None
    };
    let corrupt_op = {
        let ops = problem.equation.op_count();
        if ops > 0 {
            let target = rng.gen_range(0..ops);
            let mut next = 0usize;
            Some(Prediction::Equation(flip_op(&problem.equation, target, &mut next).render(&lits)))
        } else {
            None
        }
    };
    let corrupt_conv = if problem.conversions.is_empty() {
        None
    } else {
        let mut stripped = false;
        let t = strip_conversion(&problem.equation, &mut stripped);
        if stripped {
            Some(Prediction::Equation(t.render(&lits)))
        } else {
            None
        }
    };

    let mut corruptions: Vec<Prediction> = Vec::new();
    // A dropped conversion is the most NUMCoT-typical slip; prefer it
    // when the problem has one.
    for c in [corrupt_conv, corrupt_swap, corrupt_op].into_iter().flatten() {
        if !corruptions.contains(&c) {
            corruptions.push(c);
        }
    }

    let wrong_top = !corruptions.is_empty() && rng.gen_bool(noise.clamp(0.0, 1.0));
    let mut out: Vec<Prediction> = Vec::new();
    let mut rest = corruptions.into_iter();
    if wrong_top {
        out.extend(rest.next());
        out.push(gold);
    } else {
        out.push(gold);
    }
    out.extend(rest);
    out.truncate(k.max(1));
    out
}

/// The simulated equation-generating model, as a [`CandidateSolver`]
/// (per-problem seed streams keyed by the stable problem id, so the
/// beam is identical at every thread width).
pub struct BeamSim {
    /// Master seed.
    pub seed: u64,
    /// Probability a corruption outranks gold.
    pub noise: f64,
}

impl MwpSolver for BeamSim {
    fn name(&self) -> String {
        "beam-sim".into()
    }

    fn solve(&mut self, problem: &MwpProblem) -> Prediction {
        self.candidates(problem, 1).into_iter().next().unwrap_or(Prediction::None)
    }
}

impl CandidateSolver for BeamSim {
    fn candidates(&mut self, problem: &MwpProblem, k: usize) -> Vec<Prediction> {
        beam_candidates(problem, seed_for(self.seed ^ BEAM_SALT, problem.id), self.noise, k)
    }
}

/// Scores one evaluation set before and after the rejection/repair
/// pass. Deterministic at every thread width: candidate generation and
/// verification are pure per-item functions over seeded streams.
pub fn repair_row(
    dataset: &'static str,
    problems: &[MwpProblem],
    kb: &DimUnitKb,
    seed: u64,
    noise: f64,
    par: Parallelism,
) -> RepairRow {
    let per_item = par_map_indexed(par, problems, |i, p| {
        let beam =
            beam_candidates(p, seed_for(seed ^ BEAM_SALT, i as u64), noise, crate::solver::BEAM);
        let accepted = |c: &Prediction| {
            verify_prediction(p, kb, c).is_some_and(|v| v.accepted())
        };
        let top_ok = beam.first().is_some_and(|c| prediction_correct(p, c));
        let pick = beam.iter().position(accepted).unwrap_or(0);
        let pick_ok = beam.get(pick).is_some_and(|c| prediction_correct(p, c));
        let top_rejected = beam.first().is_some_and(|c| !accepted(c));
        (top_ok, pick_ok, top_rejected, pick > 0)
    });
    let n = problems.len().max(1);
    let before = per_item.iter().filter(|r| r.0).count() as f64 / n as f64;
    let after = per_item.iter().filter(|r| r.1).count() as f64 / n as f64;
    RepairRow {
        dataset,
        n: problems.len(),
        before,
        after,
        rejected: per_item.iter().filter(|r| r.2).count(),
        promoted: per_item.iter().filter(|r| r.3).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mwp::{generate, GenConfig, Source};

    fn problems() -> Vec<MwpProblem> {
        generate(Source::Math23k, &GenConfig { count: 80, seed: 21 })
    }

    #[test]
    fn beams_are_deterministic_and_contain_gold() {
        let ps = problems();
        for (i, p) in ps.iter().enumerate() {
            let a = beam_candidates(p, seed_for(9, i as u64), 0.5, 4);
            let b = beam_candidates(p, seed_for(9, i as u64), 0.5, 4);
            assert_eq!(a, b);
            let gold = Prediction::Equation(p.equation_text());
            assert!(a.contains(&gold), "beam must contain gold for #{}", p.id);
        }
    }

    #[test]
    fn repair_never_hurts_and_sometimes_helps() {
        let kb = DimUnitKb::shared();
        let ps = problems();
        let row = repair_row("t", &ps, &kb, 2024, 0.5, Parallelism::new(1));
        assert!(row.after >= row.before, "{row:?}");
        assert!(row.after > row.before, "with noise 0.5 some repair should land: {row:?}");
        assert!(row.rejected > 0 && row.promoted > 0, "{row:?}");
    }

    #[test]
    fn rows_are_identical_across_thread_widths() {
        let kb = DimUnitKb::shared();
        let ps = problems();
        let w1 = repair_row("t", &ps, &kb, 2024, 0.5, Parallelism::new(1));
        let w4 = repair_row("t", &ps, &kb, 2024, 0.5, Parallelism::new(4));
        assert_eq!(w1, w4);
    }

    #[test]
    fn zero_noise_beam_keeps_gold_on_top() {
        let kb = DimUnitKb::shared();
        let ps = problems();
        let row = repair_row("t", &ps, &kb, 7, 0.0, Parallelism::new(1));
        assert_eq!(row.before, 1.0);
        assert_eq!(row.after, 1.0);
        assert_eq!(row.promoted, 0);
    }
}
