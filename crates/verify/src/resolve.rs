//! Leaf-dimension resolution: from problem quantities to dimension types
//! and linear SI scales, via the linked KB.
//!
//! Two subtleties make this more than a code→vector lookup:
//!
//! * **Implicit rates.** Chinese MWPs write rates as `每小时80千米`
//!   ("80 km *per hour*"): the quantity slot carries the unit `千米`
//!   (`L¹`), while the `per hour` lives in the text segment *before* the
//!   slot. Taking the annotated unit at face value would flag every gold
//!   travel problem. Resolution therefore scans the preceding segment for
//!   a trailing `每<unit>` marker and divides the quantity's vector (and
//!   scale) by the marker's: `每小时` + `千米` ⇒ `L¹T⁻¹`. A `每` followed
//!   by a counter word the KB does not know (`每车`, `每袋`) divides by
//!   dimensionless 1 — exactly the written semantics.
//! * **Marker scope.** A `每` marker distributes over later quantities in
//!   the same sentence: `每小时灌溉60亩，用水550升` makes *both* the area
//!   and the volume per-hour rates. A marker applies to the quantity it
//!   immediately precedes unconditionally; it persists to later
//!   quantities of a *different* dimension, while a quantity carrying the
//!   marker's own dimension (`行驶了5小时` after `每小时`) is read as the
//!   total and closes the scope. Sentence punctuation or a fresh `每`
//!   (resolvable or counter) also ends the previous scope.
//! * **Percent and bare counts.** Both are dimensionless with scale 1
//!   (arithmetic already uses the ratio value for percents).
//!
//! Affine units (temperature scales) have a dimension but no single
//! multiplicative scale; their scale resolves to [`Scales::Free`].

use crate::check::Ty;
use crate::scale::Scales;
use dim_mwp::{MwpProblem, ProblemQuantity, Seg};
use dimkb::{DimUnitKb, DimVec};

/// Longest surface form (in chars) tried after a `每` rate marker.
const MARKER_MAX_CHARS: usize = 6;

/// Dimension types and scales for every quantity of a problem, plus the
/// answer unit, resolved through the KB.
#[derive(Debug, Clone)]
pub struct ResolvedLeaves {
    /// Per-quantity dimension type; `None` = unresolvable unit.
    pub dims: Vec<Option<Ty>>,
    /// Per-quantity admissible scales.
    pub scales: Vec<Scales>,
    /// The answer unit's dimension type; `None` = unresolvable.
    pub answer_dim: Option<Ty>,
    /// The answer unit's admissible scales.
    pub answer_scale: Scales,
}

/// One resolved unit: dimension vector and linear SI scale (`None` for
/// affine conversions).
#[derive(Debug, Clone, Copy)]
struct UnitMeaning {
    dim: DimVec,
    scale: Option<f64>,
}

fn meaning_of_code(kb: &DimUnitKb, code: &str) -> Option<UnitMeaning> {
    let dim = kb.dim_of_code(code)?;
    Some(UnitMeaning { dim, scale: kb.linear_scale_of_code(code) })
}

fn meaning_of_surface(kb: &DimUnitKb, surface: &str) -> Option<UnitMeaning> {
    let dim = kb.dim_of_surface(surface)?;
    Some(UnitMeaning { dim, scale: kb.linear_scale_of_surface(surface) })
}

/// The longest KB-resolvable unit surface starting at the beginning of
/// `tail`, up to [`MARKER_MAX_CHARS`] characters.
fn longest_unit_prefix(kb: &DimUnitKb, tail: &str) -> Option<UnitMeaning> {
    let mut best = None;
    for (chars, (end, c)) in tail.char_indices().enumerate() {
        if chars >= MARKER_MAX_CHARS {
            break;
        }
        let slice = tail.get(..end + c.len_utf8())?;
        if let Some(meaning) = meaning_of_surface(kb, slice) {
            best = Some(meaning);
        }
    }
    best
}

/// What a text segment does to the active rate-marker scope.
enum MarkerSignal {
    /// No `每` and no sentence boundary: the previous scope persists.
    Keep,
    /// Sentence boundary without a new marker, or a `每` followed by an
    /// unresolvable counter word (`每车`): the previous scope ends.
    Clear,
    /// A resolvable `每<unit>` marker opens a new scope.
    Set(UnitMeaning),
}

/// Reads the trailing rate-marker signal of one text segment. Only the
/// text after the segment's last sentence-ending punctuation counts.
fn marker_signal(kb: &DimUnitKb, text: &str) -> MarkerSignal {
    let boundary = text
        .char_indices()
        .filter(|(_, c)| matches!(c, '。' | '？' | '！' | '；'))
        .map(|(i, c)| i + c.len_utf8())
        .next_back();
    let tail = boundary.and_then(|b| text.get(b..)).unwrap_or(text);
    match tail.rfind('每') {
        None => {
            if boundary.is_some() {
                MarkerSignal::Clear
            } else {
                MarkerSignal::Keep
            }
        }
        Some(pos) => {
            let after = tail.get(pos + '每'.len_utf8()..).unwrap_or("");
            match longest_unit_prefix(kb, after) {
                Some(m) => MarkerSignal::Set(m),
                None => MarkerSignal::Clear,
            }
        }
    }
}

/// Scans `text` for a trailing rate marker `每<unit>` and resolves the
/// unit surface through the KB (longest match). Returns `None` when
/// there is no resolvable marker — including the counter-word case
/// (`每车`). This is the *immediate* marker rule, used for the answer
/// unit and as the first layer of the per-quantity scope walk.
fn rate_marker(kb: &DimUnitKb, text: &str) -> Option<UnitMeaning> {
    match marker_signal(kb, text) {
        MarkerSignal::Set(m) => Some(m),
        _ => None,
    }
}

/// The dimension a quantity carries before any marker is applied, for
/// the scope-closing test. Percents don't participate in marker scopes.
fn base_dim(kb: &DimUnitKb, q: &ProblemQuantity) -> Option<DimVec> {
    if q.is_percent {
        return None;
    }
    match &q.unit_code {
        None => Some(DimVec::DIMENSIONLESS),
        Some(code) => kb.dim_of_code(code),
    }
}

/// The effective rate marker for each quantity, from a sequential walk
/// of the problem's segments. A marker in the immediately preceding
/// text applies unconditionally; a marker persisted from earlier in the
/// sentence applies only to quantities of a different dimension, and a
/// quantity carrying the marker's own dimension is the total that
/// closes the scope.
fn effective_markers(problem: &MwpProblem, kb: &DimUnitKb) -> Vec<Option<UnitMeaning>> {
    let mut out = vec![None; problem.quantities.len()];
    let mut active: Option<UnitMeaning> = None;
    let mut immediate: Option<UnitMeaning> = None;
    for seg in &problem.segs {
        match seg {
            Seg::Text(t) => match marker_signal(kb, t) {
                MarkerSignal::Set(m) => {
                    active = Some(m);
                    immediate = Some(m);
                }
                MarkerSignal::Clear => {
                    active = None;
                    immediate = None;
                }
                MarkerSignal::Keep => immediate = None,
            },
            Seg::Qty(i) => {
                let q = problem.quantities.get(*i);
                let dim = q.and_then(|q| base_dim(kb, q));
                if let (Some(slot), Some(_)) = (out.get_mut(*i), dim) {
                    if let Some(m) = immediate {
                        *slot = Some(m);
                    } else if let Some(m) = active {
                        if dim == Some(m.dim) {
                            // The total quantity of the per-<unit> scope.
                            active = None;
                        } else {
                            *slot = Some(m);
                        }
                    }
                }
                immediate = None;
            }
            _ => immediate = None,
        }
    }
    out
}

/// The text segment immediately preceding segment `pos`, if any.
fn preceding_text(problem: &MwpProblem, pos: usize) -> Option<&str> {
    match pos.checked_sub(1).and_then(|p| problem.segs.get(p)) {
        Some(Seg::Text(t)) => Some(t.as_str()),
        _ => None,
    }
}

/// Divides a base unit meaning by an optional rate marker.
fn apply_marker(base: UnitMeaning, marker: Option<UnitMeaning>) -> (Ty, Scales) {
    let (dim, scale) = match marker {
        None => (base.dim, base.scale),
        Some(m) => (
            base.dim / m.dim,
            match (base.scale, m.scale) {
                (Some(b), Some(ms)) if ms != 0.0 => Some(b / ms),
                _ => None,
            },
        ),
    };
    let scales = match scale {
        Some(f) => Scales::one(f),
        None => Scales::Free,
    };
    (Ty::Dim(dim), scales)
}

/// Resolves one quantity under an already-scoped rate marker.
fn resolve_quantity(
    kb: &DimUnitKb,
    q: &ProblemQuantity,
    marker: Option<UnitMeaning>,
) -> (Option<Ty>, Scales) {
    if q.is_percent {
        return (Some(Ty::Dim(DimVec::DIMENSIONLESS)), Scales::one(1.0));
    }
    let base = match &q.unit_code {
        None => UnitMeaning { dim: DimVec::DIMENSIONLESS, scale: Some(1.0) },
        Some(code) => match meaning_of_code(kb, code) {
            Some(m) => m,
            None => return (None, Scales::Free),
        },
    };
    let (ty, scales) = apply_marker(base, marker);
    (Some(ty), scales)
}

/// Resolves every quantity and the answer unit of `problem` through
/// `kb`, applying the scoped rate-marker rule from the problem text.
pub fn resolve_problem(problem: &MwpProblem, kb: &DimUnitKb) -> ResolvedLeaves {
    let markers = effective_markers(problem, kb);
    let mut dims = Vec::with_capacity(problem.quantities.len());
    let mut scales = Vec::with_capacity(problem.quantities.len());
    for (i, q) in problem.quantities.iter().enumerate() {
        let marker = markers.get(i).copied().flatten();
        let (ty, sc) = resolve_quantity(kb, q, marker);
        dims.push(ty);
        scales.push(sc);
    }
    let (answer_dim, answer_scale) = resolve_answer(problem, kb);
    ResolvedLeaves { dims, scales, answer_dim, answer_scale }
}

fn resolve_answer(problem: &MwpProblem, kb: &DimUnitKb) -> (Option<Ty>, Scales) {
    let base = match &problem.answer_unit_code {
        None => UnitMeaning { dim: DimVec::DIMENSIONLESS, scale: Some(1.0) },
        Some(code) => match meaning_of_code(kb, code) {
            Some(m) => m,
            None => return (None, Scales::Free),
        },
    };
    let pos = problem.segs.iter().position(|s| matches!(s, Seg::AnswerUnit));
    let marker = pos
        .and_then(|p| preceding_text(problem, p))
        .and_then(|t| rate_marker(kb, t));
    let (ty, scales) = apply_marker(base, marker);
    (Some(ty), scales)
}

/// Cap on candidate readings per quantity in the repair search.
const CANDIDATE_CAP: usize = 4;

/// Candidate readings for quantity `i`: the primary reading first, then
/// alternative units the quantity's surface form may refer to through
/// the naming dictionary (the repair search's same-surface retry set —
/// `分` as minute vs. cent). The quantity's rate marker, if any, applies
/// to every reading. Distinct dimensions only, capped at
/// [`CANDIDATE_CAP`].
pub(crate) fn leaf_candidates(
    problem: &MwpProblem,
    kb: &DimUnitKb,
    i: usize,
) -> Vec<(Ty, Scales)> {
    let Some(q) = problem.quantities.get(i) else {
        return Vec::new();
    };
    if q.is_percent || q.unit_code.is_none() {
        let (ty, sc) = resolve_quantity(kb, q, None);
        return match ty {
            Some(t) => vec![(t, sc)],
            None => Vec::new(),
        };
    }
    let marker = effective_markers(problem, kb).get(i).copied().flatten();

    let mut out: Vec<(Ty, Scales)> = Vec::new();
    let push = |m: UnitMeaning, out: &mut Vec<(Ty, Scales)>| {
        let (ty, sc) = apply_marker(m, marker);
        if out.len() < CANDIDATE_CAP && !out.iter().any(|(t, _)| *t == ty) {
            out.push((ty, sc));
        }
    };
    if let Some(m) = q.unit_code.as_deref().and_then(|c| meaning_of_code(kb, c)) {
        push(m, &mut out);
    }
    for &id in kb.lookup(&q.surface) {
        let u = kb.unit(id);
        let scale = if u.conversion.is_affine() { None } else { Some(u.conversion.factor) };
        push(UnitMeaning { dim: u.dim, scale }, &mut out);
    }
    out
}

/// Resolves a bare quantity list (no problem text, so no rate markers):
/// the form used by the `POST /verify` endpoint, where units arrive as
/// already-linked KB codes.
pub fn resolve_quantities(
    quantities: &[ProblemQuantity],
    kb: &DimUnitKb,
) -> (Vec<Option<Ty>>, Vec<Scales>) {
    let mut dims = Vec::with_capacity(quantities.len());
    let mut scales = Vec::with_capacity(quantities.len());
    for q in quantities {
        let (ty, sc) = resolve_quantity(kb, q, None);
        dims.push(ty);
        scales.push(sc);
    }
    (dims, scales)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mwp::{generate, GenConfig, Source};

    fn kb() -> std::sync::Arc<DimUnitKb> {
        DimUnitKb::shared()
    }

    #[test]
    fn percent_and_bare_are_dimensionless() {
        let kb = kb();
        let q = ProblemQuantity {
            value: 20.0,
            unit_code: None,
            surface: "%".into(),
            is_percent: true,
        };
        let (ty, sc) = resolve_quantity(&kb, &q, None);
        assert_eq!(ty, Some(Ty::Dim(DimVec::DIMENSIONLESS)));
        assert_eq!(sc, Scales::one(1.0));
    }

    #[test]
    fn rate_marker_divides_the_vector() {
        let kb = kb();
        let q = ProblemQuantity {
            value: 80.0,
            unit_code: Some("KiloM".into()),
            surface: "千米".into(),
            is_percent: false,
        };
        let (ty, sc) = resolve_quantity(&kb, &q, rate_marker(&kb, "一辆汽车以每小时"));
        let speed = DimVec::parse("L1T-1").expect("speed vector");
        assert_eq!(ty, Some(Ty::Dim(speed)));
        assert_eq!(sc, Scales::one(1000.0 / 3600.0));
    }

    #[test]
    fn counter_marker_is_dimensionless() {
        let kb = kb();
        let q = ProblemQuantity {
            value: 25.0,
            unit_code: Some("KiloGM".into()),
            surface: "千克".into(),
            is_percent: false,
        };
        assert!(rate_marker(&kb, "筐苹果，每筐重").is_none());
        let (ty, _) = resolve_quantity(&kb, &q, rate_marker(&kb, "筐苹果，每筐重"));
        assert_eq!(ty, Some(Ty::Dim(DimVec::parse("M1").expect("mass"))));
    }

    #[test]
    fn unknown_codes_resolve_to_none() {
        let kb = kb();
        let q = ProblemQuantity {
            value: 1.0,
            unit_code: Some("NO-SUCH-UNIT".into()),
            surface: "瞎".into(),
            is_percent: false,
        };
        let (ty, sc) = resolve_quantity(&kb, &q, None);
        assert_eq!(ty, None);
        assert_eq!(sc, Scales::Free);
    }

    #[test]
    fn marker_scope_persists_until_the_total_closes_it() {
        // 每小时灌溉60亩，用水550升，工作6小时: the marker applies to the
        // area AND the volume; the hours are the total that closes the
        // scope and stay a plain duration.
        let kb = kb();
        let t = |s: &str| Seg::Text(s.into());
        let q = |v: f64, code: &str, surface: &str| ProblemQuantity {
            value: v,
            unit_code: if code.is_empty() { None } else { Some(code.into()) },
            surface: surface.into(),
            is_percent: false,
        };
        let problem = MwpProblem {
            id: 0,
            source: dim_mwp::Source::Ape210k,
            segs: vec![
                t("一台抽水机每小时可以灌溉"),
                Seg::Qty(0),
                t("的农田，用水"),
                Seg::Qty(1),
                t("，工作"),
                Seg::Qty(2),
                t("后，"),
                t("一共用水多少"),
                Seg::AnswerUnit,
                t("？"),
            ],
            question_seg: 7,
            quantities: vec![q(60.0, "MU-ZH", "亩"), q(550.0, "L", "升"), q(6.0, "HR", "小时")],
            equation: dim_mwp::Node::bin(
                dim_mwp::Op::Mul,
                dim_mwp::Node::Q(1),
                dim_mwp::Node::Q(2),
            ),
            answer_unit_code: Some("L".into()),
            answer_unit_surface: "升".into(),
            conversions: vec![],
            answer_conversion: 1.0,
        };
        let r = resolve_problem(&problem, &kb);
        let volume_rate = DimVec::parse("L3T-1").expect("volume per time");
        let time = DimVec::parse("T1").expect("time");
        assert_eq!(r.dims.get(1), Some(&Some(Ty::Dim(volume_rate))));
        assert_eq!(r.dims.get(2), Some(&Some(Ty::Dim(time))));
        assert_eq!(r.answer_dim, Some(Ty::Dim(DimVec::parse("L3").expect("volume"))));
    }

    #[test]
    fn every_generated_problem_resolves_fully() {
        let kb = kb();
        for source in [Source::Math23k, Source::Ape210k] {
            let ps = generate(source, &GenConfig { count: 60, seed: 11 });
            for p in &ps {
                let r = resolve_problem(p, &kb);
                assert!(r.answer_dim.is_some(), "answer unit of #{} unresolvable", p.id);
                for (i, d) in r.dims.iter().enumerate() {
                    assert!(d.is_some(), "quantity {i} of #{} unresolvable", p.id);
                }
            }
        }
    }
}
