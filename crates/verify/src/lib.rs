//! `dim-verify`: dimensional self-verification of MWP solutions.
//!
//! VerityMath (PAPERS.md) shows that *unit-consistency self-checking*
//! improves math-word-problem accuracy, and NUMCoT shows models break
//! precisely on numeral/unit conversion steps. This crate is that check
//! as a type system: a solution equation is an AST whose leaves carry
//! dimension vectors resolved through the DimUnitKB, and two laws are
//! enforced over it —
//!
//! * the **dimension law** ([`check`]): `+`/`-`/`=` require equal
//!   vectors, `*`/`÷` add/subtract exponent vectors, integer powers
//!   scale them, and dimensionless literals unify with anything;
//! * the **conversion law** ([`scale`]): written values carry their
//!   unit's linear SI scale, and `+`/`-`/`=` additionally need a shared
//!   scale, with constants admitted in both their arithmetic and their
//!   unit-conversion reading.
//!
//! Verdicts are typed ([`VerifyReport`], [`ScaleReport`]) — consistent,
//! inconsistent at a node with expected-vs-found vectors, or
//! unresolvable unit — never a bare bool, so callers (the `/verify`
//! endpoint, the DimEval perturbation suite, the repair pass) can report
//! *where* a solution broke. See DESIGN.md §15.

#![warn(missing_docs)]

pub mod check;
pub mod experiment;
pub mod resolve;
pub mod scale;
pub mod solution;
pub mod solver;

pub use check::{check, Site, Ty, VerifyReport};
pub use experiment::{beam_candidates, repair_row, BeamSim, RepairRow, DEFAULT_NOISE};
pub use resolve::{resolve_problem, resolve_quantities, ResolvedLeaves};
pub use scale::{check_scales, ScaleReport, Scales};
pub use solution::{
    bind, bind_quantities, verify, verify_equation_text, verify_prediction, verify_problem,
    Verdict,
};
pub use solver::{VerifiedSolver, BEAM};
