//! The scale-consistency layer (the conversion law).
//!
//! The dimension layer cannot see the difference between metres and
//! centimetres — both are `L¹` — yet a unit swapped mid-problem breaks
//! the solution exactly there (NUMCoT's failure class). This layer
//! propagates the *linear SI scale* of every written value through the
//! tree: a leaf in unit `u` carries `u`'s conversion factor, and `+`/`-`/
//! `=` additionally require a shared scale. A constant multiplying or
//! dividing a quantity is ambiguous — it may be plain arithmetic (`×2`
//! for a perimeter) or a unit conversion (`÷1000` rewriting grams to
//! kilograms) — so both readings stay admissible and the checker carries
//! a small *set* of candidate scales, the repair search over the KB's
//! same-kind alternatives (DESIGN.md §15).

use crate::check::Site;
use dim_mwp::{Node, Op};

/// Relative tolerance for scale comparison (conversion factors are exact
/// ratios represented in binary floating point).
const REL_TOL: f64 = 1e-9;

/// Candidate-set size cap; past this the set degrades to [`Scales::Free`]
/// (conservative: never a false flag).
const CAP: usize = 12;

/// The admissible linear SI scales of a written value.
#[derive(Debug, Clone, PartialEq)]
pub enum Scales {
    /// Unconstrained (affine unit, unknown unit, or set overflow).
    Free,
    /// A non-empty set of admissible scales, sorted ascending.
    Set(Vec<f64>),
}

impl Scales {
    /// A single known scale.
    pub fn one(f: f64) -> Scales {
        Scales::Set(vec![f])
    }
}

/// Verdict of the scale layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScaleReport {
    /// A shared scale exists at every `+`/`-` and at the root `=`.
    Consistent,
    /// No shared scale at the given preorder node.
    Mismatch {
        /// Preorder index of the offending node (root = 0).
        node: usize,
        /// The operator (or the root `=`) without a shared scale.
        site: Site,
    },
}

impl ScaleReport {
    /// True iff the conversion law holds everywhere.
    pub fn is_consistent(&self) -> bool {
        matches!(self, ScaleReport::Consistent)
    }
}

/// A subexpression's scale value: a pure number or a scaled quantity.
enum SVal {
    /// A constant subtree; the numeric value is kept so that quantity ×
    /// constant sites can admit the conversion reading.
    Scalar(f64),
    /// A quantity with its admissible scales.
    Qty(Scales),
}

fn approx(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs())
}

fn push_scale(set: &mut Vec<f64>, f: f64) {
    if f.is_finite() && f > 0.0 && !set.iter().any(|&s| approx(s, f)) {
        set.push(f);
    }
}

fn normalized(mut set: Vec<f64>) -> Scales {
    if set.is_empty() || set.len() > CAP {
        return Scales::Free;
    }
    set.sort_by(f64::total_cmp);
    Scales::Set(set)
}

/// Pairwise products/quotients of two scale sets.
fn combine_sets(a: &Scales, b: &Scales, f: impl Fn(f64, f64) -> f64) -> Scales {
    match (a, b) {
        (Scales::Free, _) | (_, Scales::Free) => Scales::Free,
        (Scales::Set(xs), Scales::Set(ys)) => {
            let mut out = Vec::new();
            for &x in xs {
                for &y in ys {
                    push_scale(&mut out, f(x, y));
                }
            }
            normalized(out)
        }
    }
}

/// A quantity scaled by a constant: the plain reading keeps the scale,
/// the conversion reading shifts it by the constant.
fn absorb(q: &Scales, k: f64, conv: impl Fn(f64, f64) -> f64) -> Scales {
    match q {
        Scales::Free => Scales::Free,
        Scales::Set(xs) => {
            let mut out = Vec::new();
            for &x in xs {
                push_scale(&mut out, x);
                push_scale(&mut out, conv(x, k));
            }
            normalized(out)
        }
    }
}

fn intersect(a: &Scales, b: &Scales) -> Scales {
    match (a, b) {
        (Scales::Free, other) | (other, Scales::Free) => match other {
            Scales::Free => Scales::Free,
            Scales::Set(xs) => normalized(xs.to_vec()),
        },
        (Scales::Set(xs), Scales::Set(ys)) => {
            let mut out = Vec::new();
            for &x in xs {
                if ys.iter().any(|&y| approx(x, y)) {
                    push_scale(&mut out, x);
                }
            }
            if out.is_empty() {
                // Signalled by the caller as a mismatch.
                Scales::Set(out)
            } else {
                normalized(out)
            }
        }
    }
}

/// Checks the conversion law over `node`. Leaves carry `scales` (out of
/// range ⇒ `Free`); the root must admit `answer`'s scale.
pub fn check_scales(node: &Node, scales: &[Scales], answer: &Scales) -> ScaleReport {
    let mut next = 0usize;
    let root = match walk(node, scales, &mut next) {
        Ok(v) => v,
        Err(report) => return report,
    };
    match (&root, answer) {
        (SVal::Scalar(_), _) | (_, Scales::Free) | (SVal::Qty(Scales::Free), _) => {
            ScaleReport::Consistent
        }
        (SVal::Qty(Scales::Set(xs)), Scales::Set(ys)) => {
            if ys.iter().any(|&y| xs.iter().any(|&x| approx(x, y))) {
                ScaleReport::Consistent
            } else {
                ScaleReport::Mismatch { node: 0, site: Site::Answer }
            }
        }
    }
}

fn walk(node: &Node, scales: &[Scales], next: &mut usize) -> Result<SVal, ScaleReport> {
    let here = *next;
    *next += 1;
    match node {
        Node::Const(v) => Ok(SVal::Scalar(*v)),
        Node::Q(i) => Ok(match scales.get(*i) {
            Some(Scales::Set(xs)) => SVal::Qty(normalized(xs.to_vec())),
            _ => SVal::Qty(Scales::Free),
        }),
        Node::Bin(op, l, r) => {
            let lv = walk(l, scales, next)?;
            let rv = walk(r, scales, next)?;
            match op {
                Op::Add | Op::Sub => add_like(lv, rv, here, *op),
                Op::Mul => Ok(mul_like(lv, rv, |x, y| x * y, |x, k| x / k)),
                Op::Div => Ok(div_like(lv, rv)),
            }
        }
    }
}

fn add_like(l: SVal, r: SVal, here: usize, op: Op) -> Result<SVal, ScaleReport> {
    match (l, r) {
        (SVal::Scalar(a), SVal::Scalar(b)) => Ok(SVal::Scalar(if op == Op::Sub {
            a - b
        } else {
            a + b
        })),
        // A literal adopts the quantity's scale (the `unify` rule).
        (SVal::Scalar(_), SVal::Qty(s)) | (SVal::Qty(s), SVal::Scalar(_)) => Ok(SVal::Qty(s)),
        (SVal::Qty(a), SVal::Qty(b)) => match intersect(&a, &b) {
            Scales::Set(xs) if xs.is_empty() => {
                Err(ScaleReport::Mismatch { node: here, site: Site::Op(op) })
            }
            s => Ok(SVal::Qty(s)),
        },
    }
}

fn mul_like(
    l: SVal,
    r: SVal,
    both: impl Fn(f64, f64) -> f64,
    conv: impl Fn(f64, f64) -> f64,
) -> SVal {
    match (l, r) {
        (SVal::Scalar(a), SVal::Scalar(b)) => SVal::Scalar(both(a, b)),
        (SVal::Qty(s), SVal::Scalar(k)) | (SVal::Scalar(k), SVal::Qty(s)) => {
            SVal::Qty(absorb(&s, k, &conv))
        }
        (SVal::Qty(a), SVal::Qty(b)) => SVal::Qty(combine_sets(&a, &b, &both)),
    }
}

fn div_like(l: SVal, r: SVal) -> SVal {
    match (l, r) {
        (SVal::Scalar(a), SVal::Scalar(b)) => SVal::Scalar(a / b),
        // Quantity ÷ constant: plain reading keeps the scale, conversion
        // reading multiplies it (v÷k at scale f·k is the same SI value).
        (SVal::Qty(s), SVal::Scalar(k)) => SVal::Qty(absorb(&s, k, |x, kk| x * kk)),
        // Constant ÷ quantity inverts the scale (a reciprocal rate).
        (SVal::Scalar(_), SVal::Qty(s)) => SVal::Qty(match s {
            Scales::Free => Scales::Free,
            Scales::Set(xs) => {
                let mut out = Vec::new();
                for &x in &xs {
                    push_scale(&mut out, 1.0 / x);
                }
                normalized(out)
            }
        }),
        (SVal::Qty(a), SVal::Qty(b)) => SVal::Qty(combine_sets(&a, &b, |x, y| x / y)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_scales_are_consistent() {
        let eq = Node::bin(Op::Add, Node::Q(0), Node::Q(1));
        let scales = [Scales::one(1.0), Scales::one(1.0)];
        assert!(check_scales(&eq, &scales, &Scales::one(1.0)).is_consistent());
    }

    #[test]
    fn metre_plus_centimetre_is_flagged() {
        let eq = Node::bin(Op::Add, Node::Q(0), Node::Q(1));
        let scales = [Scales::one(1.0), Scales::one(0.01)];
        assert_eq!(
            check_scales(&eq, &scales, &Scales::one(1.0)),
            ScaleReport::Mismatch { node: 0, site: Site::Op(Op::Add) }
        );
    }

    #[test]
    fn conversion_constant_is_absorbed() {
        // grams/1000 + kilograms, answer in kilograms.
        let eq = Node::bin(
            Op::Add,
            Node::bin(Op::Div, Node::Q(0), Node::Const(1000.0)),
            Node::Q(1),
        );
        let scales = [Scales::one(0.001), Scales::one(1.0)];
        assert!(check_scales(&eq, &scales, &Scales::one(1.0)).is_consistent());
    }

    #[test]
    fn plain_arithmetic_constant_keeps_the_scale() {
        // (Q0 + Q1) * 2 in metres (a perimeter).
        let eq = Node::bin(
            Op::Mul,
            Node::bin(Op::Add, Node::Q(0), Node::Q(1)),
            Node::Const(2.0),
        );
        let scales = [Scales::one(1.0), Scales::one(1.0)];
        assert!(check_scales(&eq, &scales, &Scales::one(1.0)).is_consistent());
    }

    #[test]
    fn root_scale_must_match_the_answer_unit() {
        let eq = Node::bin(Op::Mul, Node::Q(0), Node::Q(1));
        let scales = [Scales::one(1.0), Scales::one(1.0)];
        assert_eq!(
            check_scales(&eq, &scales, &Scales::one(0.01)),
            ScaleReport::Mismatch { node: 0, site: Site::Answer }
        );
    }

    #[test]
    fn free_scales_never_flag() {
        let eq = Node::bin(Op::Add, Node::Q(0), Node::Q(9));
        let scales = [Scales::Free];
        assert!(check_scales(&eq, &scales, &Scales::one(1.0)).is_consistent());
    }

    #[test]
    fn reciprocal_rates_compose() {
        // 1 / (1/Q0 + 1/Q1) in days (scale 86400).
        let inv = |q| Node::bin(Op::Div, Node::Const(1.0), Node::Q(q));
        let eq = Node::bin(Op::Div, Node::Const(1.0), Node::bin(Op::Add, inv(0), inv(1)));
        let scales = [Scales::one(86400.0), Scales::one(86400.0)];
        assert!(check_scales(&eq, &scales, &Scales::one(86400.0)).is_consistent());
    }
}
