//! The dimensional type-checker over equation ASTs (the dimension law).
//!
//! Each `Q(i)` leaf carries a dimension type resolved from the KB;
//! constants are dimensionless literals that unify with anything. The
//! operator laws are the paper's dimension calculus: `+`/`-`/`=` require
//! equal vectors, `*`/`÷` add/subtract exponent vectors, and integer
//! powers scale them ([`Ty::powi`]; the MWP AST spells powers as repeated
//! multiplication, which composes to the same vector through the `*` rule).

use dim_mwp::{Node, Op};
use dimkb::DimVec;

/// The dimension type of a subexpression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Ty {
    /// A dimensionless literal: unifies with any vector. A bare constant
    /// in an equation may be a count, a ratio, or a conversion factor, so
    /// it must not force the surrounding expression to dimension zero.
    Any,
    /// A known dimension vector.
    Dim(DimVec),
}

impl Ty {
    /// The `^` rule: raising to the integer power `n` scales the vector.
    pub fn powi(self, n: i8) -> Ty {
        match self {
            Ty::Any => Ty::Any,
            Ty::Dim(d) => Ty::Dim(d.powi(n)),
        }
    }

    /// The concrete vector, defaulting a literal to dimensionless.
    pub fn vector(self) -> DimVec {
        match self {
            Ty::Any => DimVec::DIMENSIONLESS,
            Ty::Dim(d) => d,
        }
    }
}

/// Where an inconsistency was found.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Site {
    /// At a binary operator node.
    Op(Op),
    /// At the implicit `=` between the equation root and the answer unit.
    Answer,
}

impl Site {
    /// Rendering symbol (`+ - * / =`).
    pub fn symbol(self) -> &'static str {
        match self {
            Site::Op(Op::Add) => "+",
            Site::Op(Op::Sub) => "-",
            Site::Op(Op::Mul) => "*",
            Site::Op(Op::Div) => "/",
            Site::Answer => "=",
        }
    }
}

/// The typed verification verdict of the dimension layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VerifyReport {
    /// Every operator law holds; the root resolves to `dim`.
    Consistent {
        /// Resolved dimension of the whole expression.
        dim: Ty,
    },
    /// `+`/`-`/`=` was applied to unequal vectors.
    Inconsistent {
        /// Preorder index of the offending node (root = 0).
        node: usize,
        /// The operator (or the root `=`) whose law failed.
        site: Site,
        /// Vector required by the left operand (or the answer unit).
        expected: DimVec,
        /// Vector actually found on the right operand (or the root).
        found: DimVec,
    },
    /// A leaf references a quantity whose unit the KB cannot resolve.
    /// `quantity` equal to the quantity count denotes the answer unit.
    UnresolvableUnit {
        /// Quantity index of the unresolvable leaf.
        quantity: usize,
    },
}

impl VerifyReport {
    /// True iff the dimension law holds everywhere.
    pub fn is_consistent(&self) -> bool {
        matches!(self, VerifyReport::Consistent { .. })
    }
}

/// Checks `node`, whose `Q(i)` leaves carry the types `leaves` (`None`
/// marks an unresolvable unit; out-of-range indices are likewise
/// unresolvable, never a panic), and whose root must unify with `answer`.
pub fn check(node: &Node, leaves: &[Option<Ty>], answer: Option<Ty>) -> VerifyReport {
    let mut next = 0usize;
    let root = match walk(node, leaves, &mut next) {
        Ok(ty) => ty,
        Err(report) => return report,
    };
    let Some(answer) = answer else {
        return VerifyReport::UnresolvableUnit { quantity: leaves.len() };
    };
    match unify(answer, root) {
        Ok(_) => VerifyReport::Consistent { dim: root },
        Err((expected, found)) => VerifyReport::Inconsistent {
            node: 0,
            site: Site::Answer,
            expected,
            found,
        },
    }
}

fn walk(node: &Node, leaves: &[Option<Ty>], next: &mut usize) -> Result<Ty, VerifyReport> {
    let here = *next;
    *next += 1;
    match node {
        Node::Const(_) => Ok(Ty::Any),
        Node::Q(i) => match leaves.get(*i) {
            Some(Some(ty)) => Ok(*ty),
            _ => Err(VerifyReport::UnresolvableUnit { quantity: *i }),
        },
        Node::Bin(op, l, r) => {
            let lt = walk(l, leaves, next)?;
            let rt = walk(r, leaves, next)?;
            match op {
                Op::Add | Op::Sub => {
                    unify(lt, rt).map_err(|(expected, found)| VerifyReport::Inconsistent {
                        node: here,
                        site: Site::Op(*op),
                        expected,
                        found,
                    })
                }
                Op::Mul => Ok(mul(lt, rt)),
                Op::Div => Ok(div(lt, rt)),
            }
        }
    }
}

/// The `+`/`-`/`=` law: literals adopt the other side's vector; two known
/// vectors must be equal.
fn unify(a: Ty, b: Ty) -> Result<Ty, (DimVec, DimVec)> {
    match (a, b) {
        (Ty::Any, t) | (t, Ty::Any) => Ok(t),
        (Ty::Dim(x), Ty::Dim(y)) if x == y => Ok(Ty::Dim(x)),
        (Ty::Dim(x), Ty::Dim(y)) => Err((x, y)),
    }
}

/// The `*` law: exponent vectors add; literals are the identity.
fn mul(a: Ty, b: Ty) -> Ty {
    match (a, b) {
        (Ty::Any, t) | (t, Ty::Any) => t,
        (Ty::Dim(x), Ty::Dim(y)) => Ty::Dim(x * y),
    }
}

/// The `÷` law: exponent vectors subtract; a literal numerator inverts
/// the denominator.
fn div(a: Ty, b: Ty) -> Ty {
    match (a, b) {
        (t, Ty::Any) => t,
        (Ty::Any, Ty::Dim(y)) => Ty::Dim(y.recip()),
        (Ty::Dim(x), Ty::Dim(y)) => Ty::Dim(x / y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimkb::DimVec;

    fn dim(s: &str) -> Ty {
        Ty::Dim(DimVec::parse(s).expect("test vector"))
    }

    #[test]
    fn addition_requires_equal_vectors() {
        let eq = Node::bin(Op::Add, Node::Q(0), Node::Q(1));
        let leaves = [Some(dim("L1")), Some(dim("M1"))];
        match check(&eq, &leaves, Some(Ty::Any)) {
            VerifyReport::Inconsistent { node, site, expected, found } => {
                assert_eq!(node, 0);
                assert_eq!(site, Site::Op(Op::Add));
                assert_eq!(expected, DimVec::parse("L1").expect("L"));
                assert_eq!(found, DimVec::parse("M1").expect("M"));
            }
            r => panic!("expected Inconsistent, got {r:?}"),
        }
    }

    #[test]
    fn multiplication_composes_vectors() {
        // speed * time = length
        let eq = Node::bin(Op::Mul, Node::Q(0), Node::Q(1));
        let leaves = [Some(dim("L1T-1")), Some(dim("T1"))];
        let report = check(&eq, &leaves, Some(dim("L1")));
        assert!(report.is_consistent(), "{report:?}");
    }

    #[test]
    fn literals_unify_with_anything() {
        // (Q0 + 5) / 2 with Q0 in metres, answer in metres.
        let eq = Node::bin(
            Op::Div,
            Node::bin(Op::Add, Node::Q(0), Node::Const(5.0)),
            Node::Const(2.0),
        );
        let report = check(&eq, &[Some(dim("L1"))], Some(dim("L1")));
        assert!(report.is_consistent());
    }

    #[test]
    fn literal_numerator_inverts() {
        // 1 / (1/Q0 + 1/Q1), days.
        let inv = |q| Node::bin(Op::Div, Node::Const(1.0), Node::Q(q));
        let eq = Node::bin(Op::Div, Node::Const(1.0), Node::bin(Op::Add, inv(0), inv(1)));
        let leaves = [Some(dim("T1")), Some(dim("T1"))];
        assert!(check(&eq, &leaves, Some(dim("T1"))).is_consistent());
    }

    #[test]
    fn answer_mismatch_reports_at_root() {
        let eq = Node::bin(Op::Mul, Node::Q(0), Node::Q(1));
        let leaves = [Some(dim("L1")), Some(dim("T1"))];
        match check(&eq, &leaves, Some(dim("L1"))) {
            VerifyReport::Inconsistent { node, site, .. } => {
                assert_eq!(node, 0);
                assert_eq!(site, Site::Answer);
            }
            r => panic!("expected answer mismatch, got {r:?}"),
        }
    }

    #[test]
    fn unknown_units_are_typed_errors() {
        let eq = Node::bin(Op::Add, Node::Q(0), Node::Q(7));
        let report = check(&eq, &[Some(dim("L1"))], Some(Ty::Any));
        assert_eq!(report, VerifyReport::UnresolvableUnit { quantity: 7 });
    }

    #[test]
    fn pow_rule_scales_vectors_like_repeated_multiplication() {
        let cube = dim("L1").powi(3);
        let eq = Node::bin(Op::Mul, Node::bin(Op::Mul, Node::Q(0), Node::Q(0)), Node::Q(0));
        match check(&eq, &[Some(dim("L1"))], Some(Ty::Any)) {
            VerifyReport::Consistent { dim } => assert_eq!(dim, cube),
            r => panic!("expected Consistent, got {r:?}"),
        }
        assert_eq!(Ty::Any.powi(5), Ty::Any);
    }
}
