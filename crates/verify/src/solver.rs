//! The rejection/repair pass over solver outputs: a reranking wrapper
//! that walks a solver's candidate beam and returns the first candidate
//! that survives dimensional verification.

use crate::solution::verify_prediction;
use dim_mwp::{CandidateSolver, MwpProblem, MwpSolver, Prediction};
use dimkb::DimUnitKb;
use std::sync::Arc;

/// Beam width requested from the wrapped solver.
pub const BEAM: usize = 4;

/// Wraps a [`CandidateSolver`] with the dimensional rejection/repair
/// pass. `solve` walks the beam in rank order and returns the first
/// candidate both checker layers accept; if none verifies, the top
/// candidate is returned unchanged (verification never makes the solver
/// mute, only reranks).
pub struct VerifiedSolver<S> {
    inner: S,
    kb: Arc<DimUnitKb>,
}

impl<S: CandidateSolver> VerifiedSolver<S> {
    /// Wraps `inner`, verifying against `kb`.
    pub fn new(inner: S, kb: Arc<DimUnitKb>) -> Self {
        VerifiedSolver { inner, kb }
    }

    /// The wrapped solver.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: CandidateSolver> MwpSolver for VerifiedSolver<S> {
    fn name(&self) -> String {
        let inner = self.inner.name();
        let mut out = String::with_capacity(inner.len() + 10);
        out.push_str("verified(");
        out.push_str(&inner);
        out.push(')');
        out
    }

    fn solve(&mut self, problem: &MwpProblem) -> Prediction {
        let candidates = self.inner.candidates(problem, BEAM);
        for c in &candidates {
            let accepted =
                verify_prediction(problem, &self.kb, c).is_some_and(|v| v.accepted());
            if accepted {
                return c.clone(); // lint:allow(hot_alloc, beam candidates are owned per problem, not per token)
            }
        }
        candidates.into_iter().next().unwrap_or(Prediction::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mwp::{accuracy, generate, GenConfig, Source};

    /// A solver whose top candidate is always a dimension-broken
    /// constant-sum and whose second candidate is gold.
    struct GoldSecond;

    impl MwpSolver for GoldSecond {
        fn name(&self) -> String {
            "gold-second".into()
        }

        fn solve(&mut self, p: &MwpProblem) -> Prediction {
            self.candidates(p, 1).into_iter().next().unwrap_or(Prediction::None)
        }
    }

    impl CandidateSolver for GoldSecond {
        fn candidates(&mut self, p: &MwpProblem, k: usize) -> Vec<Prediction> {
            // Top candidate: subtract the first two quantities regardless
            // of their units — wrong for nearly every problem and
            // dimension-broken whenever the units differ.
            let lits: Vec<String> =
                p.quantities.iter().map(|q| q.equation_literal()).collect();
            let broken = dim_mwp::Node::bin(
                dim_mwp::Op::Sub,
                dim_mwp::Node::Q(0),
                dim_mwp::Node::Q(p.quantities.len().saturating_sub(1)),
            );
            let mut out = vec![Prediction::Equation(broken.render(&lits))];
            if k > 1 {
                out.push(Prediction::Equation(p.equation_text()));
            }
            out.truncate(k);
            out
        }
    }

    #[test]
    fn verification_promotes_the_gold_candidate() {
        let kb = DimUnitKb::shared();
        let ps = generate(Source::Math23k, &GenConfig { count: 60, seed: 13 });
        let before = accuracy(&mut GoldSecond, &ps);
        let mut verified = VerifiedSolver::new(GoldSecond, kb);
        let after = accuracy(&mut verified, &ps);
        assert!(
            after > before,
            "verification should improve accuracy: before={before} after={after}"
        );
        assert_eq!(verified.name(), "verified(gold-second)");
    }
}
