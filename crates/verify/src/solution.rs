//! Solution-level verification: binding literal equations back to
//! problem quantities, the combined two-law verdict, and the repair
//! search over the KB's alternative unit readings.
//!
//! A solver's output is a *literal* equation (`x=150*20%/5%-150`) — its
//! leaves are numbers, not quantity references. [`bind`] maps each
//! literal back to the problem quantity it quotes (by written value;
//! percent literals match percent quantities), after which both checker
//! layers run. When the primary unit reading is rejected, [`verify`]
//! retries candidate unit assignments from the KB's naming-dictionary
//! alternatives for each surface form ([`crate::resolve`] keeps the
//! primary reading first), so an ambiguous mention (`分` as minute vs.
//! cent) does not falsely reject a correct solution.

use crate::check::{self, Ty, VerifyReport};
use crate::resolve::{self, ResolvedLeaves};
use crate::scale::{self, ScaleReport, Scales};
use dim_mwp::{parse, MwpProblem, Node, ParseError, Prediction};
use dimkb::DimUnitKb;

/// Cap on repair assignments tried (product of per-leaf alternatives).
const REPAIR_CAP: usize = 64;

/// Relative tolerance when matching equation literals to written values.
const BIND_TOL: f64 = 1e-9;

/// The combined verdict of both checker layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The dimension-law report (after repair, when repair succeeded).
    pub report: VerifyReport,
    /// The conversion-law report.
    pub scale: ScaleReport,
    /// True when a non-primary unit assignment was needed to verify.
    pub repaired: bool,
}

impl Verdict {
    /// True iff both laws hold: the solution passes verification.
    pub fn accepted(&self) -> bool {
        self.report.is_consistent() && self.scale.is_consistent()
    }
}

fn matches_value(a: f64, b: f64) -> bool {
    (a - b).abs() <= BIND_TOL * a.abs().max(b.abs())
}

/// Rebinds a literal equation tree to `Q(i)` references by written
/// value. Percent literals (`20%` parses as `20/100`) match percent
/// quantities as a unit; unmatched literals stay dimensionless
/// constants. Already-bound `Q(i)` leaves pass through.
pub fn bind(node: &Node, problem: &MwpProblem) -> Node {
    bind_quantities(node, &problem.quantities)
}

/// [`bind`] over a bare quantity list — the form the `POST /verify`
/// endpoint uses, where no full problem exists.
pub fn bind_quantities(node: &Node, quantities: &[dim_mwp::ProblemQuantity]) -> Node {
    match node {
        Node::Q(i) => Node::Q(*i),
        Node::Const(c) => match find_quantity(quantities, *c, false) {
            Some(i) => Node::Q(i),
            None => Node::Const(*c),
        },
        Node::Bin(op, l, r) => {
            if let (dim_mwp::Op::Div, Node::Const(a), Node::Const(h)) = (op, &**l, &**r) {
                if *h == 100.0 {
                    if let Some(i) = find_quantity(quantities, *a, true) {
                        return Node::Q(i);
                    }
                }
            }
            Node::bin(*op, bind_quantities(l, quantities), bind_quantities(r, quantities))
        }
    }
}

fn find_quantity(
    quantities: &[dim_mwp::ProblemQuantity],
    value: f64,
    percent: bool,
) -> Option<usize> {
    quantities.iter().position(|q| q.is_percent == percent && matches_value(q.value, value))
}

/// Runs both layers under one fixed leaf assignment.
fn check_once(node: &Node, leaves: &ResolvedLeaves) -> (VerifyReport, ScaleReport) {
    let report = check::check(node, &leaves.dims, leaves.answer_dim);
    let scale = scale::check_scales(node, &leaves.scales, &leaves.answer_scale);
    (report, scale)
}

/// Quantity indices referenced by the tree, in first-use order.
fn used_quantities(node: &Node, out: &mut Vec<usize>) {
    match node {
        Node::Const(_) => {}
        Node::Q(i) => {
            if !out.contains(i) {
                out.push(*i);
            }
        }
        Node::Bin(_, l, r) => {
            used_quantities(l, out);
            used_quantities(r, out);
        }
    }
}

/// Verifies an already-bound equation tree against a problem, retrying
/// candidate unit assignments from the KB's same-surface alternatives
/// when the primary reading is rejected (the repair search).
pub fn verify(problem: &MwpProblem, kb: &DimUnitKb, node: &Node) -> Verdict {
    let leaves = resolve::resolve_problem(problem, kb);
    let (report, scale) = check_once(node, &leaves);
    if report.is_consistent() && scale.is_consistent() {
        return Verdict { report, scale, repaired: false };
    }

    // Repair: enumerate alternative readings for the quantities the
    // equation actually uses, primary reading first (index 0 of each
    // candidate list), in lexicographic order.
    let mut used = Vec::new();
    used_quantities(node, &mut used);
    let candidates: Vec<Vec<(Ty, Scales)>> =
        used.iter().map(|&i| resolve::leaf_candidates(problem, kb, i)).collect();
    let mut picks = vec![0usize; candidates.len()];
    let mut tried = 0usize;
    while tried < REPAIR_CAP {
        // Advance to the next assignment (the all-primary one was the
        // initial check above).
        let mut slot = 0usize;
        loop {
            let Some(p) = picks.get_mut(slot) else {
                return Verdict { report, scale, repaired: false };
            };
            let width = candidates.get(slot).map(Vec::len).unwrap_or(1);
            *p += 1;
            if *p < width {
                break;
            }
            *p = 0;
            slot += 1;
        }
        tried += 1;

        let mut alt = leaves.clone(); // lint:allow(hot_alloc, repair runs only after a rejection, bounded by REPAIR_CAP)
        for (slot, &qi) in used.iter().enumerate() {
            let pick = picks.get(slot).copied().unwrap_or(0);
            if let Some((ty, sc)) =
                candidates.get(slot).and_then(|c| c.get(pick))
            {
                if let Some(d) = alt.dims.get_mut(qi) {
                    *d = Some(*ty);
                }
                if let Some(s) = alt.scales.get_mut(qi) {
                    *s = sc.clone(); // lint:allow(hot_alloc, candidate scale sets are shared across ≤64 bounded retries)
                }
            }
        }
        let (r, s) = check_once(node, &alt);
        if r.is_consistent() && s.is_consistent() {
            return Verdict { report: r, scale: s, repaired: true };
        }
    }
    Verdict { report, scale, repaired: false }
}

/// Verifies a problem's own gold equation.
pub fn verify_problem(problem: &MwpProblem, kb: &DimUnitKb) -> Verdict {
    verify(problem, kb, &problem.equation)
}

/// Parses, binds, and verifies a literal equation string.
pub fn verify_equation_text(
    problem: &MwpProblem,
    kb: &DimUnitKb,
    text: &str,
) -> Result<Verdict, ParseError> {
    let tree = parse(text)?;
    Ok(verify(problem, kb, &bind(&tree, problem)))
}

/// Verifies a solver prediction. Equations are parsed, bound, and
/// checked (a malformed equation is rejected); direct numeric answers
/// carry no unit structure and pass vacuously; a missing prediction is
/// rejected.
pub fn verify_prediction(
    problem: &MwpProblem,
    kb: &DimUnitKb,
    prediction: &Prediction,
) -> Option<Verdict> {
    match prediction {
        Prediction::Equation(eq) => verify_equation_text(problem, kb, eq).ok(),
        Prediction::Answer(_) => Some(Verdict {
            report: VerifyReport::Consistent { dim: Ty::Any },
            scale: ScaleReport::Consistent,
            repaired: false,
        }),
        Prediction::None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mwp::{generate, GenConfig, Source};

    #[test]
    fn gold_equations_of_every_generated_problem_verify() {
        let kb = DimUnitKb::shared();
        for source in [Source::Math23k, Source::Ape210k] {
            let ps = generate(source, &GenConfig { count: 120, seed: 7 });
            for p in &ps {
                let v = verify_problem(p, &kb);
                assert!(
                    v.accepted(),
                    "gold equation of {}#{} rejected: {:?} / {:?}\n{}",
                    source.name(),
                    p.id,
                    v.report,
                    v.scale,
                    p.text(),
                );
            }
        }
    }

    #[test]
    fn gold_equation_text_round_trips_through_binding() {
        let kb = DimUnitKb::shared();
        let ps = generate(Source::Math23k, &GenConfig { count: 40, seed: 9 });
        for p in &ps {
            let v = verify_equation_text(p, &kb, &p.equation_text()).expect("gold parses");
            assert!(v.accepted(), "bound gold equation of #{} rejected: {v:?}", p.id);
        }
    }

    #[test]
    fn cross_dimension_swap_is_rejected() {
        let kb = DimUnitKb::shared();
        let ps = generate(Source::Math23k, &GenConfig { count: 30, seed: 5 });
        // dilution-style problem: swapping the mass for the percent in an
        // addition context breaks the dimension law.
        let p = ps.iter().find(|p| !p.conversions.is_empty() || p.op_count() >= 2);
        let p = p.unwrap_or(&ps[0]);
        // Mass minus hours, etc.: build `Q0 - Q1` over two quantities of
        // different dimension if the problem has them.
        let leaves = crate::resolve::resolve_problem(p, &kb);
        let mut pair = None;
        'outer: for i in 0..leaves.dims.len() {
            for j in 0..leaves.dims.len() {
                if let (Some(Some(Ty::Dim(a))), Some(Some(Ty::Dim(b)))) =
                    (leaves.dims.get(i), leaves.dims.get(j))
                {
                    if a != b {
                        pair = Some((i, j));
                        break 'outer;
                    }
                }
            }
        }
        if let Some((i, j)) = pair {
            let eq = Node::bin(dim_mwp::Op::Sub, Node::Q(i), Node::Q(j));
            let v = verify(p, &kb, &eq);
            assert!(!v.report.is_consistent(), "expected dimension flag, got {v:?}");
        }
    }

    #[test]
    fn binding_matches_percent_literals() {
        let ps = generate(Source::Math23k, &GenConfig { count: 60, seed: 2 });
        let p = ps.iter().find(|p| p.quantities.iter().any(|q| q.is_percent));
        let p = p.expect("a percent problem in 60");
        let bound = bind(&parse(&p.equation_text()).expect("parses"), p);
        let mut used = Vec::new();
        used_quantities(&bound, &mut used);
        assert!(
            p.quantities.iter().enumerate().any(|(i, q)| q.is_percent && used.contains(&i)),
            "percent quantity not bound in {:?}",
            p.equation_text()
        );
    }

    #[test]
    fn malformed_predictions_are_rejected_and_answers_pass() {
        let kb = DimUnitKb::shared();
        let ps = generate(Source::Math23k, &GenConfig { count: 1, seed: 3 });
        let p = &ps[0];
        assert!(verify_prediction(p, &kb, &Prediction::Equation("x=1+".into())).is_none());
        assert!(verify_prediction(p, &kb, &Prediction::None).is_none());
        let v = verify_prediction(p, &kb, &Prediction::Answer(42.0)).expect("answers pass");
        assert!(v.accepted());
    }
}
