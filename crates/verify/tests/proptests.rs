//! Property tests for the dimensional checker.
//!
//! Three claims the verifier rests on, exercised over generated input:
//!
//! 1. **Commutation invariance** — `+` and `*` are symmetric in both
//!    checker layers: swapping the operands of any such node never
//!    changes the verdict, and a consistent tree keeps its dimension.
//! 2. **KB-source agreement** — verification through the built KB and
//!    through the snapshot-loaded KB produce identical verdicts, on
//!    gold equations and on arbitrary equation trees alike.
//! 3. **Totality** — the checker never panics: arbitrary trees with
//!    out-of-range quantity indices, unresolvable leaves, and malformed
//!    equation strings all come back as typed reports or parse errors.

use dim_mwp::{generate, GenConfig, Node, Op, Source};
use dim_verify::{check, check_scales, verify, verify_equation_text, Scales, Ty, VerifyReport};
use dimkb::{DimUnitKb, DimVec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small pool of leaf dimensions spanning base and derived vectors.
fn dim_pool() -> Vec<DimVec> {
    ["L1", "M1", "T1", "L1T-1", "L3", "M1L-3", "L2"]
        .iter()
        .filter_map(|f| DimVec::parse(f).ok())
        .chain([DimVec::DIMENSIONLESS])
        .collect()
}

/// An arbitrary equation tree over `nq` quantities. With `wild`, leaf
/// indices may exceed the quantity count (the totality property).
fn arb_node(rng: &mut StdRng, depth: usize, nq: usize, wild: bool) -> Node {
    let slack = if wild { 2 } else { 0 };
    if depth == 0 || rng.gen_bool(0.35) {
        if nq + slack > 0 && rng.gen_bool(0.7) {
            Node::Q(rng.gen_range(0..nq + slack))
        } else {
            Node::Const(rng.gen_range(1..100) as f64)
        }
    } else {
        let op = match rng.gen_range(0..4u8) {
            0 => Op::Add,
            1 => Op::Sub,
            2 => Op::Mul,
            _ => Op::Div,
        };
        let l = arb_node(rng, depth - 1, nq, wild);
        let r = arb_node(rng, depth - 1, nq, wild);
        Node::bin(op, l, r)
    }
}

/// Swaps the operands of the `target`-th commutative (`+`/`*`) node in
/// preorder; other nodes pass through unchanged.
fn commute(node: &Node, target: usize, next: &mut usize) -> Node {
    match node {
        Node::Q(i) => Node::Q(*i),
        Node::Const(c) => Node::Const(*c),
        Node::Bin(op, l, r) => {
            let here = matches!(op, Op::Add | Op::Mul).then(|| {
                let h = *next;
                *next += 1;
                h
            });
            let (l, r) = (commute(l, target, next), commute(r, target, next));
            if here == Some(target) {
                Node::bin(*op, r, l)
            } else {
                Node::bin(*op, l, r)
            }
        }
    }
}

fn count_commutative(node: &Node) -> usize {
    match node {
        Node::Q(_) | Node::Const(_) => 0,
        Node::Bin(op, l, r) => {
            usize::from(matches!(op, Op::Add | Op::Mul))
                + count_commutative(l)
                + count_commutative(r)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Swapping the operands of any `+`/`*` node preserves the verdict
    /// of both layers, and a consistent tree keeps its dimension.
    #[test]
    fn verdict_is_invariant_under_commutation(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pool = dim_pool();
        let nq = rng.gen_range(1..6usize);
        let leaves: Vec<Option<Ty>> = (0..nq)
            .map(|_| {
                let d = pool[rng.gen_range(0..pool.len())];
                Some(Ty::Dim(d))
            })
            .collect();
        let scales: Vec<Scales> = (0..nq)
            .map(|_| Scales::one([1.0, 0.01, 1000.0][rng.gen_range(0..3usize)]))
            .collect();
        let node = arb_node(&mut rng, 4, nq, false);
        let commutative = count_commutative(&node);
        prop_assume!(commutative > 0);
        let target = rng.gen_range(0..commutative);
        let swapped = commute(&node, target, &mut 0);

        let a = check(&node, &leaves, Some(Ty::Any));
        let b = check(&swapped, &leaves, Some(Ty::Any));
        prop_assert!(a.is_consistent() == b.is_consistent(), "{:?} vs {:?}", a, b);
        if let (VerifyReport::Consistent { dim: da }, VerifyReport::Consistent { dim: db }) =
            (&a, &b)
        {
            prop_assert_eq!(da, db);
        }

        let sa = check_scales(&node, &scales, &Scales::Free);
        let sb = check_scales(&swapped, &scales, &Scales::Free);
        prop_assert!(sa.is_consistent() == sb.is_consistent(), "{:?} vs {:?}", sa, sb);
    }

    /// The built KB and the snapshot-loaded KB verify identically —
    /// gold equations and arbitrary trees over the same quantities.
    #[test]
    fn built_and_snapshot_kbs_agree(seed in 0u64..10_000) {
        let built = DimUnitKb::shared();
        let snap = DimUnitKb::shared_snap();
        let mut rng = StdRng::seed_from_u64(seed);
        let source = if seed % 2 == 0 { Source::Math23k } else { Source::Ape210k };
        let ps = generate(source, &GenConfig { count: 3, seed });
        for p in &ps {
            let gold_built = verify(p, &built, &p.equation);
            let gold_snap = verify(p, &snap, &p.equation);
            prop_assert_eq!(gold_built, gold_snap);

            let tree = arb_node(&mut rng, 3, p.quantities.len(), false);
            let v_built = verify(p, &built, &tree);
            let v_snap = verify(p, &snap, &tree);
            prop_assert_eq!(v_built, v_snap);
        }
    }

    /// Arbitrary trees — including out-of-range quantity indices and
    /// unresolvable leaves — always produce a typed report, never a
    /// panic; and a `Consistent` verdict implies every leaf resolved.
    #[test]
    fn checker_is_total_on_wild_trees(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pool = dim_pool();
        let nq = rng.gen_range(0..5usize);
        let leaves: Vec<Option<Ty>> = (0..nq)
            .map(|_| {
                if rng.gen_bool(0.3) {
                    None // unresolvable unit
                } else {
                    Some(Ty::Dim(pool[rng.gen_range(0..pool.len())]))
                }
            })
            .collect();
        let node = arb_node(&mut rng, 4, nq, true);
        let report = check(&node, &leaves, Some(Ty::Any));
        if report.is_consistent() {
            let mut ok = true;
            node_leaves(&node, &mut |i| {
                ok &= leaves.get(i).map(Option::is_some).unwrap_or(false);
            });
            prop_assert!(ok, "consistent verdict with unresolved leaf: {:?}", report);
        }
    }

    /// Malformed equation strings are typed parse errors, and valid but
    /// arbitrary ones produce verdicts — `verify_equation_text` is total.
    #[test]
    fn equation_text_verification_is_total(
        text in "[0-9+\\-*/()%. x=]{0,30}",
        seed in 0u64..200,
    ) {
        let kb = DimUnitKb::shared();
        let ps = generate(Source::Math23k, &GenConfig { count: 1, seed });
        let _ = verify_equation_text(&ps[0], &kb, &text);
    }
}

/// Calls `f` with every quantity index referenced by the tree.
fn node_leaves(node: &Node, f: &mut impl FnMut(usize)) {
    match node {
        Node::Q(i) => f(*i),
        Node::Const(_) => {}
        Node::Bin(_, l, r) => {
            node_leaves(l, f);
            node_leaves(r, f);
        }
    }
}
