//! `dim-par`: a zero-dependency scoped-thread work-splitting layer.
//!
//! The framework's hot paths — DimEval task generation, Algorithm 1/2
//! corpus processing, batch unit linking, MWP generation and augmentation —
//! are all embarrassingly parallel over independent items. This crate gives
//! them one shared fan-out primitive built on [`std::thread::scope`]:
//! [`par_map`] / [`par_map_indexed`] split the input into contiguous chunks,
//! run one worker thread per chunk, and reassemble results **in input
//! order**, so output is position-for-position identical to a sequential
//! map.
//!
//! # Determinism contract
//!
//! `par_map` guarantees order; it cannot guarantee that the *work function*
//! is deterministic. Callers that need randomness derive an independent RNG
//! seed per item from `(master_seed, index)` (see [`seed_for`]) instead of
//! threading one sequential RNG through the loop — then the output is
//! byte-identical for every thread count, which the workspace's
//! determinism tests enforce at `threads = 1` vs `threads = 4`.
//!
//! # Sizing
//!
//! [`Parallelism`] is an explicit knob (CI and `--quick` runs pin 1 thread;
//! `Parallelism::available()` uses the machine's logical CPU count).
//! Thread spawn costs ~10–30 µs, so `par_map` falls back to a plain
//! sequential map for 1 thread or tiny inputs — callers never pay for
//! parallelism they can't use.

use std::num::NonZeroUsize;
use std::time::Instant;

// Observability (all no-ops unless `dim_obs::enable()` was called).
// `PAR_WORKER_BUSY` is the per-worker wall time of every spawned chunk
// worker: a wide p50→max spread there is thread imbalance, the first thing
// to check when a parallel path fails to scale. `PAR_IMBALANCE_PCT` makes
// the same signal directly legible per call: `(slowest − fastest) / slowest`
// across one fan-out's workers.
static PAR_CALLS: dim_obs::Counter = dim_obs::Counter::new("par.calls");
static PAR_SEQ_CALLS: dim_obs::Counter = dim_obs::Counter::new("par.seq_calls");
static PAR_ITEMS: dim_obs::Counter = dim_obs::Counter::new("par.items");
static PAR_SEQ_ITEMS: dim_obs::Counter = dim_obs::Counter::new("par.seq_items");
static PAR_WORKERS_SPAWNED: dim_obs::Counter = dim_obs::Counter::new("par.workers_spawned");
static PAR_WORKER_BUSY: dim_obs::Histogram = dim_obs::Histogram::new("par.worker_busy");
static PAR_CHUNK_ITEMS: dim_obs::Histogram =
    dim_obs::Histogram::with_unit("par.chunk_items", "items");
static PAR_IMBALANCE_PCT: dim_obs::Histogram =
    dim_obs::Histogram::with_unit("par.imbalance_pct", "pct");

/// How many worker threads fan-out operations may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker thread count; 1 means run inline on the caller's thread.
    pub threads: usize,
}

impl Parallelism {
    /// Single-threaded execution (the default: deterministic baseline,
    /// what CI and `--quick` runs pin).
    pub const SEQUENTIAL: Parallelism = Parallelism { threads: 1 };

    /// Explicit thread count (clamped to at least 1).
    pub fn new(threads: usize) -> Parallelism {
        Parallelism { threads: threads.max(1) }
    }

    /// One thread per logical CPU.
    pub fn available() -> Parallelism {
        let threads =
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        Parallelism { threads }
    }

    /// True when work should run inline without spawning.
    pub fn is_sequential(self) -> bool {
        self.threads <= 1
    }
}

impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::SEQUENTIAL
    }
}

/// Minimum items per spawned worker; below `2 * MIN_CHUNK` items the
/// sequential path is used outright (spawn overhead would dominate).
const MIN_CHUNK: usize = 8;

/// Maps `f` over `items`, preserving input order in the output.
///
/// With `par.threads > 1` the slice is split into contiguous chunks, one
/// scoped worker per chunk; results land in their original positions.
/// `f` must be `Sync` (it is shared by reference across workers).
pub fn par_map<T, U, F>(par: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(par, items, |_, item| f(item))
}

/// Like [`par_map`] but `f` also receives the item's index — the hook the
/// determinism contract hangs on: derive per-item seeds from the index,
/// never from shared mutable state.
pub fn par_map_indexed<T, U, F>(par: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_impl(par, items, MIN_CHUNK, f)
}

/// Like [`par_map_indexed`] but for coarse-grained items where each call to
/// `f` dwarfs a thread spawn (a whole benchmark task, a predicate's corpus
/// pass): up to one worker per item, no minimum chunk size.
pub fn par_map_coarse<T, U, F>(par: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_impl(par, items, 1, f)
}

fn par_map_impl<T, U, F>(par: Parallelism, items: &[T], min_chunk: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let workers = par.threads.min(n / min_chunk.max(1)).max(1);
    if workers <= 1 {
        PAR_SEQ_CALLS.inc();
        PAR_SEQ_ITEMS.add(n as u64);
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    PAR_CALLS.inc();
    PAR_ITEMS.add(n as u64);

    // Contiguous chunks of near-equal size; worker w takes [starts[w], starts[w+1]).
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);

    // Per-worker busy nanoseconds, returned through the join handles so the
    // imbalance of *this* call can be computed (empty unless obs is on).
    let mut busy_ns: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = out.as_mut_slice();
        let mut offset = 0usize;
        let mut handles = Vec::new();
        while offset < n {
            let take = chunk.min(n - offset);
            let (slot, tail) = rest.split_at_mut(take);
            rest = tail;
            let base = offset;
            let chunk_items = &items[base..base + take];
            handles.push(scope.spawn(move || {
                let started = dim_obs::enabled().then(Instant::now);
                for (k, item) in chunk_items.iter().enumerate() {
                    slot[k] = Some(f(base + k, item));
                }
                started.map(|t| (t.elapsed().as_nanos() as u64, chunk_items.len() as u64))
            }));
            offset += take;
        }
        for h in handles {
            match h.join() {
                Ok(Some((ns, chunk_len))) => {
                    busy_ns.push(ns);
                    PAR_WORKER_BUSY.record(ns);
                    PAR_CHUNK_ITEMS.record(chunk_len);
                }
                Ok(None) => {}
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    PAR_WORKERS_SPAWNED.add(busy_ns.len() as u64);
    if let (Some(&max), Some(&min)) = (busy_ns.iter().max(), busy_ns.iter().min()) {
        if let Some(pct) = ((max - min) * 100).checked_div(max) {
            PAR_IMBALANCE_PCT.record(pct);
        }
    }

    out.into_iter().map(|slot| slot.expect("worker filled every slot")).collect()
}

/// Derives an independent RNG seed for item `index` of a run seeded with
/// `master_seed` (SplitMix64-style finalizer over the pair).
///
/// Every parallelized call site uses this instead of drawing from one
/// sequential RNG, so item i's stream never depends on how items < i were
/// scheduled.
pub fn seed_for(master_seed: u64, index: u64) -> u64 {
    let mut z = master_seed ^ index.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 7] {
            let par = par_map(Parallelism::new(threads), &items, |x| x * x);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn indexed_variant_sees_true_indices() {
        let items = vec!["a"; 257];
        let out = par_map_indexed(Parallelism::new(4), &items, |i, _| i);
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn coarse_variant_parallelizes_small_inputs() {
        // Below par_map's MIN_CHUNK floor, but coarse mapping still splits.
        let items: Vec<u64> = (0..6).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * 10).collect();
        for threads in [1, 2, 4, 8] {
            let out = par_map_coarse(Parallelism::new(threads), &items, |_, x| x * 10);
            assert_eq!(out, seq, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(Parallelism::new(4), &empty, |x| *x).is_empty());
        let tiny = vec![1u32, 2, 3];
        assert_eq!(par_map(Parallelism::new(4), &tiny, |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn seed_for_separates_streams() {
        let a = seed_for(2024, 0);
        let b = seed_for(2024, 1);
        let c = seed_for(2025, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And is pure: same inputs, same seed.
        assert_eq!(seed_for(2024, 0), a);
    }

    #[test]
    fn panics_propagate() {
        let items: Vec<u32> = (0..100).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(Parallelism::new(4), &items, |x| {
                assert!(*x != 57, "boom");
                *x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn parallelism_clamps_to_one() {
        assert_eq!(Parallelism::new(0).threads, 1);
        assert!(Parallelism::available().threads >= 1);
    }

    #[test]
    fn threads_exceeding_items_still_cover_every_item() {
        // More workers than items: the worker count must clamp and the
        // output must stay position-for-position identical.
        for n in [1usize, 2, 3, 7] {
            let items: Vec<u64> = (0..n as u64).collect();
            let seq: Vec<u64> = items.iter().map(|x| x + 100).collect();
            for threads in [n + 1, 2 * n + 3, 64] {
                assert_eq!(
                    par_map(Parallelism::new(threads), &items, |x| x + 100),
                    seq,
                    "n = {n}, threads = {threads}"
                );
                assert_eq!(
                    par_map_coarse(Parallelism::new(threads), &items, |_, x| x + 100),
                    seq,
                    "coarse n = {n}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn min_chunk_boundaries_match_sequential() {
        // Around the 2 * MIN_CHUNK spawn threshold the implementation flips
        // between the inline and the fan-out path; both must agree.
        for n in [
            MIN_CHUNK - 1,
            MIN_CHUNK,
            2 * MIN_CHUNK - 1,
            2 * MIN_CHUNK,
            2 * MIN_CHUNK + 1,
            3 * MIN_CHUNK,
        ] {
            let items: Vec<u64> = (0..n as u64).collect();
            let seq: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
            for threads in 1..=8 {
                assert_eq!(
                    par_map(Parallelism::new(threads), &items, |x| x * 3 + 1),
                    seq,
                    "n = {n}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn empty_input_never_spawns() {
        let empty: Vec<u8> = Vec::new();
        for threads in [1, 4, 8] {
            assert!(par_map_coarse(Parallelism::new(threads), &empty, |_, x| *x).is_empty());
        }
    }

}
