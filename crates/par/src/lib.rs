//! `dim-par`: a zero-dependency scoped-thread work-splitting layer.
//!
//! The framework's hot paths — DimEval task generation, Algorithm 1/2
//! corpus processing, batch unit linking, MWP generation and augmentation —
//! are all embarrassingly parallel over independent items. This crate gives
//! them one shared fan-out primitive built on [`std::thread::scope`]:
//! [`par_map`] / [`par_map_indexed`] / [`par_map_scratch`] run **morsel**
//! scheduling — workers pull small cache-sized index ranges from a shared
//! atomic cursor until the input is drained — and reassemble results **in
//! input order**, so output is position-for-position identical to a
//! sequential map.
//!
//! # Morsel scheduling and scratch
//!
//! Static contiguous chunking (the previous design) assigns each worker
//! `n / workers` items up front; one slow region of the input then idles
//! every other worker (visible as `par.imbalance_pct`). Morsel scheduling
//! self-balances: a worker that drew cheap items simply pulls the next
//! morsel. Which worker runs which morsel is racy, but each item's result
//! is a pure function of `(index, item)` and results are merged by index,
//! so output bytes never depend on the race.
//!
//! [`par_map_scratch`] additionally threads a per-worker scratch value
//! (allocated once per worker via `make_scratch`, reused across every item
//! that worker pulls) through the work function — the hook the dimlink
//! annotate/link hot path uses to reuse candidate arenas, Levenshtein DP
//! rows, and number-scan buffers across sentences instead of reallocating
//! per item. Scratch must act as a pure cache: results must not depend on
//! what previous items left in it.
//!
//! The *effective* worker count is capped at the host's logical CPU count
//! ([`Parallelism::effective_workers`]): for a CPU-bound map, threads
//! beyond the core count cannot add throughput — they only add spawn and
//! context-switch overhead (the "width 4 slower than width 1" regression
//! the bench gate forbids). Requested width above the core count is
//! therefore satisfied with the cores available; outputs are identical at
//! every requested width by construction.
//!
//! # Determinism contract
//!
//! `par_map` guarantees order; it cannot guarantee that the *work function*
//! is deterministic. Callers that need randomness derive an independent RNG
//! seed per item from `(master_seed, index)` (see [`seed_for`]) instead of
//! threading one sequential RNG through the loop — then the output is
//! byte-identical for every thread count, which the workspace's
//! determinism tests enforce at `threads = 1` vs `threads = 4`.
//!
//! # Panic isolation
//!
//! Every item runs inside `catch_unwind`. The classic entry points
//! ([`par_map`], [`par_map_indexed`], [`par_map_coarse`]) re-raise the panic
//! of the **lowest** faulting index with its original payload, so a failure
//! is deterministic across thread widths. The `try_*` entry points
//! ([`try_par_map_indexed`], [`try_par_map_coarse`]) instead quarantine the
//! faulting item — its slot becomes `Err(`[`ItemPanic`]`)` while every other
//! item's output is untouched — which is what the degraded-mode pipeline
//! builds on. Caught panics are counted by the `par.panics_caught` obs
//! counter.
//!
//! # Sizing
//!
//! [`Parallelism`] is an explicit knob (CI and `--quick` runs pin 1 thread;
//! `Parallelism::available()` uses the machine's logical CPU count).
//! Thread spawn costs ~10–30 µs, so `par_map` falls back to a plain
//! sequential map for 1 thread or tiny inputs — callers never pay for
//! parallelism they can't use.

use std::any::Any;
use std::num::NonZeroUsize;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

// Observability (all no-ops unless `dim_obs::enable()` was called).
// `PAR_WORKER_BUSY` is the per-worker wall time of every spawned chunk
// worker: a wide p50→max spread there is thread imbalance, the first thing
// to check when a parallel path fails to scale. `PAR_IMBALANCE_PCT` makes
// the same signal directly legible per call: `(slowest − fastest) / slowest`
// across one fan-out's workers.
static PAR_CALLS: dim_obs::Counter = dim_obs::Counter::new("par.calls");
static PAR_SEQ_CALLS: dim_obs::Counter = dim_obs::Counter::new("par.seq_calls");
static PAR_ITEMS: dim_obs::Counter = dim_obs::Counter::new("par.items");
static PAR_SEQ_ITEMS: dim_obs::Counter = dim_obs::Counter::new("par.seq_items");
static PAR_WORKERS_SPAWNED: dim_obs::Counter = dim_obs::Counter::new("par.workers_spawned");
static PAR_WORKER_BUSY: dim_obs::Histogram = dim_obs::Histogram::new("par.worker_busy");
static PAR_CHUNK_ITEMS: dim_obs::Histogram =
    dim_obs::Histogram::with_unit("par.chunk_items", "items");
static PAR_IMBALANCE_PCT: dim_obs::Histogram =
    dim_obs::Histogram::with_unit("par.imbalance_pct", "pct");
static PAR_PANICS_CAUGHT: dim_obs::Counter = dim_obs::Counter::new("par.panics_caught");

/// How many worker threads fan-out operations may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker thread count; 1 means run inline on the caller's thread.
    pub threads: usize,
}

impl Parallelism {
    /// Single-threaded execution (the default: deterministic baseline,
    /// what CI and `--quick` runs pin).
    pub const SEQUENTIAL: Parallelism = Parallelism { threads: 1 };

    /// Explicit thread count (clamped to at least 1).
    pub fn new(threads: usize) -> Parallelism {
        Parallelism { threads: threads.max(1) }
    }

    /// One thread per logical CPU.
    pub fn available() -> Parallelism {
        let threads =
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        Parallelism { threads }
    }

    /// True when work should run inline without spawning.
    pub fn is_sequential(self) -> bool {
        self.threads <= 1
    }

    /// The worker count a fan-out over `n` items actually spawns: the
    /// requested width, capped at the host's logical CPU count (extra
    /// threads on a CPU-bound map are pure overhead) and at one worker per
    /// `min_chunk` items (so tiny inputs never pay spawn cost).
    pub fn effective_workers(self, n: usize, min_chunk: usize) -> usize {
        self.threads.min(host_cpus()).min(n / min_chunk.max(1)).max(1)
    }
}

/// The host's logical CPU count, resolved once per process.
fn host_cpus() -> usize {
    static CPUS: OnceLock<usize> = OnceLock::new();
    *CPUS.get_or_init(|| {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    })
}

impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::SEQUENTIAL
    }
}

/// Morsel size and minimum items per spawned worker: workers pull
/// `MIN_CHUNK`-sized index ranges from the shared cursor (small enough to
/// self-balance, large enough to amortize the atomic), and below
/// `2 * MIN_CHUNK` items the sequential path is used outright (spawn
/// overhead would dominate).
const MIN_CHUNK: usize = 8;

/// The morsel size used by the batch entry points (`par_map`,
/// `par_map_scratch`, and friends) — exported so benchmarks and baselines
/// can record the chunking configuration they measured.
pub const MORSEL_SIZE: usize = MIN_CHUNK;

/// A panic caught from a single work item by the panic-isolated fan-out.
///
/// `index` is the item's input position — deterministic across thread widths
/// because chunking only changes *where* an item runs, never which index it
/// has. The payload is rendered to a string eagerly (panic payloads are
/// `Box<dyn Any>`, neither `Clone` nor `Display`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemPanic {
    /// Input index of the item whose closure panicked.
    pub index: usize,
    /// The panic message, when the payload was a `&str` or `String`
    /// (`"opaque panic payload"` otherwise).
    pub message: String,
}

impl std::fmt::Display for ItemPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "item {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for ItemPanic {}

/// A caught panic still carrying its original payload (so the classic
/// `par_map` path can re-raise it unmodified via `resume_unwind`).
type Caught = (usize, Box<dyn Any + Send>);

fn payload_message(payload: &(dyn Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string()) // lint:allow(hot_alloc, panic-payload extraction runs once per caught panic)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string()) // lint:allow(hot_alloc, panic-payload extraction runs once per caught panic)
}

/// Maps `f` over `items`, preserving input order in the output.
///
/// With `par.threads > 1` the slice is split into contiguous chunks, one
/// scoped worker per chunk; results land in their original positions.
/// `f` must be `Sync` (it is shared by reference across workers).
pub fn par_map<T, U, F>(par: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(par, items, |_, item| f(item))
}

/// Like [`par_map`] but `f` also receives the item's index — the hook the
/// determinism contract hangs on: derive per-item seeds from the index,
/// never from shared mutable state.
pub fn par_map_indexed<T, U, F>(par: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    unwrap_or_propagate(par_map_slots(par, items, MIN_CHUNK, f))
}

/// Like [`par_map_indexed`] but for coarse-grained items where each call to
/// `f` dwarfs a thread spawn (a whole benchmark task, a predicate's corpus
/// pass): up to one worker per item, no minimum chunk size.
pub fn par_map_coarse<T, U, F>(par: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    unwrap_or_propagate(par_map_slots(par, items, 1, f))
}

/// Panic-isolated fan-out: like [`par_map_indexed`], but a panicking item is
/// *quarantined* — its slot becomes `Err(ItemPanic)` — instead of unwinding
/// the scope and killing the sibling items. Output stays position-for-
/// position: slot `i` is item `i`'s result, so the set of quarantined
/// indices is deterministic across thread widths.
pub fn try_par_map_indexed<T, U, F>(
    par: Parallelism,
    items: &[T],
    f: F,
) -> Vec<Result<U, ItemPanic>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    to_item_panics(par_map_slots(par, items, MIN_CHUNK, f))
}

/// Coarse-grained variant of [`try_par_map_indexed`] (no minimum chunk size).
pub fn try_par_map_coarse<T, U, F>(
    par: Parallelism,
    items: &[T],
    f: F,
) -> Vec<Result<U, ItemPanic>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    to_item_panics(par_map_slots(par, items, 1, f))
}

fn to_item_panics<U>(slots: Vec<Result<U, Caught>>) -> Vec<Result<U, ItemPanic>> {
    slots
        .into_iter()
        .map(|slot| {
            slot.map_err(|(index, payload)| ItemPanic {
                index,
                message: payload_message(payload.as_ref()),
            })
        })
        .collect()
}

/// Classic (non-`try`) semantics on top of the isolated slots: if any item
/// panicked, re-raise the panic of the **lowest** faulting index with its
/// original payload — deterministic regardless of which worker hit it first.
fn unwrap_or_propagate<U>(slots: Vec<Result<U, Caught>>) -> Vec<U> {
    let mut out = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot {
            Ok(u) => out.push(u),
            // Slots are in input order, so the first Err has the lowest index.
            Err((_, payload)) => std::panic::resume_unwind(payload),
        }
    }
    out
}

/// Scratch-less adapter over the morsel core (the classic entry points).
fn par_map_slots<T, U, F>(
    par: Parallelism,
    items: &[T],
    min_chunk: usize,
    f: F,
) -> Vec<Result<U, Caught>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    morsel_map_slots(par, items, min_chunk, || (), |i, item, (): &mut ()| f(i, item))
}

/// Like [`par_map`] but with a **per-worker scratch value**: each worker
/// calls `make_scratch` once, then passes `&mut` of that value to `f` for
/// every item it pulls, so buffers allocated for item 0 are reused for
/// item 1000. The scratch type needs no `Send`/`Sync` — it never crosses a
/// thread boundary.
///
/// Determinism: `f` must treat scratch as a pure cache — the result for
/// `(i, item)` must be independent of what earlier items left in it (clear
/// buffers before use; memo entries must be value-equal however they were
/// computed). Item panics re-raise at the lowest faulting index, exactly
/// like [`par_map`].
pub fn par_map_scratch<T, U, S, M, F>(
    par: Parallelism,
    items: &[T],
    make_scratch: M,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    M: Fn() -> S + Sync,
    F: Fn(usize, &T, &mut S) -> U + Sync,
{
    unwrap_or_propagate(morsel_map_slots(par, items, MIN_CHUNK, make_scratch, f))
}

/// Panic-isolated variant of [`par_map_scratch`]: a panicking item is
/// quarantined as `Err(ItemPanic)` while its worker's scratch and every
/// other item survive. A worker whose scratch was mid-update when an item
/// panicked continues with whatever state the unwind left behind — safe for
/// pure-cache scratch (cleared before each use), which is the contract.
pub fn try_par_map_scratch<T, U, S, M, F>(
    par: Parallelism,
    items: &[T],
    make_scratch: M,
    f: F,
) -> Vec<Result<U, ItemPanic>>
where
    T: Sync,
    U: Send,
    M: Fn() -> S + Sync,
    F: Fn(usize, &T, &mut S) -> U + Sync,
{
    to_item_panics(morsel_map_slots(par, items, MIN_CHUNK, make_scratch, f))
}

/// Shared morsel-scheduled fan-out core. Workers pull `min_chunk`-sized
/// index ranges ("morsels") from a shared atomic cursor until the input is
/// drained, each carrying a private scratch value; completed runs are merged
/// back **by index**, so output order is independent of the pull race.
///
/// Every item runs inside `catch_unwind`, so one poisoned item can neither
/// tear down its worker's siblings nor poison the scope join; callers choose
/// between re-raising (classic) and quarantining (`try_*`).
/// `AssertUnwindSafe` is sound here because a caught panic either aborts the
/// whole call (classic path) or quarantines exactly the state the faulting
/// item would have produced; state reached through `f` must tolerate
/// unwinding (per-worker scratch is a pure cache cleared before each use;
/// the linker's shared memo lock recovers from poisoning instead of
/// unwrapping).
fn morsel_map_slots<T, U, S, M, F>(
    par: Parallelism,
    items: &[T],
    min_chunk: usize,
    make_scratch: M,
    f: F,
) -> Vec<Result<U, Caught>>
where
    T: Sync,
    U: Send,
    M: Fn() -> S + Sync,
    F: Fn(usize, &T, &mut S) -> U + Sync,
{
    let n = items.len();
    let run_one = |i: usize, item: &T, scratch: &mut S| -> Result<U, Caught> {
        match std::panic::catch_unwind(AssertUnwindSafe(|| f(i, item, scratch))) {
            Ok(u) => Ok(u),
            Err(payload) => {
                PAR_PANICS_CAUGHT.inc();
                Err((i, payload))
            }
        }
    };
    let workers = par.effective_workers(n, min_chunk);
    if workers <= 1 {
        PAR_SEQ_CALLS.inc();
        PAR_SEQ_ITEMS.add(n as u64);
        let mut scratch = make_scratch();
        return items.iter().enumerate().map(|(i, item)| run_one(i, item, &mut scratch)).collect();
    }
    morsel_run_parallel(workers, items, min_chunk.max(1), &make_scratch, &run_one)
}

/// The spawned half of [`morsel_map_slots`], parameterized on the final
/// worker count so unit tests can exercise the pull-merge machinery even on
/// hosts whose CPU count would clamp every public call to the inline path.
fn morsel_run_parallel<T, U, S>(
    workers: usize,
    items: &[T],
    morsel: usize,
    make_scratch: &(dyn Fn() -> S + Sync),
    run_one: &(dyn Fn(usize, &T, &mut S) -> Result<U, Caught> + Sync),
) -> Vec<Result<U, Caught>>
where
    T: Sync,
    U: Send,
{
    let n = items.len();
    PAR_CALLS.inc();
    PAR_ITEMS.add(n as u64);
    // Next unclaimed input index. Relaxed suffices: the cursor only
    // allocates disjoint index ranges (fetch_add is atomic at every
    // ordering); all result data flows through the scope join, which
    // provides the happens-before edge.
    let cursor = AtomicUsize::new(0); // lint:allow(relaxed_ordering, cursor only partitions indices; scope join publishes results)
    let mut out: Vec<Option<Result<U, Caught>>> = Vec::with_capacity(n);
    out.resize_with(n, || None);

    // Per-worker busy nanoseconds, returned through the join handles so the
    // imbalance of *this* call can be computed (None unless obs is on).
    let mut busy_ns: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let run_one = &run_one;
        let make_scratch = &make_scratch;
        let cursor = &cursor;
        let mut handles = Vec::new();
        for _ in 0..workers {
            handles.push(scope.spawn(move || {
                let started = dim_obs::enabled().then(Instant::now);
                let mut scratch = make_scratch();
                // Runs of consecutive results, tagged with their start index.
                let mut runs: Vec<(usize, Vec<Result<U, Caught>>)> = Vec::new();
                let mut pulled = 0u64;
                loop {
                    let start = cursor.fetch_add(morsel, Ordering::Relaxed); // lint:allow(relaxed_ordering, disjoint index allocation; results published by the scope join)
                    if start >= n {
                        break;
                    }
                    let end = (start + morsel).min(n);
                    let mut results = Vec::with_capacity(end - start);
                    for (k, item) in items[start..end].iter().enumerate() { // lint:allow(no_panic, start < n checked above and end = min(start + morsel, n) <= n)
                        results.push(run_one(start + k, item, &mut scratch));
                    }
                    pulled += (end - start) as u64;
                    runs.push((start, results));
                }
                (runs, started.map(|t| t.elapsed().as_nanos() as u64), pulled)
            }));
        }
        for h in handles {
            match h.join() {
                Ok((runs, busy, pulled)) => {
                    for (start, results) in runs {
                        for (k, r) in results.into_iter().enumerate() {
                            out[start + k] = Some(r); // lint:allow(no_panic, start + k < end <= n by the worker loop bounds and out.len() == n)
                        }
                    }
                    if let Some(ns) = busy {
                        busy_ns.push(ns);
                        PAR_WORKER_BUSY.record(ns);
                        PAR_CHUNK_ITEMS.record(pulled);
                    }
                }
                // Item panics are caught per item above; a panic escaping a
                // worker thread is a fan-out bug, not a data fault.
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    PAR_WORKERS_SPAWNED.add(workers as u64);
    if let (Some(&max), Some(&min)) = (busy_ns.iter().max(), busy_ns.iter().min()) {
        if let Some(pct) = ((max - min) * 100).checked_div(max) {
            PAR_IMBALANCE_PCT.record(pct);
        }
    }

    out.into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| {
                // lint:allow(hot_alloc, error construction when a worker dies, not the steady-state path)
                Err((i, Box::new("worker failed to fill slot".to_string()) as Box<dyn Any + Send>))
            })
        })
        .collect()
}

/// Derives an independent RNG seed for item `index` of a run seeded with
/// `master_seed` (SplitMix64-style finalizer over the pair).
///
/// Every parallelized call site uses this instead of drawing from one
/// sequential RNG, so item i's stream never depends on how items < i were
/// scheduled.
pub fn seed_for(master_seed: u64, index: u64) -> u64 {
    let mut z = master_seed ^ index.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 7] {
            let par = par_map(Parallelism::new(threads), &items, |x| x * x);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn indexed_variant_sees_true_indices() {
        let items = vec!["a"; 257];
        let out = par_map_indexed(Parallelism::new(4), &items, |i, _| i);
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn coarse_variant_parallelizes_small_inputs() {
        // Below par_map's MIN_CHUNK floor, but coarse mapping still splits.
        let items: Vec<u64> = (0..6).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * 10).collect();
        for threads in [1, 2, 4, 8] {
            let out = par_map_coarse(Parallelism::new(threads), &items, |_, x| x * 10);
            assert_eq!(out, seq, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(Parallelism::new(4), &empty, |x| *x).is_empty());
        let tiny = vec![1u32, 2, 3];
        assert_eq!(par_map(Parallelism::new(4), &tiny, |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn seed_for_separates_streams() {
        let a = seed_for(2024, 0);
        let b = seed_for(2024, 1);
        let c = seed_for(2025, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And is pure: same inputs, same seed.
        assert_eq!(seed_for(2024, 0), a);
    }

    #[test]
    fn panics_propagate() {
        let items: Vec<u32> = (0..100).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(Parallelism::new(4), &items, |x| {
                assert!(*x != 57, "boom");
                *x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn classic_path_propagates_lowest_index_panic() {
        // Items 30 and 70 both panic; regardless of which worker finishes
        // first, the re-raised payload must be item 30's.
        let items: Vec<u32> = (0..100).collect();
        for threads in [1, 2, 4] {
            let result = std::panic::catch_unwind(|| {
                par_map_indexed(Parallelism::new(threads), &items, |i, _| {
                    if i == 30 || i == 70 {
                        panic!("boom at {i}");
                    }
                    i
                })
            });
            let payload = result.expect_err("must propagate");
            let msg = payload.downcast_ref::<String>().expect("formatted payload");
            assert_eq!(msg, "boom at 30", "threads = {threads}");
        }
    }

    #[test]
    fn try_variant_quarantines_instead_of_unwinding() {
        let items: Vec<u32> = (0..100).collect();
        let expected_bad = [13usize, 57, 58, 91];
        let mut reference: Option<Vec<Result<u32, ItemPanic>>> = None;
        for threads in [1, 2, 4, 7] {
            let out = try_par_map_indexed(Parallelism::new(threads), &items, |i, x| {
                if expected_bad.contains(&i) {
                    panic!("chaos: injected panic at test[{i}]");
                }
                x * 2
            });
            assert_eq!(out.len(), items.len());
            let bad: Vec<usize> =
                out.iter().enumerate().filter(|(_, r)| r.is_err()).map(|(i, _)| i).collect();
            assert_eq!(bad, expected_bad, "threads = {threads}");
            for (i, r) in out.iter().enumerate() {
                match r {
                    Ok(v) => assert_eq!(*v, items[i] * 2),
                    Err(p) => {
                        assert_eq!(p.index, i);
                        assert!(p.message.contains("injected panic"), "message = {}", p.message);
                    }
                }
            }
            // Quarantine set and messages are identical at every width.
            if let Some(first) = &reference {
                assert_eq!(&out, first, "threads = {threads}");
            } else {
                reference = Some(out);
            }
        }
    }

    #[test]
    fn try_coarse_variant_isolates_small_inputs() {
        let items: Vec<u32> = (0..5).collect();
        let out = try_par_map_coarse(Parallelism::new(4), &items, |i, x| {
            if i == 2 {
                panic!("boom");
            }
            x + 1
        });
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[1], Ok(2));
        assert!(out[2].is_err());
        assert_eq!(out[3], Ok(4));
        assert_eq!(out[4], Ok(5));
    }

    #[test]
    fn panics_caught_counter_increments() {
        dim_obs::enable();
        let before = counter_value("par.panics_caught");
        let items: Vec<u32> = (0..40).collect();
        let _ = try_par_map_indexed(Parallelism::new(2), &items, |i, x| {
            if i % 10 == 3 {
                panic!("boom");
            }
            *x
        });
        let after = counter_value("par.panics_caught");
        assert!(after >= before + 4, "before = {before}, after = {after}");
    }

    fn counter_value(name: &str) -> u64 {
        dim_obs::snapshot()
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    #[test]
    fn parallelism_clamps_to_one() {
        assert_eq!(Parallelism::new(0).threads, 1);
        assert!(Parallelism::available().threads >= 1);
    }

    #[test]
    fn threads_exceeding_items_still_cover_every_item() {
        // More workers than items: the worker count must clamp and the
        // output must stay position-for-position identical.
        for n in [1usize, 2, 3, 7] {
            let items: Vec<u64> = (0..n as u64).collect();
            let seq: Vec<u64> = items.iter().map(|x| x + 100).collect();
            for threads in [n + 1, 2 * n + 3, 64] {
                assert_eq!(
                    par_map(Parallelism::new(threads), &items, |x| x + 100),
                    seq,
                    "n = {n}, threads = {threads}"
                );
                assert_eq!(
                    par_map_coarse(Parallelism::new(threads), &items, |_, x| x + 100),
                    seq,
                    "coarse n = {n}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn min_chunk_boundaries_match_sequential() {
        // Around the 2 * MIN_CHUNK spawn threshold the implementation flips
        // between the inline and the fan-out path; both must agree.
        for n in [
            MIN_CHUNK - 1,
            MIN_CHUNK,
            2 * MIN_CHUNK - 1,
            2 * MIN_CHUNK,
            2 * MIN_CHUNK + 1,
            3 * MIN_CHUNK,
        ] {
            let items: Vec<u64> = (0..n as u64).collect();
            let seq: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
            for threads in 1..=8 {
                assert_eq!(
                    par_map(Parallelism::new(threads), &items, |x| x * 3 + 1),
                    seq,
                    "n = {n}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn empty_input_never_spawns() {
        let empty: Vec<u8> = Vec::new();
        for threads in [1, 4, 8] {
            assert!(par_map_coarse(Parallelism::new(threads), &empty, |_, x| *x).is_empty());
        }
    }

    #[test]
    fn effective_workers_clamps_to_host_and_input() {
        let host = super::host_cpus();
        assert!(host >= 1);
        // Requested width beyond the host CPU count is capped.
        assert!(Parallelism::new(64).effective_workers(1024, 1) <= host);
        // Tiny inputs never spawn more than n / min_chunk workers.
        assert_eq!(Parallelism::new(8).effective_workers(7, 8), 1);
        assert_eq!(Parallelism::new(8).effective_workers(0, 8), 1);
        // Width 1 is always inline.
        assert_eq!(Parallelism::SEQUENTIAL.effective_workers(1_000_000, 1), 1);
    }

    #[test]
    fn scratch_map_matches_sequential_and_reuses_buffers() {
        let items: Vec<u64> = (0..500).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * 7).collect();
        for threads in [1, 2, 4, 7] {
            let out = par_map_scratch(
                Parallelism::new(threads),
                &items,
                Vec::<u64>::new,
                |_, x, buf| {
                    // Pure-cache contract: clear before use, then reuse the
                    // allocation across every item this worker pulls.
                    buf.clear();
                    buf.push(*x);
                    buf[0] * 7
                },
            );
            assert_eq!(out, seq, "threads = {threads}");
        }
    }

    #[test]
    fn scratch_is_per_worker_not_per_item() {
        // Counting make_scratch calls: at most one per effective worker.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let made = AtomicUsize::new(0);
        let items: Vec<u32> = (0..256).collect();
        let par = Parallelism::new(4);
        let out = par_map_scratch(
            par,
            &items,
            || {
                made.fetch_add(1, Ordering::SeqCst);
                0u32
            },
            |_, x, _s| x + 1,
        );
        assert_eq!(out.len(), 256);
        let calls = made.load(Ordering::SeqCst);
        assert!(calls <= par.effective_workers(256, MIN_CHUNK), "made {calls} scratches");
        assert!(calls >= 1);
    }

    #[test]
    fn morsel_parallel_path_merges_by_index() {
        // Drive the spawned path directly: on a single-CPU host every public
        // entry point clamps to inline, which would leave the pull-merge
        // machinery untested.
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in [2, 4, 7] {
            for morsel in [1, 3, 8, 64] {
                let slots = morsel_run_parallel(
                    workers,
                    &items,
                    morsel,
                    &Vec::<u64>::new,
                    &|i, x: &u64, buf: &mut Vec<u64>| {
                        buf.clear();
                        buf.push(x * 3 + 1);
                        assert_eq!(items[i], *x, "index/item pairing preserved");
                        Ok(buf[0])
                    },
                );
                let out: Vec<u64> = slots.into_iter().map(|r| r.unwrap()).collect();
                assert_eq!(out, seq, "workers = {workers}, morsel = {morsel}");
            }
        }
    }

    #[test]
    fn morsel_parallel_path_preserves_quarantine_slots() {
        let items: Vec<u32> = (0..64).collect();
        let slots = morsel_run_parallel(
            4,
            &items,
            8,
            &|| (),
            &|i, x: &u32, _: &mut ()| {
                if i == 17 {
                    return Err((i, Box::new("boom".to_string()) as Box<dyn Any + Send>));
                }
                Ok(*x)
            },
        );
        for (i, slot) in slots.iter().enumerate() {
            match slot {
                Ok(v) => assert_eq!(*v, i as u32),
                Err((idx, _)) => assert_eq!(*idx, 17),
            }
        }
        assert_eq!(slots.iter().filter(|s| s.is_err()).count(), 1);
    }

    #[test]
    fn try_scratch_quarantines_deterministically() {
        let items: Vec<u32> = (0..100).collect();
        let mut reference: Option<Vec<Result<u32, ItemPanic>>> = None;
        for threads in [1, 2, 4] {
            let out = try_par_map_scratch(
                Parallelism::new(threads),
                &items,
                String::new,
                |i, x, s| {
                    s.clear();
                    if i == 41 {
                        panic!("chaos: injected panic at scratch[{i}]");
                    }
                    x * 2
                },
            );
            assert_eq!(out.len(), 100);
            assert!(out[41].is_err());
            assert_eq!(out.iter().filter(|r| r.is_err()).count(), 1);
            if let Some(first) = &reference {
                assert_eq!(&out, first, "threads = {threads}");
            } else {
                reference = Some(out);
            }
        }
    }
}
