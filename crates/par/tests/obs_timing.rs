//! Per-worker observability of the fan-out layer. Lives in its own test
//! binary because the obs registry and enable flag are process-global — the
//! unit tests in `lib.rs` must keep running with observability disabled.
//! One test function: phases share the global registry and must not race.

use dim_par::{par_map, Parallelism};

#[test]
fn worker_timing_and_sequential_counters() {
    // --- parallel path: per-worker timings, morsel totals, imbalance ----
    // The effective worker count is the requested width clamped to the
    // host's CPU count, so the expectations are computed, not hard-coded.
    let par = Parallelism::new(4);
    let expected_workers = par.effective_workers(64, 8);
    dim_obs::enable();
    let items: Vec<u64> = (0..64).collect();
    let out = par_map(par, &items, |x| x + 1);
    assert_eq!(out, (1..=64).collect::<Vec<u64>>());

    let snap = dim_obs::snapshot();
    if expected_workers > 1 {
        let busy = snap.histogram("par.worker_busy").expect("worker timings recorded");
        assert_eq!(busy.count, expected_workers as u64, "one sample per spawned worker");
        assert_eq!(snap.counter("par.items"), Some(64));
        assert_eq!(snap.counter("par.workers_spawned"), Some(expected_workers as u64));
        assert_eq!(snap.counter("par.calls"), Some(1));
        let chunk = snap.histogram("par.chunk_items").unwrap();
        assert_eq!(chunk.count, expected_workers as u64);
        assert_eq!(chunk.sum, 64, "morsels pulled per worker sum to the item count");
        // One imbalance sample per parallel call, expressed in percent.
        let imb = snap.histogram("par.imbalance_pct").unwrap();
        assert_eq!(imb.count, 1);
        assert!(imb.max <= 100);
    } else {
        // Single-CPU host: width 4 clamps to the inline path.
        assert_eq!(snap.counter("par.seq_calls"), Some(1));
        assert_eq!(snap.counter("par.seq_items"), Some(64));
        assert_eq!(snap.counter("par.calls"), None);
    }

    // --- sequential path: inline calls tallied separately --------------
    dim_obs::reset();
    // threads = 1 and tiny inputs both take the inline path.
    let tiny: Vec<u64> = (0..3).collect();
    par_map(Parallelism::new(4), &tiny, |x| *x);
    let items: Vec<u64> = (0..100).collect();
    par_map(Parallelism::SEQUENTIAL, &items, |x| *x);
    dim_obs::disable();

    let snap = dim_obs::snapshot();
    assert_eq!(snap.counter("par.seq_calls"), Some(2));
    assert_eq!(snap.counter("par.seq_items"), Some(103));
    assert_eq!(snap.counter("par.calls"), None, "no parallel call happened");
}
