//! Offline drop-in subset of `criterion`.
//!
//! Implements the harness surface the workspace benches use —
//! `Criterion::default().sample_size(n)`, `bench_function`, `Bencher::iter`,
//! `Bencher::iter_batched`, `criterion_group!` (both forms) and
//! `criterion_main!` — with a simple calibrated-sampling measurement loop
//! instead of criterion's full statistical machinery.
//!
//! Results print to stdout, and when the `BENCH_JSON` environment variable
//! names a file, each group merges its `{name: {mean_ns, median_ns, ...}}`
//! entries into that JSON file — this is how `BENCH_baseline.json` is
//! produced (see EXPERIMENTS.md).

use serde::Value;
use std::time::Instant;

/// Re-export for parity with the real crate (benches mostly use
/// `std::hint::black_box` directly).
pub use std::hint::black_box;

/// Batch sizing hint for [`Bencher::iter_batched`]; the compat harness
/// treats both the same (one setup per timed call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to hold in memory.
    SmallInput,
    /// Inputs are large; keep few alive.
    LargeInput,
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id, as passed to `bench_function`.
    pub name: String,
    /// Mean wall-clock time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Median over samples, nanoseconds.
    pub median_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
    /// Extra metadata recorded verbatim as JSON fields (e.g. thread width,
    /// morsel size) via [`Criterion::bench_function_meta`].
    pub extra: Vec<(&'static str, f64)>,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 30, results: Vec::new() }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_function_meta(name, &[], f)
    }

    /// [`Self::bench_function`] with extra metadata fields (e.g.
    /// `("threads", 4.0)`, `("morsel", 8.0)`) recorded alongside the
    /// timings in the `BENCH_JSON` output, so baseline files are
    /// self-describing about the configuration they measured.
    pub fn bench_function_meta<F>(
        &mut self,
        name: &str,
        extra: &[(&'static str, f64)],
        mut f: F,
    ) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b =
            Bencher { sample_size: self.sample_size, per_iter_ns: Vec::new(), iters_hint: 1 };
        f(&mut b);
        let mut sorted = b.per_iter_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (mean, median, iters) = if sorted.is_empty() {
            (0.0, 0.0, 0)
        } else {
            let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
            let median = sorted[sorted.len() / 2];
            (mean, median, b.last_iters())
        };
        println!(
            "bench {name:<40} time: {:>12} /iter  (median {:>12}, {} samples x {} iters)",
            fmt_ns(mean),
            fmt_ns(median),
            sorted.len(),
            iters
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            mean_ns: mean,
            median_ns: median,
            samples: sorted.len(),
            iters,
            extra: extra.to_vec(),
        });
        self
    }

    /// Flushes results: called by `criterion_group!` after its targets run.
    /// Merges into the `BENCH_JSON` file when that env var is set.
    pub fn finish(&mut self) {
        let Ok(path) = std::env::var("BENCH_JSON") else { return };
        if path.is_empty() {
            return;
        }
        let mut entries: Vec<(String, Value)> = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::parse_value(&text).ok())
            .and_then(|v| v.as_obj().map(<[(String, Value)]>::to_vec))
            .unwrap_or_default();
        for r in &self.results {
            // Round the timing stats to 2 decimals at serialization so the
            // committed baseline diffs cleanly (no 16-digit float artifacts).
            let mut fields = vec![
                ("mean_ns".to_string(), Value::Num(round2(r.mean_ns))),
                ("median_ns".to_string(), Value::Num(round2(r.median_ns))),
                ("samples".to_string(), Value::Num(r.samples as f64)),
                ("iters".to_string(), Value::Num(r.iters as f64)),
            ];
            for &(k, v) in &r.extra {
                fields.push((k.to_string(), Value::Num(v)));
            }
            let entry = Value::Obj(fields);
            match entries.iter_mut().find(|(k, _)| *k == r.name) {
                Some(slot) => slot.1 = entry,
                None => entries.push((r.name.clone(), entry)),
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let doc = Value::Obj(entries);
        match serde_json::to_string_pretty(&SerValue(&doc)) {
            Ok(text) => {
                if let Err(e) = std::fs::write(&path, text + "\n") {
                    eprintln!("warning: could not write {path}: {e}");
                }
            }
            Err(e) => eprintln!("warning: could not serialize bench results: {e}"),
        }
    }
}

/// Adapter: `Value` itself doesn't implement `Serialize`, so wrap it.
struct SerValue<'a>(&'a Value);

impl serde::Serialize for SerValue<'_> {
    fn serialize(&self) -> Value {
        self.0.clone()
    }
}

/// Rounds to 2 decimal places for JSON output.
fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Target wall-clock time per sample.
const TARGET_SAMPLE_NS: f64 = 5_000_000.0;

/// Timing loop handle passed to the closure of `bench_function`.
pub struct Bencher {
    sample_size: usize,
    per_iter_ns: Vec<f64>,
    iters_hint: u64,
}

impl Bencher {
    fn last_iters(&self) -> u64 {
        self.iters_hint
    }
}

impl Bencher {
    /// Times `routine`, called in calibrated batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: time one call to pick an iteration count per sample.
        let t0 = Instant::now();
        black_box(routine());
        let once_ns = t0.elapsed().as_nanos().max(1) as f64;
        let iters = (TARGET_SAMPLE_NS / once_ns).clamp(1.0, 1_000_000.0) as u64;
        self.iters_hint = iters;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let total = start.elapsed().as_nanos() as f64;
            self.per_iter_ns.push(total / iters as f64);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters_hint = 1;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.per_iter_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// Declares a bench group. Supports both the positional form
/// `criterion_group!(benches, f1, f2)` and the configured form
/// `criterion_group! { name = benches; config = ...; targets = f1, f2 }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut __criterion: $crate::Criterion = $cfg;
            $( $target(&mut __criterion); )+
            __criterion.finish();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes flags like `--bench`; nothing here parses args.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_records() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        });
        assert_eq!(c.results.len(), 2);
        assert!(c.results[0].mean_ns > 0.0);
        assert_eq!(c.results[1].samples, 5);
    }
}
