//! Offline drop-in subset of `serde_json`: [`to_string`], [`to_string_pretty`]
//! and [`from_str`] over the compat `serde::Value` tree.
//!
//! The writer emits canonical output: object fields in the order the
//! serializer produced them (compat serde sorts map keys), floats in Rust's
//! shortest-roundtrip `{}` formatting, integers without a trailing `.0`.
//! Equal values therefore always serialize to byte-identical JSON — the
//! property the workspace's determinism tests check end to end.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.serialize(), &mut out, 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::deserialize(&value)?)
}

// ---- writer ----------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Obj(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(val, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null matches serde_json's lossy behaviour.
        out.push_str("null");
        return;
    }
    if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let chars: Vec<char> = s.chars().collect();
    let mut p = Parser { chars, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(Error(format!("trailing input at char {}", p.pos)));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while matches!(self.chars.get(self.pos), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), Error> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected {c:?} at char {}, found {:?}", self.pos, self.peek())))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        let end = self.pos + word.chars().count();
        if end <= self.chars.len()
            && self.chars[self.pos..end].iter().collect::<String>() == word
        {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some('n') if self.literal("null") => Ok(Value::Null),
            Some('t') if self.literal("true") => Ok(Value::Bool(true)),
            Some('f') if self.literal("false") => Ok(Value::Bool(false)),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => self.pos += 1,
                        Some(']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        other => {
                            return Err(Error(format!("expected , or ] found {other:?}")));
                        }
                    }
                }
            }
            Some('{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some('}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => self.pos += 1,
                        Some('}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        other => {
                            return Err(Error(format!("expected , or }} found {other:?}")));
                        }
                    }
                }
            }
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at char {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        if self.peek() != Some('"') {
            return Err(Error(format!("expected string at char {}", self.pos)));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self.peek().ok_or_else(|| Error("bad escape".into()))?;
                    self.pos += 1;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{0008}'),
                        'f' => out.push('\u{000C}'),
                        'u' => {
                            let hi = self.hex4()?;
                            // Surrogate pairs.
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                if !(self.literal("\\u")) {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("bad low surrogate".into()));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("bad codepoint {code:#x}")))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape \\{other}"))),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| Error("bad \\u escape".into()))?;
            self.pos += 1;
            code = code * 16
                + c.to_digit(16).ok_or_else(|| Error(format!("bad hex digit {c:?}")))?;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.chars.get(self.pos), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some('.') {
            self.pos += 1;
            while matches!(self.chars.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some('e') | Some('E')) {
            self.pos += 1;
            if matches!(self.peek(), Some('+') | Some('-')) {
                self.pos += 1;
            }
            while matches!(self.chars.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>().map(Value::Num).map_err(|_| Error(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Num(1.5)),
            ("b".into(), Value::Arr(vec![Value::Null, Value::Bool(true)])),
            ("zh".into(), Value::Str("千克 \"quoted\"\n".into())),
        ]);
        let mut s = String::new();
        write_value(&v, &mut s);
        let back = parse_value(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_have_no_decimal_point() {
        let mut s = String::new();
        write_value(&Value::Num(42.0), &mut s);
        assert_eq!(s, "42");
    }

    #[test]
    fn floats_roundtrip_shortest() {
        for x in [0.1, 1.0 / 3.0, 1e-12, 123456.789] {
            let mut s = String::new();
            write_value(&Value::Num(x), &mut s);
            let Value::Num(back) = parse_value(&s).unwrap() else { panic!() };
            assert_eq!(back, x);
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = parse_value(r#""千克 😀""#).unwrap();
        assert_eq!(v, Value::Str("千克 😀".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("hello").is_err());
        assert!(parse_value("1 2").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Obj(vec![("k".into(), Value::Arr(vec![Value::Num(1.0)]))]);
        let mut s = String::new();
        write_pretty(&v, &mut s, 0);
        assert_eq!(parse_value(&s).unwrap(), v);
    }
}
