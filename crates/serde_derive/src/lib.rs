//! Derive macros for the compat `serde` crate.
//!
//! Written against `proc_macro` alone (no `syn`/`quote` — the offline build
//! resolves only path dependencies). The parser walks the raw token stream,
//! extracts the shape of the struct/enum plus `#[serde(default)]` field
//! attributes, and emits impl blocks as source text parsed back into a
//! `TokenStream`.
//!
//! Supported shapes — exactly what the workspace uses:
//! - structs with named fields (incl. `#[serde(default)]` and
//!   `#[serde(default = "path")]`)
//! - tuple structs (newtype `UnitId(pub u32)` serializes transparently)
//! - unit structs
//! - enums with unit, tuple, and struct variants (externally tagged:
//!   unit variants as `"Name"`, others as `{"Name": ...}`)
//! - lifetime-only generics (`KbSnapshot<'a>`), pass-through

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, ser: bool) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = if ser { gen_serialize(&parsed) } else { gen_deserialize(&parsed) };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde_derive produced invalid code: {e:?}\");").parse().unwrap()
    })
}

// ---- model -----------------------------------------------------------------

struct Input {
    name: String,
    /// Verbatim generics, e.g. `<'a>`; empty when absent.
    generics: String,
    kind: Kind,
}

enum Kind {
    StructNamed(Vec<Field>),
    StructTuple(usize),
    StructUnit,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `None` = required; `Some(None)` = `#[serde(default)]`;
    /// `Some(Some(path))` = `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---- parsing ---------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    // Outer attributes and visibility.
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    let generics = parse_generics(&tokens, &mut i)?;

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::StructNamed(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::StructTuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::StructUnit,
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}`")),
    };

    Ok(Input { name, generics, kind })
}

fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(_))) =
        (tokens.get(*i), tokens.get(*i + 1))
    {
        if p.as_char() != '#' {
            break;
        }
        *i += 2;
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Captures `<...>` verbatim. Lifetime-only generics pass through to the
/// impl header; type parameters are rejected (the workspace has none).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Ok(String::new()),
    }
    let mut depth = 0i32;
    let mut out = String::new();
    let mut saw_lifetime_tick = false;
    while let Some(tt) = tokens.get(*i) {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == '\'' => saw_lifetime_tick = true,
            TokenTree::Ident(id) => {
                if !saw_lifetime_tick && id.to_string() != "static" {
                    return Err(format!(
                        "serde_derive compat supports lifetime-only generics, found `{id}`"
                    ));
                }
                saw_lifetime_tick = false;
            }
            _ => {}
        }
        out.push_str(&tt.to_string());
        *i += 1;
        if depth == 0 {
            break;
        }
    }
    Ok(out)
}

/// Parses one `#[...]` attribute already split into (`#`, group); returns
/// the serde default spec if the attribute is `#[serde(default...)]`.
fn serde_default_of(group: &proc_macro::Group) -> Option<Option<String>> {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let Some(TokenTree::Group(args)) = inner.get(1) else { return None };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    match args.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        _ => return None,
    }
    // `default = "path"` — the literal keeps its surrounding quotes.
    if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) = (args.get(1), args.get(2))
    {
        if eq.as_char() == '=' {
            let raw = lit.to_string();
            let path = raw.trim_matches('"').to_string();
            return Some(Some(path));
        }
    }
    Some(None)
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut fields = Vec::new();
    while i < tokens.len() {
        // Attributes (capture serde defaults, skip the rest).
        let mut default = None;
        while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
            (tokens.get(i), tokens.get(i + 1))
        {
            if p.as_char() != '#' {
                break;
            }
            if let Some(d) = serde_default_of(g) {
                default = Some(d);
            }
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, found {other:?}")),
        }
        // Skip the type: consume until a top-level `,` (tracking `<...>`
        // nesting, which token streams do not group).
        let mut angle = 0i32;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut count = 1usize;
    let mut trailing_comma = false;
    for tt in &tokens {
        trailing_comma = false;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separator comma.
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---- codegen: Serialize ----------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let generics = &input.generics;
    let body = match &input.kind {
        Kind::StructNamed(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from({:?}), \
                     ::serde::Serialize::serialize(&self.{})));\n",
                    f.name, f.name
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Obj(__fields)"
            )
        }
        Kind::StructTuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::StructTuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::serialize(&self.{i})")).collect();
            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
        }
        Kind::StructUnit => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from({vname:?})),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Value::Obj(::std::vec![(\
                         ::std::string::String::from({vname:?}), \
                         ::serde::Serialize::serialize(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::serialize(__f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Obj(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Value::Arr(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({:?}), \
                                     ::serde::Serialize::serialize({}))",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Obj(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Value::Obj(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl{generics} ::serde::Serialize for {name}{generics} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

// ---- codegen: Deserialize --------------------------------------------------

/// Expression deserializing one named field out of `__obj`.
fn field_expr(f: &Field, context: &str) -> String {
    let fname = &f.name;
    let missing = match &f.default {
        None => format!(
            "return ::std::result::Result::Err(::serde::DeError::missing({fname:?}, {context:?}))"
        ),
        Some(None) => "::core::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
    };
    format!(
        "{fname}: match ::serde::get_field(__obj, {fname:?}) {{\n\
         ::std::option::Option::Some(__x) => ::serde::Deserialize::deserialize(__x)?,\n\
         ::std::option::Option::None => {missing},\n}}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    if !input.generics.is_empty() {
        return format!(
            "compile_error!(\"cannot derive Deserialize for generic type {name} \
             in serde compat\");"
        );
    }
    let body = match &input.kind {
        Kind::StructNamed(fields) => {
            let exprs: Vec<String> = fields.iter().map(|f| field_expr(f, name)).collect();
            format!(
                "let __obj = __v.as_obj().ok_or_else(|| \
                 ::serde::DeError::expected(\"object\", {name:?}, __v))?;\n\
                 ::std::result::Result::Ok({name} {{\n{}\n}})",
                exprs.join(",\n")
            )
        }
        Kind::StructTuple(1) => {
            format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"
            )
        }
        Kind::StructTuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __v.as_arr().ok_or_else(|| \
                 ::serde::DeError::expected(\"array\", {name:?}, __v))?;\n\
                 if __arr.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::DeError(::std::format!(\
                 \"{name}: expected {n} elements, found {{}}\", __arr.len())));\n}}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::StructUnit => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => return ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vname:?} => return ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::deserialize(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let ctx = format!("{name}::{vname}");
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&__arr[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             let __arr = __inner.as_arr().ok_or_else(|| \
                             ::serde::DeError::expected(\"array\", {ctx:?}, __inner))?;\n\
                             if __arr.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::DeError(::std::format!(\
                             \"{ctx}: expected {n} elements, found {{}}\", __arr.len())));\n}}\n\
                             return ::std::result::Result::Ok({name}::{vname}({}));\n}}\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let ctx = format!("{name}::{vname}");
                        let exprs: Vec<String> =
                            fields.iter().map(|f| field_expr(f, &ctx)).collect();
                        tagged_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             let __obj = __inner.as_obj().ok_or_else(|| \
                             ::serde::DeError::expected(\"object\", {ctx:?}, __inner))?;\n\
                             return ::std::result::Result::Ok({name}::{vname} {{\n{}\n}});\n}}\n",
                            exprs.join(",\n")
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
                 if let ::std::option::Option::Some(__fields) = __v.as_obj() {{\n\
                 if __fields.len() == 1 {{\n\
                 let (__k, __inner) = &__fields[0];\n\
                 let _ = __inner;\n\
                 match __k.as_str() {{\n{tagged_arms}_ => {{}}\n}}\n}}\n}}\n\
                 ::std::result::Result::Err(::serde::DeError::unknown_variant({name:?}))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n\
         let _ = __v;\n{body}\n}}\n}}\n"
    )
}
