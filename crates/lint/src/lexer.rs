//! A hand-rolled Rust lexer, just deep enough for linting.
//!
//! The goal is *not* to parse Rust — it is to turn a source file into a
//! token stream in which string/char literals and comments can never be
//! confused with code, so that a rule looking for `.unwrap()` does not fire
//! on `"call .unwrap() here"` the way the old awk scan did. That requires
//! getting exactly four hard cases right:
//!
//! * comments — line (`//`), block (`/* */`), and **nested** block
//!   (`/* /* */ */`), all of which Rust allows;
//! * strings — normal (`"…"` with `\"` escapes), raw (`r"…"`,
//!   `r#"…"#` with any number of `#`s), and their byte variants;
//! * `'` disambiguation — `'a'` is a char literal, `'a` is a lifetime,
//!   `'\n'` is a char with an escape, `'静'` is a multi-byte char literal;
//! * UTF-8 — the lexer walks char boundaries, never raw bytes, so a
//!   multi-byte scalar at a token edge cannot split the scan.
//!
//! The lexer is total: any byte sequence that is valid UTF-8 produces a
//! token stream (unterminated literals/comments simply run to end of file).
//! A property test pins that it never panics on arbitrary input.

/// What a token is. Identifiers carry their text (rules match on names);
/// literal kinds carry none (rules only need to know code *isn't* there).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `for`, `HashMap`, …).
    Ident(String),
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    CharLit,
    /// String or byte-string literal (`"…"`, `b"…"`).
    StrLit,
    /// Raw string literal (`r"…"`, `r#"…"#`, `br#"…"#`).
    RawStrLit,
    /// Numeric literal (`42`, `0x1F`, `1.5e3`).
    NumLit,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct(char),
}

/// One token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind (and ident text).
    pub kind: TokKind,
    /// 1-based source line.
    pub line: u32,
}

/// A comment's text and starting line, kept for suppression parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment body (without the `//` / `/*` markers).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs for block comments).
    pub end_line: u32,
}

/// Lexer output: the code tokens and the comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` completely. Total: never fails, never panics.
pub fn lex(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1 }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Lexed {
        let mut out = Lexed::default();
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                '/' if self.peek(1) == Some('/') => {
                    let text = self.line_comment();
                    out.comments.push(Comment { text, line, end_line: line });
                }
                '/' if self.peek(1) == Some('*') => {
                    let text = self.block_comment();
                    out.comments.push(Comment { text, line, end_line: self.line });
                }
                '"' => {
                    self.string_body();
                    out.tokens.push(Token { kind: TokKind::StrLit, line });
                }
                '\'' => {
                    let kind = self.quote();
                    out.tokens.push(Token { kind, line });
                }
                c if is_ident_start(c) => {
                    let kind = self.ident_or_prefixed_literal();
                    out.tokens.push(Token { kind, line });
                }
                c if c.is_ascii_digit() => {
                    self.number();
                    out.tokens.push(Token { kind: TokKind::NumLit, line });
                }
                c if c.is_whitespace() => {
                    self.bump();
                }
                c => {
                    self.bump();
                    out.tokens.push(Token { kind: TokKind::Punct(c), line });
                }
            }
        }
        out
    }

    /// `// …` to end of line. Returns the body (markers stripped).
    fn line_comment(&mut self) -> String {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        text
    }

    /// `/* … */` with nesting. Unterminated comments run to EOF.
    fn block_comment(&mut self) -> String {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        text
    }

    /// The body of a normal string, starting at the opening `"`.
    /// Unterminated strings run to EOF.
    fn string_body(&mut self) {
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// A raw string starting at `r`; `hashes` is the number of `#`s after it.
    /// The caller has already verified the `r #* "` shape.
    fn raw_string_body(&mut self, hashes: usize) {
        self.bump(); // r
        for _ in 0..hashes {
            self.bump();
        }
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    matched += 1;
                }
                if matched == hashes {
                    return;
                }
            }
        }
    }

    /// `'` start: char literal or lifetime.
    ///
    /// Decision: `'\…` is always a char literal; `'X'` (any single scalar
    /// followed by a closing quote) is a char literal; anything else is a
    /// lifetime (`'a`, `'static`, and the label form `'outer:`).
    fn quote(&mut self) -> TokKind {
        match (self.peek(1), self.peek(2)) {
            (Some('\\'), _) => {
                self.bump(); // '
                self.bump(); // backslash
                self.bump(); // escaped char
                // Multi-char escapes (`'\u{1F600}'`, `'\x7F'`) run to the
                // closing quote.
                while let Some(c) = self.peek(0) {
                    if c == '\'' {
                        self.bump();
                        break;
                    }
                    if c == '\n' {
                        break; // malformed; don't eat the rest of the file
                    }
                    self.bump();
                }
                TokKind::CharLit
            }
            (Some(_), Some('\'')) => {
                self.bump();
                self.bump();
                self.bump();
                TokKind::CharLit
            }
            _ => {
                self.bump(); // '
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                TokKind::Lifetime
            }
        }
    }

    /// An identifier — or the `r"…"` / `br"…"` / `b"…"` / `b'…'` literal
    /// prefixes, which start with ident characters.
    fn ident_or_prefixed_literal(&mut self) -> TokKind {
        let c = self.peek(0).unwrap_or(' ');
        // r"…" / r#"…"#
        if c == 'r' {
            if let Some(h) = self.raw_quote_hashes(1) {
                self.raw_string_body(h);
                return TokKind::RawStrLit;
            }
        }
        // b"…" / b'…' / br"…"
        if c == 'b' {
            match self.peek(1) {
                Some('"') => {
                    self.bump(); // b
                    self.string_body();
                    return TokKind::StrLit;
                }
                Some('\'') => {
                    self.bump(); // b
                    self.quote();
                    return TokKind::CharLit;
                }
                Some('r') => {
                    if let Some(h) = self.raw_quote_hashes(2) {
                        self.bump(); // b
                        self.raw_string_body(h);
                        return TokKind::RawStrLit;
                    }
                }
                _ => {}
            }
        }
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            name.push(c);
            self.bump();
        }
        TokKind::Ident(name)
    }

    /// If the chars at `offset` look like `#*"` (a raw-string opener after
    /// an `r`), returns the hash count.
    fn raw_quote_hashes(&self, offset: usize) -> Option<usize> {
        let mut h = 0usize;
        loop {
            match self.peek(offset + h) {
                Some('#') => h += 1,
                Some('"') => return Some(h),
                _ => return None,
            }
        }
    }

    /// A numeric literal. `.` is consumed only when followed by a digit, so
    /// `x.0.iter()` lexes the dots as punctuation for the method-call rules.
    fn number(&mut self) {
        while let Some(c) = self.peek(0) {
            let continues = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if continues {
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "call .unwrap() here"; s.len()"#);
        let ids = idents(r#"let s = "call .unwrap() here"; s.len()"#);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"len".to_string()));
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::StrLit).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes_hide_contents() {
        let src = "let s = r##\"x.unwrap() \"# still\"##; y.expect(\"\")";
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"expect".to_string()));
    }

    #[test]
    fn nested_block_comments_hide_contents() {
        let ids = idents("/* outer /* .unwrap() */ still comment */ real()");
        assert_eq!(ids, vec!["real"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let l = lex("let c: char = 'a'; fn f<'a>(x: &'a str) {} let nl = '\\n'; let u = '\u{1F600}';");
        let chars = l.tokens.iter().filter(|t| t.kind == TokKind::CharLit).count();
        let lifes = l.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        assert_eq!(chars, 3, "'a', '\\n', emoji char");
        assert_eq!(lifes, 2, "<'a> and &'a");
    }

    #[test]
    fn byte_literals() {
        let l = lex(r##"let a = b"bytes .unwrap()"; let c = b'x'; let r = br#"raw"#;"##);
        assert!(!idents(r#"b"bytes .unwrap()""#).contains(&"unwrap".to_string()));
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::CharLit));
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::RawStrLit));
    }

    #[test]
    fn line_numbers_advance() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let l = lex("// one\ncode();\n/* two\nlines */ more();");
        assert_eq!(l.comments.len(), 2);
        assert_eq!((l.comments[0].line, l.comments[0].end_line), (1, 1));
        assert_eq!(l.comments[0].text, " one");
        assert_eq!((l.comments[1].line, l.comments[1].end_line), (3, 4));
    }

    #[test]
    fn tuple_field_access_keeps_the_dot() {
        let l = lex("x.0.iter()");
        let kinds: Vec<&TokKind> = l.tokens.iter().map(|t| &t.kind).collect();
        assert!(kinds.windows(2).any(|w| matches!(
            (w[0], w[1]),
            (TokKind::Punct('.'), TokKind::Ident(name)) if name == "iter"
        )));
    }

    #[test]
    fn unterminated_everything_reaches_eof() {
        for src in ["\"open", "r#\"open", "/* open /* deeper", "'", "b\"", "'\\"] {
            let _ = lex(src); // must terminate without panicking
        }
    }
}
