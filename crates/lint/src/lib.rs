//! `dim-lint`: the workspace lint engine enforcing the repository's
//! determinism, no-panic, concurrency, and zero-dep invariants. Its only
//! dependency is the vendored `dim-par` fan-out for the parallel file pass.
//!
//! The reproduction's core claim — DimEval/DimPerc outputs are
//! byte-identical across runs and thread widths — has been broken twice by
//! the same bug class (unordered hash-collection iteration feeding output),
//! and PR 5's textual rules caught a real Release/Relaxed pairing bug in
//! chaos. This crate mechanizes the invariants instead of re-fixing
//! violations:
//!
//! | rule | depth | what it enforces |
//! |------|-------|------------------|
//! | `no-panic-hotpath`   | file | no `unwrap`/`expect`/panicking macros/direct indexing in degraded-mode hot paths |
//! | `determinism`        | file | no hash-collection iteration, clocks, or env reads in output-producing paths |
//! | `thread-discipline`  | file | raw `thread::spawn` only inside `crates/par` and `crates/serve` |
//! | `relaxed-ordering`   | file | every `Ordering::Relaxed` carries a written justification |
//! | `zero-dep`           | file | every `Cargo.toml` dependency resolves to a vendored in-repo path |
//! | `hot-alloc`          | file | no `.clone()`/`.to_string()`/`String::from`/`format!` in the annotate/link hot paths |
//! | `panic-reachability` | deep | nothing a hot-path fn *calls* can panic (call-graph closure, witness chains) |
//! | `lock-order`         | deep | no lock-order cycles across the workspace; no locks held over blocking calls |
//! | `atomic-pairing`     | deep | every `Release` store pairs with an `Acquire`-capable load on the same atomic, and vice versa |
//!
//! The `file` rules run per file over the token stream; the `deep` rules
//! ([`deep`], enabled by `--deep` or by naming them with `--rule`) build a
//! cross-crate symbol table and approximate call graph ([`items`],
//! [`graph`]) first and reason over the whole workspace.
//!
//! Matching is string- and comment-aware: a hand-rolled lexer
//! ([`lexer`]) tokenizes each file, so `".unwrap()"` inside a string
//! literal, a raw string, or a nested block comment never fires a rule —
//! the failure mode of the awk scan this engine replaces. `#[cfg(test)]`
//! regions are exempt, and individual sites can be justified with
//! `// lint:allow(<key>, <reason>)` ([`source`]); the reason is mandatory.
//!
//! See DESIGN.md §11 for the per-file rule catalog and §16 for the deep
//! analysis model and the v2 report schema.

pub mod deep;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod source;
pub mod walk;

pub use report::{Diagnostic, LintReport, Severity, WitnessStep};

use source::SourceFile;
use std::path::Path;

/// The rule catalog, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleId {
    /// No panicking constructs in degraded-mode hot paths.
    NoPanicHotpath,
    /// No nondeterminism in output/golden-producing paths.
    Determinism,
    /// Raw `thread::spawn` confined to `crates/par` and `crates/serve`.
    ThreadDiscipline,
    /// `Ordering::Relaxed` requires a justification.
    RelaxedOrdering,
    /// All dependencies are vendored path dependencies.
    ZeroDep,
    /// No per-item allocation in the annotate/link hot paths.
    HotAlloc,
    /// No panic reachable through the call graph from a hot-path fn.
    PanicReachability,
    /// No lock-order cycles; no locks held across blocking calls.
    LockOrder,
    /// `Release` stores and `Acquire` loads pair up per atomic path.
    AtomicPairing,
}

impl RuleId {
    /// Every rule, in catalog order.
    pub const ALL: [RuleId; 9] = [
        RuleId::NoPanicHotpath,
        RuleId::Determinism,
        RuleId::ThreadDiscipline,
        RuleId::RelaxedOrdering,
        RuleId::ZeroDep,
        RuleId::HotAlloc,
        RuleId::PanicReachability,
        RuleId::LockOrder,
        RuleId::AtomicPairing,
    ];

    /// The per-file rules — what a default (non-`--deep`) run executes.
    pub const SHALLOW: [RuleId; 6] = [
        RuleId::NoPanicHotpath,
        RuleId::Determinism,
        RuleId::ThreadDiscipline,
        RuleId::RelaxedOrdering,
        RuleId::ZeroDep,
        RuleId::HotAlloc,
    ];

    /// The workspace-level rules `--deep` adds.
    pub const DEEP: [RuleId; 3] =
        [RuleId::PanicReachability, RuleId::LockOrder, RuleId::AtomicPairing];

    /// Does this rule need the workspace call graph?
    pub fn is_deep(self) -> bool {
        matches!(
            self,
            RuleId::PanicReachability | RuleId::LockOrder | RuleId::AtomicPairing
        )
    }

    /// CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::NoPanicHotpath => "no-panic-hotpath",
            RuleId::Determinism => "determinism",
            RuleId::ThreadDiscipline => "thread-discipline",
            RuleId::RelaxedOrdering => "relaxed-ordering",
            RuleId::ZeroDep => "zero-dep",
            RuleId::HotAlloc => "hot-alloc",
            RuleId::PanicReachability => "panic-reachability",
            RuleId::LockOrder => "lock-order",
            RuleId::AtomicPairing => "atomic-pairing",
        }
    }

    /// The `lint:allow(<key>, …)` suppression key (`zero-dep` has none:
    /// a registry dependency is never justifiable offline).
    pub fn allow_key(self) -> Option<&'static str> {
        match self {
            RuleId::NoPanicHotpath => Some("no_panic"),
            RuleId::Determinism => Some("nondeterministic"),
            RuleId::ThreadDiscipline => Some("thread_spawn"),
            RuleId::RelaxedOrdering => Some("relaxed_ordering"),
            RuleId::ZeroDep => None,
            RuleId::HotAlloc => Some("hot_alloc"),
            RuleId::PanicReachability => Some("panic_reachable"),
            RuleId::LockOrder => Some("lock_order"),
            RuleId::AtomicPairing => Some("atomic_pairing"),
        }
    }

    /// Parses a CLI rule name (hyphen/underscore agnostic).
    pub fn parse(name: &str) -> Option<RuleId> {
        let n = source::normalize_key(name);
        RuleId::ALL.into_iter().find(|r| source::normalize_key(r.name()) == n)
    }

    /// Parses a comma-separated rule list (`lock-order,atomic-pairing`).
    /// A single name still parses — the list form is a superset. `None` if
    /// any element is unknown or the list is empty.
    pub fn parse_list(names: &str) -> Option<Vec<RuleId>> {
        let parsed: Option<Vec<RuleId>> = names
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(RuleId::parse)
            .collect();
        parsed.filter(|v| !v.is_empty())
    }

    /// Does this rule cover the file at workspace-relative `rel_path`?
    ///
    /// Scope is path-based because the invariants are architectural:
    /// hot paths are the crates the serving/degraded pipeline runs through;
    /// output paths are the crates whose bytes reach goldens.
    pub fn applies_to(self, rel_path: &str) -> bool {
        match self {
            RuleId::NoPanicHotpath => {
                rel_path.starts_with("crates/dimlink/src/")
                    || rel_path.starts_with("crates/par/src/")
                    || rel_path.starts_with("crates/serve/src/")
                    || rel_path.starts_with("crates/chaos/src/")
                    || rel_path == "crates/core/src/pipeline.rs"
                    || rel_path == "crates/dimkb/src/degrade.rs"
                    // The snapshot loader parses attacker-shaped bytes; a
                    // panic there is a crash on corrupt input.
                    || rel_path == "crates/dimkb/src/snap.rs"
                    // The verification checker runs on every /verify
                    // request and inside the solver's repair loop — it
                    // must reject, never die, on malformed ASTs.
                    || rel_path.starts_with("crates/verify/src/")
            }
            RuleId::Determinism => {
                rel_path.starts_with("crates/dimeval/src/")
                    || rel_path.starts_with("crates/mwp/src/")
                    || rel_path == "crates/bench/src/render.rs"
                    || rel_path == "crates/obs/src/lib.rs"
            }
            RuleId::ThreadDiscipline => {
                rel_path.ends_with(".rs")
                    && !rel_path.starts_with("crates/par/")
                    && !rel_path.starts_with("crates/serve/")
            }
            RuleId::RelaxedOrdering => rel_path.ends_with(".rs"),
            RuleId::ZeroDep => rel_path.ends_with("Cargo.toml"),
            RuleId::HotAlloc => {
                // The annotate/link hot paths. `reference.rs` is the retired
                // String-based linker kept as a differential-testing oracle —
                // allocating is its documented job.
                ((rel_path.starts_with("crates/dimlink/src/")
                    || rel_path.starts_with("crates/par/src/"))
                    && rel_path != "crates/dimlink/src/reference.rs")
                    // The snapshot codec: load must stay allocation-lean so
                    // validation holds its microsecond budget.
                    || rel_path == "crates/dimkb/src/snap.rs"
                    // Admission and deadline checks run once per accepted
                    // connection / parsed request — the overload fast path
                    // must shed without allocating.
                    || rel_path == "crates/serve/src/admission.rs"
                    || rel_path == "crates/serve/src/deadline.rs"
                    // The two checker layers run per beam candidate per
                    // problem inside the repair search.
                    || rel_path.starts_with("crates/verify/src/")
            }
            // Reachability roots are the no-panic hot paths, minus binary
            // entry points (binaries may die loudly on startup errors —
            // config parsing, bind failures — before serving begins).
            RuleId::PanicReachability => {
                RuleId::NoPanicHotpath.applies_to(rel_path) && !rel_path.contains("/bin/")
            }
            // The lock and atomic analyses scope themselves by *content*
            // (where locks/atomics live), not by path.
            RuleId::LockOrder | RuleId::AtomicPairing => rel_path.ends_with(".rs"),
        }
    }
}

/// Options for one lint run.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Workspace root to scan.
    pub root: std::path::PathBuf,
    /// Rules to run; empty means the default set ([`RuleId::SHALLOW`], or
    /// [`RuleId::ALL`] when `deep` is set). Naming a deep rule explicitly
    /// runs it regardless of `deep`.
    pub rules: Vec<RuleId>,
    /// Run the workspace-level analyses too.
    pub deep: bool,
    /// Worker threads for the file pass (0 or 1 = sequential). Output is
    /// byte-identical at any width: diagnostics are fully sorted.
    pub threads: usize,
}

impl LintOptions {
    /// Default options rooted at `root`: shallow rules, sequential.
    pub fn new(root: impl Into<std::path::PathBuf>) -> LintOptions {
        LintOptions { root: root.into(), rules: Vec::new(), deep: false, threads: 1 }
    }
}

/// Runs the selected rules over the workspace at `opts.root`.
pub fn run(opts: &LintOptions) -> Result<LintReport, String> {
    let rules: Vec<RuleId> = if opts.rules.is_empty() {
        if opts.deep { RuleId::ALL.to_vec() } else { RuleId::SHALLOW.to_vec() }
    } else {
        opts.rules.clone()
    };
    let deep_rules: Vec<RuleId> = rules.iter().copied().filter(|r| r.is_deep()).collect();
    let files = walk::discover(&opts.root)
        .map_err(|e| format!("cannot scan {}: {e}", opts.root.display()))?;
    let mut report = LintReport {
        rules: rules.iter().map(|r| r.name()).collect(),
        deep: !deep_rules.is_empty(),
        ..LintReport::default()
    };
    let run_rust = rules.iter().any(|r| *r != RuleId::ZeroDep);
    if run_rust {
        // The file pass — read, lex, item-parse, per-file rules — is
        // embarrassingly parallel; each file is one coarse item. The final
        // sort makes output independent of completion order.
        let par = dim_par::Parallelism::new(opts.threads.max(1));
        type FileResult = Result<(graph::ParsedFile, Vec<Diagnostic>), String>;
        let results: Vec<FileResult> = dim_par::par_map_coarse(par, &files.rust, |_, rel| {
            let text = read(&opts.root, rel)?;
            let parsed = graph::ParsedFile::parse(rel, &text);
            let diags = check_parsed(&parsed.source, &rules, false);
            Ok((parsed, diags))
        });
        let mut parsed_files = Vec::with_capacity(results.len());
        for r in results {
            let (parsed, diags) = r?;
            report.files_scanned += 1;
            report.diagnostics.extend(diags);
            parsed_files.push(parsed);
        }
        if !deep_rules.is_empty() {
            deep::analyze(&parsed_files, &deep_rules, &mut report.diagnostics);
        }
    }
    if rules.contains(&RuleId::ZeroDep) {
        for rel in &files.manifests {
            let text = read(&opts.root, rel)?;
            report.files_scanned += 1;
            report.diagnostics.extend(manifest::check_manifest(rel, &text, Some(&opts.root)));
        }
    }
    report.sort();
    Ok(report)
}

/// Runs the token-level rules on one Rust source. With `ignore_scope` the
/// path-based scoping is bypassed — the fixture tests use this to exercise
/// rules on files that live outside their production scope.
pub fn check_rust_source(
    rel_path: &str,
    text: &str,
    rules: &[RuleId],
    ignore_scope: bool,
) -> Vec<Diagnostic> {
    let file = SourceFile::parse(rel_path, text);
    check_parsed(&file, rules, ignore_scope)
}

/// Runs the deep (workspace-level) rules over an in-memory source set —
/// the fixture tests' entry point. Paths choose rule scope exactly as on
/// disk, so a fixture placed at `crates/serve/src/…` counts as hot.
pub fn check_deep_sources(sources: &[(&str, &str)], rules: &[RuleId]) -> Vec<Diagnostic> {
    let parsed: Vec<graph::ParsedFile> =
        sources.iter().map(|(p, s)| graph::ParsedFile::parse(p, s)).collect();
    let mut out = Vec::new();
    deep::analyze(&parsed, rules, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// The per-file rule dispatch over an already-parsed source.
fn check_parsed(file: &SourceFile, rules: &[RuleId], ignore_scope: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in rules {
        if !ignore_scope && !rule.applies_to(&file.rel_path) {
            continue;
        }
        match rule {
            RuleId::NoPanicHotpath => rules::no_panic_hotpath(file, &mut out),
            RuleId::Determinism => rules::determinism(file, &mut out),
            RuleId::ThreadDiscipline => rules::thread_discipline(file, &mut out),
            RuleId::RelaxedOrdering => rules::relaxed_ordering(file, &mut out),
            // zero-dep runs on manifests; the deep rules run on the whole
            // workspace after the file pass.
            RuleId::ZeroDep
            | RuleId::PanicReachability
            | RuleId::LockOrder
            | RuleId::AtomicPairing => {}
            RuleId::HotAlloc => rules::hot_alloc(file, &mut out),
        }
    }
    out
}

fn read(root: &Path, rel: &str) -> Result<String, String> {
    std::fs::read_to_string(root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip_through_parse() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.name()), Some(r));
        }
        assert_eq!(RuleId::parse("no_panic_hotpath"), Some(RuleId::NoPanicHotpath));
        assert_eq!(RuleId::parse("nope"), None);
    }

    #[test]
    fn rule_lists_parse_comma_separated() {
        assert_eq!(
            RuleId::parse_list("lock-order,atomic-pairing"),
            Some(vec![RuleId::LockOrder, RuleId::AtomicPairing])
        );
        assert_eq!(
            RuleId::parse_list(" determinism , zero_dep "),
            Some(vec![RuleId::Determinism, RuleId::ZeroDep])
        );
        assert_eq!(RuleId::parse_list("hot-alloc"), Some(vec![RuleId::HotAlloc]), "single name");
        assert_eq!(RuleId::parse_list("lock-order,nope"), None, "unknown member fails the list");
        assert_eq!(RuleId::parse_list(""), None);
        assert_eq!(RuleId::parse_list(","), None);
    }

    #[test]
    fn shallow_and_deep_partition_the_catalog() {
        assert_eq!(RuleId::SHALLOW.len() + RuleId::DEEP.len(), RuleId::ALL.len());
        for r in RuleId::SHALLOW {
            assert!(!r.is_deep());
        }
        for r in RuleId::DEEP {
            assert!(r.is_deep());
            assert!(r.allow_key().is_some(), "deep rules are site-justifiable");
        }
    }

    #[test]
    fn scopes_cover_the_intended_paths() {
        let np = RuleId::NoPanicHotpath;
        assert!(np.applies_to("crates/dimlink/src/linker.rs"));
        assert!(np.applies_to("crates/serve/src/bin/dimserve.rs"));
        assert!(np.applies_to("crates/core/src/pipeline.rs"));
        assert!(np.applies_to("crates/dimkb/src/snap.rs"), "the snapshot loader parses untrusted bytes");
        assert!(np.applies_to("crates/verify/src/check.rs"), "the checker serves /verify requests");
        assert!(np.applies_to("crates/verify/src/solution.rs"), "the repair search is request-path");
        assert!(!np.applies_to("crates/dimkb/src/kb.rs"), "KB construction may panic on bad curated data");
        assert!(!np.applies_to("crates/core/src/experiments.rs"));
        assert!(!np.applies_to("crates/obs/src/lib.rs"));

        let det = RuleId::Determinism;
        assert!(det.applies_to("crates/dimeval/src/benchmark.rs"));
        assert!(det.applies_to("crates/dimeval/src/perturb.rs"), "mutation picks must be seeded");
        assert!(det.applies_to("crates/bench/src/render.rs"));
        assert!(!det.applies_to("crates/bench/src/lib.rs"), "CLI arg parsing may read env");

        let th = RuleId::ThreadDiscipline;
        assert!(!th.applies_to("crates/par/src/lib.rs"));
        assert!(!th.applies_to("crates/serve/src/server.rs"));
        assert!(th.applies_to("crates/corpus/src/generate.rs"));

        assert!(RuleId::ZeroDep.applies_to("crates/obs/Cargo.toml"));
        assert!(!RuleId::ZeroDep.applies_to("crates/obs/src/lib.rs"));

        let ha = RuleId::HotAlloc;
        assert!(ha.applies_to("crates/dimlink/src/linker.rs"));
        assert!(ha.applies_to("crates/dimlink/src/annotate.rs"));
        assert!(ha.applies_to("crates/par/src/lib.rs"));
        assert!(ha.applies_to("crates/dimkb/src/snap.rs"), "snapshot validation is budgeted");
        assert!(ha.applies_to("crates/serve/src/admission.rs"), "shedding must not allocate");
        assert!(ha.applies_to("crates/serve/src/deadline.rs"), "budget checks are per-request");
        assert!(ha.applies_to("crates/verify/src/scale.rs"), "scale sets run per beam candidate");
        assert!(!ha.applies_to("crates/serve/src/load.rs"), "the load client may allocate");
        assert!(!ha.applies_to("crates/dimlink/src/reference.rs"), "the oracle may allocate");
        assert!(!ha.applies_to("crates/dimkb/src/kb.rs"), "KB construction is cold");
        assert!(!ha.applies_to("crates/dimlink/tests/proptests.rs"), "tests are out of scope");

        let pr = RuleId::PanicReachability;
        assert!(pr.applies_to("crates/dimlink/src/linker.rs"));
        assert!(pr.applies_to("crates/core/src/pipeline.rs"));
        assert!(!pr.applies_to("crates/serve/src/bin/dimserve.rs"), "binaries may die on startup");
        assert!(!pr.applies_to("crates/dimkb/src/kb.rs"));
        assert!(RuleId::LockOrder.applies_to("crates/obs/src/lib.rs"));
        assert!(RuleId::AtomicPairing.applies_to("crates/chaos/src/lib.rs"));
    }
}
