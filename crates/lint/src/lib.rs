//! `dim-lint`: a zero-dependency workspace lint engine enforcing the
//! repository's determinism, no-panic, and zero-dep invariants.
//!
//! The reproduction's core claim — DimEval/DimPerc outputs are
//! byte-identical across runs and thread widths — has been broken twice by
//! the same bug class (unordered hash-collection iteration feeding output).
//! This crate mechanizes the invariants instead of re-fixing violations:
//!
//! | rule | what it enforces |
//! |------|------------------|
//! | `no-panic-hotpath`  | no `unwrap`/`expect`/panicking macros/direct indexing in degraded-mode hot paths |
//! | `determinism`       | no hash-collection iteration, clocks, or env reads in output-producing paths |
//! | `thread-discipline` | raw `thread::spawn` only inside `crates/par` and `crates/serve` |
//! | `relaxed-ordering`  | every `Ordering::Relaxed` carries a written justification |
//! | `zero-dep`          | every `Cargo.toml` dependency resolves to a vendored in-repo path |
//! | `hot-alloc`         | no `.clone()`/`.to_string()`/`String::from`/`format!` in the annotate/link hot paths |
//!
//! Matching is string- and comment-aware: a hand-rolled lexer
//! ([`lexer`]) tokenizes each file, so `".unwrap()"` inside a string
//! literal, a raw string, or a nested block comment never fires a rule —
//! the failure mode of the awk scan this engine replaces. `#[cfg(test)]`
//! regions are exempt, and individual sites can be justified with
//! `// lint:allow(<key>, <reason>)` ([`source`]); the reason is mandatory.
//!
//! See DESIGN.md §11 for the rule catalog and how to add a rule.

pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod source;
pub mod walk;

pub use report::{Diagnostic, LintReport};

use source::SourceFile;
use std::path::Path;

/// The rule catalog, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleId {
    /// No panicking constructs in degraded-mode hot paths.
    NoPanicHotpath,
    /// No nondeterminism in output/golden-producing paths.
    Determinism,
    /// Raw `thread::spawn` confined to `crates/par` and `crates/serve`.
    ThreadDiscipline,
    /// `Ordering::Relaxed` requires a justification.
    RelaxedOrdering,
    /// All dependencies are vendored path dependencies.
    ZeroDep,
    /// No per-item allocation in the annotate/link hot paths.
    HotAlloc,
}

impl RuleId {
    /// Every rule, in catalog order.
    pub const ALL: [RuleId; 6] = [
        RuleId::NoPanicHotpath,
        RuleId::Determinism,
        RuleId::ThreadDiscipline,
        RuleId::RelaxedOrdering,
        RuleId::ZeroDep,
        RuleId::HotAlloc,
    ];

    /// CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::NoPanicHotpath => "no-panic-hotpath",
            RuleId::Determinism => "determinism",
            RuleId::ThreadDiscipline => "thread-discipline",
            RuleId::RelaxedOrdering => "relaxed-ordering",
            RuleId::ZeroDep => "zero-dep",
            RuleId::HotAlloc => "hot-alloc",
        }
    }

    /// The `lint:allow(<key>, …)` suppression key (`zero-dep` has none:
    /// a registry dependency is never justifiable offline).
    pub fn allow_key(self) -> Option<&'static str> {
        match self {
            RuleId::NoPanicHotpath => Some("no_panic"),
            RuleId::Determinism => Some("nondeterministic"),
            RuleId::ThreadDiscipline => Some("thread_spawn"),
            RuleId::RelaxedOrdering => Some("relaxed_ordering"),
            RuleId::ZeroDep => None,
            RuleId::HotAlloc => Some("hot_alloc"),
        }
    }

    /// Parses a CLI rule name (hyphen/underscore agnostic).
    pub fn parse(name: &str) -> Option<RuleId> {
        let n = source::normalize_key(name);
        RuleId::ALL.into_iter().find(|r| source::normalize_key(r.name()) == n)
    }

    /// Does this rule cover the file at workspace-relative `rel_path`?
    ///
    /// Scope is path-based because the invariants are architectural:
    /// hot paths are the crates the serving/degraded pipeline runs through;
    /// output paths are the crates whose bytes reach goldens.
    pub fn applies_to(self, rel_path: &str) -> bool {
        match self {
            RuleId::NoPanicHotpath => {
                rel_path.starts_with("crates/dimlink/src/")
                    || rel_path.starts_with("crates/par/src/")
                    || rel_path.starts_with("crates/serve/src/")
                    || rel_path.starts_with("crates/chaos/src/")
                    || rel_path == "crates/core/src/pipeline.rs"
                    || rel_path == "crates/dimkb/src/degrade.rs"
                    // The snapshot loader parses attacker-shaped bytes; a
                    // panic there is a crash on corrupt input.
                    || rel_path == "crates/dimkb/src/snap.rs"
                    // The verification checker runs on every /verify
                    // request and inside the solver's repair loop — it
                    // must reject, never die, on malformed ASTs.
                    || rel_path.starts_with("crates/verify/src/")
            }
            RuleId::Determinism => {
                rel_path.starts_with("crates/dimeval/src/")
                    || rel_path.starts_with("crates/mwp/src/")
                    || rel_path == "crates/bench/src/render.rs"
                    || rel_path == "crates/obs/src/lib.rs"
            }
            RuleId::ThreadDiscipline => {
                rel_path.ends_with(".rs")
                    && !rel_path.starts_with("crates/par/")
                    && !rel_path.starts_with("crates/serve/")
            }
            RuleId::RelaxedOrdering => rel_path.ends_with(".rs"),
            RuleId::ZeroDep => rel_path.ends_with("Cargo.toml"),
            RuleId::HotAlloc => {
                // The annotate/link hot paths. `reference.rs` is the retired
                // String-based linker kept as a differential-testing oracle —
                // allocating is its documented job.
                ((rel_path.starts_with("crates/dimlink/src/")
                    || rel_path.starts_with("crates/par/src/"))
                    && rel_path != "crates/dimlink/src/reference.rs")
                    // The snapshot codec: load must stay allocation-lean so
                    // validation holds its microsecond budget.
                    || rel_path == "crates/dimkb/src/snap.rs"
                    // Admission and deadline checks run once per accepted
                    // connection / parsed request — the overload fast path
                    // must shed without allocating.
                    || rel_path == "crates/serve/src/admission.rs"
                    || rel_path == "crates/serve/src/deadline.rs"
                    // The two checker layers run per beam candidate per
                    // problem inside the repair search.
                    || rel_path.starts_with("crates/verify/src/")
            }
        }
    }
}

/// Options for one lint run.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Workspace root to scan.
    pub root: std::path::PathBuf,
    /// Rules to run; empty means all.
    pub rules: Vec<RuleId>,
}

/// Runs the selected rules over the workspace at `opts.root`.
pub fn run(opts: &LintOptions) -> Result<LintReport, String> {
    let rules: Vec<RuleId> =
        if opts.rules.is_empty() { RuleId::ALL.to_vec() } else { opts.rules.clone() };
    let files = walk::discover(&opts.root)
        .map_err(|e| format!("cannot scan {}: {e}", opts.root.display()))?;
    let mut report = LintReport {
        rules: rules.iter().map(|r| r.name()).collect(),
        ..LintReport::default()
    };
    let run_rust = rules.iter().any(|r| *r != RuleId::ZeroDep);
    if run_rust {
        for rel in &files.rust {
            let text = read(&opts.root, rel)?;
            report.files_scanned += 1;
            report.diagnostics.extend(check_rust_source(rel, &text, &rules, false));
        }
    }
    if rules.contains(&RuleId::ZeroDep) {
        for rel in &files.manifests {
            let text = read(&opts.root, rel)?;
            report.files_scanned += 1;
            report.diagnostics.extend(manifest::check_manifest(rel, &text, Some(&opts.root)));
        }
    }
    report.sort();
    Ok(report)
}

/// Runs the token-level rules on one Rust source. With `ignore_scope` the
/// path-based scoping is bypassed — the fixture tests use this to exercise
/// rules on files that live outside their production scope.
pub fn check_rust_source(
    rel_path: &str,
    text: &str,
    rules: &[RuleId],
    ignore_scope: bool,
) -> Vec<Diagnostic> {
    let file = SourceFile::parse(rel_path, text);
    let mut out = Vec::new();
    for rule in rules {
        if !ignore_scope && !rule.applies_to(rel_path) {
            continue;
        }
        match rule {
            RuleId::NoPanicHotpath => rules::no_panic_hotpath(&file, &mut out),
            RuleId::Determinism => rules::determinism(&file, &mut out),
            RuleId::ThreadDiscipline => rules::thread_discipline(&file, &mut out),
            RuleId::RelaxedOrdering => rules::relaxed_ordering(&file, &mut out),
            RuleId::ZeroDep => {}
            RuleId::HotAlloc => rules::hot_alloc(&file, &mut out),
        }
    }
    out
}

fn read(root: &Path, rel: &str) -> Result<String, String> {
    std::fs::read_to_string(root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip_through_parse() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.name()), Some(r));
        }
        assert_eq!(RuleId::parse("no_panic_hotpath"), Some(RuleId::NoPanicHotpath));
        assert_eq!(RuleId::parse("nope"), None);
    }

    #[test]
    fn scopes_cover_the_intended_paths() {
        let np = RuleId::NoPanicHotpath;
        assert!(np.applies_to("crates/dimlink/src/linker.rs"));
        assert!(np.applies_to("crates/serve/src/bin/dimserve.rs"));
        assert!(np.applies_to("crates/core/src/pipeline.rs"));
        assert!(np.applies_to("crates/dimkb/src/snap.rs"), "the snapshot loader parses untrusted bytes");
        assert!(np.applies_to("crates/verify/src/check.rs"), "the checker serves /verify requests");
        assert!(np.applies_to("crates/verify/src/solution.rs"), "the repair search is request-path");
        assert!(!np.applies_to("crates/dimkb/src/kb.rs"), "KB construction may panic on bad curated data");
        assert!(!np.applies_to("crates/core/src/experiments.rs"));
        assert!(!np.applies_to("crates/obs/src/lib.rs"));

        let det = RuleId::Determinism;
        assert!(det.applies_to("crates/dimeval/src/benchmark.rs"));
        assert!(det.applies_to("crates/dimeval/src/perturb.rs"), "mutation picks must be seeded");
        assert!(det.applies_to("crates/bench/src/render.rs"));
        assert!(!det.applies_to("crates/bench/src/lib.rs"), "CLI arg parsing may read env");

        let th = RuleId::ThreadDiscipline;
        assert!(!th.applies_to("crates/par/src/lib.rs"));
        assert!(!th.applies_to("crates/serve/src/server.rs"));
        assert!(th.applies_to("crates/corpus/src/generate.rs"));

        assert!(RuleId::ZeroDep.applies_to("crates/obs/Cargo.toml"));
        assert!(!RuleId::ZeroDep.applies_to("crates/obs/src/lib.rs"));

        let ha = RuleId::HotAlloc;
        assert!(ha.applies_to("crates/dimlink/src/linker.rs"));
        assert!(ha.applies_to("crates/dimlink/src/annotate.rs"));
        assert!(ha.applies_to("crates/par/src/lib.rs"));
        assert!(ha.applies_to("crates/dimkb/src/snap.rs"), "snapshot validation is budgeted");
        assert!(ha.applies_to("crates/serve/src/admission.rs"), "shedding must not allocate");
        assert!(ha.applies_to("crates/serve/src/deadline.rs"), "budget checks are per-request");
        assert!(ha.applies_to("crates/verify/src/scale.rs"), "scale sets run per beam candidate");
        assert!(!ha.applies_to("crates/serve/src/load.rs"), "the load client may allocate");
        assert!(!ha.applies_to("crates/dimlink/src/reference.rs"), "the oracle may allocate");
        assert!(!ha.applies_to("crates/dimkb/src/kb.rs"), "KB construction is cold");
        assert!(!ha.applies_to("crates/dimlink/tests/proptests.rs"), "tests are out of scope");
    }
}
