//! **panic-reachability**: transitively closes panic sites over the call
//! graph so a hot-path function is flagged when anything it *calls* can
//! panic, not just when it contains the panic inline.
//!
//! Panic sites are `.unwrap()` / `.expect(…)` and the
//! `panic!`/`unreachable!`/`todo!`/`unimplemented!` macros. Indexing is
//! deliberately *not* an interprocedural site: it is idiomatic in cold
//! code with locally-checked bounds, and treating every `v[i]` in the
//! workspace as a panic source would drown the signal (the intraprocedural
//! `no-panic-hotpath` rule still bans indexing inside hot files, where the
//! discipline is absolute). A site justified with
//! `lint:allow(no_panic, …)` is treated as total — the justification says
//! why it cannot fire, so propagating it would re-litigate the comment.
//!
//! Roots are the functions in `no-panic-hotpath` scope, minus `src/bin/`
//! entry points (binaries may die loudly on startup errors). Each finding
//! carries a minimal call-chain witness to the panic site; minimality
//! (fewest frames, then lowest call site) makes the report deterministic.

use crate::graph::{Graph, ParsedFile};
use crate::items::{ident_at, punct_at};
use crate::report::{Diagnostic, Severity, WitnessStep};
use crate::RuleId;
use std::collections::BTreeSet;

/// One function's own (non-test, non-justified) panic site.
struct Site {
    line: u32,
    what: &'static str,
}

/// Runs the rule, appending findings.
pub(crate) fn check(files: &[ParsedFile], g: &Graph, out: &mut Vec<Diagnostic>) {
    let n = g.nodes.len();
    let sites: Vec<Option<Site>> = (0..n).map(|i| own_panic_site(files, g, i)).collect();

    // Fewest-frames distance to a panic site: 1 for a function with its own
    // site, 1 + min over callees otherwise. Plain relaxation to the unique
    // fixpoint, so the result is iteration-order independent.
    const INF: u32 = u32::MAX;
    let mut dist: Vec<u32> = sites.iter().map(|s| if s.is_some() { 1 } else { INF }).collect();
    loop {
        let mut changed = false;
        for u in 0..n {
            if sites[u].is_some() {
                continue;
            }
            let best = g.edges[u]
                .iter()
                .filter(|e| dist[e.callee] != INF)
                .map(|e| dist[e.callee].saturating_add(1))
                .min()
                .unwrap_or(INF);
            if best < dist[u] {
                dist[u] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for u in 0..n {
        let file = &files[g.nodes[u].file];
        let def = g.def(files, u);
        if def.in_test || !RuleId::PanicReachability.applies_to(&file.source.rel_path) {
            continue;
        }
        let mut seen: BTreeSet<(u32, usize)> = BTreeSet::new();
        for e in &g.edges[u] {
            if dist[e.callee] == INF
                || !seen.insert((e.line, e.callee))
                || file.source.in_test_code(e.line)
                || file.source.suppressed("panic_reachable", e.line)
            {
                continue;
            }
            let witness = reconstruct(files, g, &sites, &dist, e.callee);
            let terminal = terminal_node(g, &dist, e.callee);
            let what = sites[terminal].as_ref().map(|s| s.what).unwrap_or("a panic");
            out.push(Diagnostic {
                path: file.source.rel_path.clone(),
                line: e.line,
                rule: RuleId::PanicReachability.name(),
                message: format!(
                    "hot-path fn `{}` calls `{}`, which can reach {what} in `{}` \
                     ({} frame(s) deep) — make the callee total or justify with \
                     lint:allow(panic_reachable, reason)",
                    g.display_name(files, u),
                    g.display_name(files, e.callee),
                    g.display_name(files, terminal),
                    dist[e.callee],
                ),
                severity: Severity::Error,
                witness,
                cycle: Vec::new(),
            });
        }
    }
}

/// The node whose own panic site ends the witness chain starting at
/// `start` — walks the same deterministic steps as [`reconstruct`].
fn terminal_node(g: &Graph, dist: &[u32], start: usize) -> usize {
    let mut v = start;
    for _ in 0..g.nodes.len() {
        if dist[v] == 1 {
            return v;
        }
        match next_step(g, dist, v) {
            Some(e) => v = e,
            None => return v,
        }
    }
    v
}

/// The deterministic next hop from `v` toward the panic: the edge whose
/// callee sits exactly one frame closer, lowest call site first.
fn next_step(g: &Graph, dist: &[u32], v: usize) -> Option<usize> {
    g.edges[v]
        .iter()
        .filter(|e| dist[e.callee] != u32::MAX && dist[e.callee] + 1 == dist[v])
        .min_by_key(|e| (e.line, e.token, e.callee))
        .map(|e| e.callee)
}

/// Builds the witness chain from `start` down to the panic site. Each step
/// names a function and the line where it hands off (its call into the
/// next frame); the final step carries the panic site itself.
fn reconstruct(
    files: &[ParsedFile],
    g: &Graph,
    sites: &[Option<Site>],
    dist: &[u32],
    start: usize,
) -> Vec<WitnessStep> {
    let mut steps = Vec::new();
    let mut v = start;
    for _ in 0..g.nodes.len() {
        let path = files[g.nodes[v].file].source.rel_path.clone();
        if dist[v] == 1 {
            if let Some(site) = &sites[v] {
                steps.push(WitnessStep { func: g.display_name(files, v), path, line: site.line });
            }
            break;
        }
        let Some(next) = g.edges[v]
            .iter()
            .filter(|e| dist[e.callee] != u32::MAX && dist[e.callee] + 1 == dist[v])
            .min_by_key(|e| (e.line, e.token, e.callee))
        else {
            break;
        };
        steps.push(WitnessStep { func: g.display_name(files, v), path, line: next.line });
        v = next.callee;
    }
    steps
}

/// Scans one function's body (excluding nested fns) for its first panic
/// site that is neither test code nor `lint:allow(no_panic)`-justified.
fn own_panic_site(files: &[ParsedFile], g: &Graph, idx: usize) -> Option<Site> {
    let node = g.nodes[idx];
    let file = &files[node.file];
    let def = &file.items.fns[node.fn_idx];
    if def.in_test {
        return None;
    }
    let (lo, hi) = def.body?;
    let nested = g.nested_ranges(files, idx);
    let t = &file.source.tokens;
    let mut i = lo;
    while i <= hi && i < t.len() {
        if nested.iter().any(|&(a, b)| i >= a && i <= b) {
            i += 1;
            continue;
        }
        let what = match ident_at(t, i) {
            Some(m @ ("unwrap" | "expect"))
                if punct_at(t, i.wrapping_sub(1), '.') && punct_at(t, i + 1, '(') =>
            {
                // `self.expect(…)` where the impl defines its own `expect`
                // (the vendored serde_json parser does) is a plain method
                // call, not `Option::expect` — the call graph carries it.
                let is_own_method = super::receiver_ident(t, i) == Some("self")
                    && def.impl_type.is_some()
                    && file
                        .items
                        .fns
                        .iter()
                        .any(|f2| f2.name == m && f2.impl_type == def.impl_type);
                if is_own_method {
                    None
                } else {
                    Some(if m == "unwrap" { "`.unwrap()`" } else { "`.expect()`" })
                }
            }
            Some("panic") if punct_at(t, i + 1, '!') => Some("`panic!`"),
            Some("unreachable") if punct_at(t, i + 1, '!') => Some("`unreachable!`"),
            Some("todo") if punct_at(t, i + 1, '!') => Some("`todo!`"),
            Some("unimplemented") if punct_at(t, i + 1, '!') => Some("`unimplemented!`"),
            _ => None,
        };
        if let Some(what) = what {
            let line = t[i].line;
            if !file.source.in_test_code(line) && !file.source.suppressed("no_panic", line) {
                return Some(Site { line, what });
            }
        }
        i += 1;
    }
    None
}
