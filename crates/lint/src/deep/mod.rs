//! The deep (workspace-level) rules: analyses that need the cross-file
//! symbol table and call graph ([`crate::graph`]) rather than one file's
//! token stream. Dispatched by [`analyze`]; see DESIGN.md §16.

pub mod atomic_pair;
pub mod lock_order;
pub mod panic_reach;

use crate::graph::{Graph, ParsedFile};
use crate::items::punct_at;
use crate::lexer::{TokKind, Token};
use crate::report::Diagnostic;
use crate::RuleId;

/// Runs the selected deep rules over the parsed workspace. Non-deep rule
/// ids are ignored — the caller filters, this just double-checks.
pub fn analyze(files: &[ParsedFile], rules: &[RuleId], out: &mut Vec<Diagnostic>) {
    let deep: Vec<RuleId> = rules.iter().copied().filter(|r| r.is_deep()).collect();
    if deep.is_empty() {
        return;
    }
    let graph = Graph::build(files);
    if deep.contains(&RuleId::PanicReachability) {
        panic_reach::check(files, &graph, out);
    }
    if deep.contains(&RuleId::LockOrder) {
        lock_order::check(files, &graph, out);
    }
    if deep.contains(&RuleId::AtomicPairing) {
        atomic_pair::check(files, out);
    }
}

/// The receiver identifier of a method call whose method name is the ident
/// at token `i` (`self.state.lock()` at `lock` ⇒ `state`;
/// `self.shards[i].lock()` ⇒ `shards`; `registry().lock()` ⇒ `registry`).
/// Walks backward over one balanced `[…]`/`(…)` group at most — enough for
/// every shape in this workspace — and `None` for anything else.
pub(crate) fn receiver_ident(t: &[Token], i: usize) -> Option<&str> {
    if i < 2 || !punct_at(t, i - 1, '.') {
        return None;
    }
    let mut j = i - 2;
    for _ in 0..2 {
        match &t[j].kind {
            TokKind::Ident(name) => return Some(name.as_str()),
            TokKind::Punct(close @ (']' | ')')) => {
                let open = if *close == ']' { '[' } else { '(' };
                let mut depth = 0usize;
                let lo = j.saturating_sub(128);
                loop {
                    match &t[j].kind {
                        TokKind::Punct(c) if *c == *close => depth += 1,
                        TokKind::Punct(c) if *c == open => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == lo {
                        return None;
                    }
                    j -= 1;
                }
                // `j` is the opener; the receiver base is just before it.
                j = j.checked_sub(1)?;
            }
            _ => return None,
        }
    }
    None
}

/// Is the ident at `i` a method call (`.name(`)?
pub(crate) fn is_method_call(t: &[Token], i: usize) -> bool {
    i >= 1 && punct_at(t, i - 1, '.') && crate::graph::call_paren(t, i).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn toks(src: &str) -> Vec<Token> {
        SourceFile::parse("x.rs", src).tokens
    }

    fn recv_of(src: &str, method: &str) -> Option<String> {
        let t = toks(src);
        let i = (0..t.len())
            .find(|&i| matches!(&t[i].kind, TokKind::Ident(n) if n == method))
            .unwrap();
        receiver_ident(&t, i).map(String::from)
    }

    #[test]
    fn receiver_shapes() {
        assert_eq!(recv_of("self.state.lock()", "lock").as_deref(), Some("state"));
        assert_eq!(recv_of("REGISTRY.lock()", "lock").as_deref(), Some("REGISTRY"));
        assert_eq!(recv_of("self.shards[i].lock()", "lock").as_deref(), Some("shards"));
        assert_eq!(recv_of("registry().lock()", "lock").as_deref(), Some("registry"));
        assert_eq!(recv_of("self.lock()", "lock").as_deref(), Some("self"));
        assert_eq!(recv_of("lock()", "lock"), None, "bare call has no receiver");
    }
}
