//! **lock-order**: extracts per-function lock-acquisition scopes, builds
//! the workspace lock-order graph, and reports (a) cycles — two functions
//! acquiring the same pair of locks in opposite orders — as potential
//! deadlocks with the cycle path, and (b) locks held across blocking
//! calls (condvar waits, socket I/O, `catch_unwind`, or a call into a
//! function that itself blocks) as advisory warnings.
//!
//! A lock's identity is `crate::receiver-ident` (`serve::state`,
//! `obs::REGISTRY`): field-name granularity, which conflates distinct
//! instances behind one name (the sharded cache's `shard` guards) and so
//! self-edges `A → A` are dropped rather than reported — with receiver
//! aliasing they are overwhelmingly re-acquisitions of *different*
//! instances, not reentrant deadlocks. Guard scopes are syntactic: a
//! `let`-bound guard is held to the end of its enclosing block (or an
//! explicit `drop(guard)`); an unbound temporary to the end of its
//! statement. Condvar `wait*` calls release their guard while parked, so
//! a wait with exactly one lock held is the handoff idiom and exempt;
//! with two or more held it warns.

use crate::graph::{Graph, ParsedFile};
use crate::items::{ident_at, punct_at};
use crate::lexer::TokKind;
use crate::report::{Diagnostic, Severity};
use crate::RuleId;
use std::collections::{BTreeMap, BTreeSet};

/// Methods that park or block the calling thread.
const BLOCKING_METHODS: &[&str] =
    &["wait", "wait_timeout", "wait_while", "accept", "recv", "recv_timeout", "read_exact", "write_all"];

/// The condvar subset of [`BLOCKING_METHODS`] (guard-releasing waits).
const CONDVAR_WAITS: &[&str] = &["wait", "wait_timeout", "wait_while"];

/// One lock acquisition and the token range its guard is held over.
struct Acq {
    /// Lock identity: `crate::receiver`.
    lock: String,
    line: u32,
    /// Token index of the acquiring method ident.
    start: usize,
    /// Last token index covered by the guard.
    end: usize,
}

/// One edge of the lock-order graph with its earliest witness site.
struct EdgeSite {
    file: usize,
    line: u32,
    func: String,
    /// The callee the held-lock edge flowed through, if interprocedural.
    via: Option<String>,
}

/// Runs the rule, appending findings.
pub(crate) fn check(files: &[ParsedFile], g: &Graph, out: &mut Vec<Diagnostic>) {
    let rwlocks = rwlock_names(files);
    let n = g.nodes.len();
    let acqs: Vec<Vec<Acq>> = (0..n).map(|i| acquisitions(files, g, i, &rwlocks)).collect();

    // Transitive lock sets: every lock a call into `u` may acquire.
    let mut trans: Vec<BTreeSet<String>> =
        acqs.iter().map(|a| a.iter().map(|x| x.lock.clone()).collect()).collect();
    loop {
        let mut changed = false;
        for u in 0..n {
            for e in &g.edges[u] {
                let add: Vec<String> =
                    trans[e.callee].iter().filter(|l| !trans[u].contains(*l)).cloned().collect();
                if !add.is_empty() {
                    trans[u].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Does a function's own body block (directly)?
    let blocks: Vec<bool> = (0..n).map(|i| blocks_directly(files, g, i)).collect();

    let mut order: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
    for (u, fn_acqs) in acqs.iter().enumerate() {
        let file_idx = g.nodes[u].file;
        let file = &files[file_idx];
        let def = g.def(files, u);
        if def.in_test {
            continue;
        }
        let t = &file.source.tokens;
        for a in fn_acqs {
            if file.source.suppressed("lock_order", a.line) {
                continue;
            }
            // (1) Nested direct acquisitions: a → b order edges.
            for b in fn_acqs {
                if b.start > a.start && b.start <= a.end && b.lock != a.lock {
                    order.entry((a.lock.clone(), b.lock.clone())).or_insert_with(|| EdgeSite {
                        file: file_idx,
                        line: b.line,
                        func: g.display_name(files, u),
                        via: None,
                    });
                }
            }
            // (2) Calls made while the guard is held: edges into everything
            // the callee may transitively acquire, and a warning when the
            // callee itself blocks.
            for e in &g.edges[u] {
                if e.token <= a.start || e.token > a.end {
                    continue;
                }
                for l in &trans[e.callee] {
                    if *l != a.lock {
                        order.entry((a.lock.clone(), l.clone())).or_insert_with(|| EdgeSite {
                            file: file_idx,
                            line: e.line,
                            func: g.display_name(files, u),
                            via: Some(g.display_name(files, e.callee)),
                        });
                    }
                }
                if blocks[e.callee]
                    && !file.source.suppressed("lock_order", e.line)
                    && !file.source.in_test_code(e.line)
                {
                    warn(out, file, e.line, format!(
                        "lock `{}` held across call to `{}`, which can block — \
                         narrow the guard or justify with lint:allow(lock_order, reason)",
                        a.lock,
                        g.display_name(files, e.callee),
                    ));
                }
            }
            // (3) Blocking operations inside the guard scope.
            let mut i = a.start + 1;
            while i <= a.end && i < t.len() {
                if let Some(m) = ident_at(t, i) {
                    let held = fn_acqs.iter().filter(|x| i > x.start && i <= x.end).count();
                    let is_blocking_method = BLOCKING_METHODS.contains(&m)
                        && punct_at(t, i.wrapping_sub(1), '.')
                        && punct_at(t, i + 1, '(');
                    let is_catch_unwind = m == "catch_unwind" && punct_at(t, i + 1, '(');
                    // A condvar wait that holds exactly one lock is the
                    // handoff idiom: the guard is released while parked.
                    let exempt = CONDVAR_WAITS.contains(&m) && held == 1;
                    if (is_blocking_method || is_catch_unwind)
                        && !exempt
                        && !file.source.suppressed("lock_order", t[i].line)
                        && !file.source.in_test_code(t[i].line)
                    {
                        warn(out, file, t[i].line, format!(
                            "lock `{}` held across blocking `{m}` — narrow the guard \
                             or justify with lint:allow(lock_order, reason)",
                            a.lock,
                        ));
                    }
                }
                i += 1;
            }
        }
    }

    report_cycles(files, &order, out);
}

fn warn(out: &mut Vec<Diagnostic>, file: &ParsedFile, line: u32, message: String) {
    let d = Diagnostic {
        severity: Severity::Warn,
        ..Diagnostic::new(file.source.rel_path.clone(), line, RuleId::LockOrder.name(), message)
    };
    if !out.contains(&d) {
        out.push(d);
    }
}

/// Finds strongly-connected components of the lock-order graph and reports
/// each (size ≥ 2) as a potential deadlock with a concrete cycle path.
fn report_cycles(
    files: &[ParsedFile],
    order: &BTreeMap<(String, String), EdgeSite>,
    out: &mut Vec<Diagnostic>,
) {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in order.keys() {
        adj.entry(a.as_str()).or_default().insert(b.as_str());
        adj.entry(b.as_str()).or_default();
    }
    // Reachability closure (the graph is tiny: one node per named lock).
    let reach: BTreeMap<&str, BTreeSet<&str>> = adj
        .keys()
        .map(|&start| {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut stack = vec![start];
            while let Some(v) = stack.pop() {
                for &w in adj.get(v).into_iter().flatten() {
                    if seen.insert(w) {
                        stack.push(w);
                    }
                }
            }
            (start, seen)
        })
        .collect();

    let mut assigned: BTreeSet<&str> = BTreeSet::new();
    for &a in adj.keys() {
        if assigned.contains(a) || !reach[a].contains(a) {
            continue;
        }
        let comp: BTreeSet<&str> = reach[a]
            .iter()
            .copied()
            .filter(|&b| reach[b].contains(a))
            .collect();
        assigned.extend(comp.iter().copied());
        let cycle = cycle_path(a, &comp, &adj, &reach);
        // The witness site: the first edge of the cycle.
        let site = order
            .get(&(cycle[0].clone(), cycle[1].clone()))
            .expect("cycle edges come from the order map");
        let file = &files[site.file];
        if file.source.suppressed("lock_order", site.line) {
            continue;
        }
        let via = site
            .via
            .as_ref()
            .map(|v| format!(" via call to `{v}`"))
            .unwrap_or_default();
        out.push(Diagnostic {
            path: file.source.rel_path.clone(),
            line: site.line,
            rule: RuleId::LockOrder.name(),
            message: format!(
                "potential deadlock: lock-order cycle `{}` (first edge in `{}`{via}) — \
                 acquire these locks in one global order or justify with \
                 lint:allow(lock_order, reason)",
                cycle.join(" -> "),
                site.func,
            ),
            severity: Severity::Error,
            witness: Vec::new(),
            cycle,
        });
    }
}

/// A concrete cycle through `comp` starting and ending at `start`,
/// following smallest-named edges first.
fn cycle_path(
    start: &str,
    comp: &BTreeSet<&str>,
    adj: &BTreeMap<&str, BTreeSet<&str>>,
    reach: &BTreeMap<&str, BTreeSet<&str>>,
) -> Vec<String> {
    let mut path = vec![start.to_string()];
    let mut cur = start;
    for _ in 0..comp.len() {
        let next = adj
            .get(cur)
            .into_iter()
            .flatten()
            .copied()
            .filter(|w| comp.contains(w))
            .find(|&w| {
                (w == start && path.len() >= 2)
                    || (w != start && !path.iter().any(|p| p == w) && reach[w].contains(start))
            });
        match next {
            Some(w) => {
                path.push(w.to_string());
                if w == start {
                    return path;
                }
                cur = w;
            }
            None => break,
        }
    }
    path.push(start.to_string());
    path
}

/// Names declared with a `RwLock` type, per crate — `.read()`/`.write()`
/// only count as acquisitions on these receivers (everything else named
/// `read`/`write` is I/O).
fn rwlock_names(files: &[ParsedFile]) -> BTreeMap<String, BTreeSet<String>> {
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in files {
        let t = &f.source.tokens;
        for k in 0..t.len() {
            if ident_at(t, k) != Some("RwLock") {
                continue;
            }
            // Walk back over `std :: sync ::`-style path segments.
            let mut j = k;
            while j >= 3 && crate::items::path_sep_at(t, j - 2) && ident_at(t, j - 3).is_some() {
                j -= 3;
            }
            // `name : RwLock<…>` — a single `:` (not `::`) before the type.
            if j >= 2
                && punct_at(t, j - 1, ':')
                && !punct_at(t, j.wrapping_sub(2), ':')
            {
                if let Some(name) = ident_at(t, j - 2) {
                    out.entry(f.crate_name.clone()).or_default().insert(name.to_string());
                }
            }
        }
    }
    out
}

/// Extracts the lock acquisitions (and guard scopes) of one function.
fn acquisitions(
    files: &[ParsedFile],
    g: &Graph,
    idx: usize,
    rwlocks: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<Acq> {
    let node = g.nodes[idx];
    let file = &files[node.file];
    let def = &file.items.fns[node.fn_idx];
    let Some((lo, hi)) = def.body else { return Vec::new() };
    let nested = g.nested_ranges(files, idx);
    let t = &file.source.tokens;
    let empty = BTreeSet::new();
    let crate_rwlocks = rwlocks.get(&file.crate_name).unwrap_or(&empty);
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut i = lo;
    while i <= hi && i < t.len() {
        if nested.iter().any(|&(a, b)| i >= a && i <= b) {
            i += 1;
            continue;
        }
        match &t[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => depth = depth.saturating_sub(1),
            TokKind::Ident(m) if super::is_method_call(t, i) => {
                let is_acq = match m.as_str() {
                    "lock" => true,
                    "read" | "write" => {
                        super::receiver_ident(t, i).is_some_and(|r| crate_rwlocks.contains(r))
                    }
                    _ => false,
                };
                if is_acq {
                    if let Some(recv) = super::receiver_ident(t, i) {
                        // `self.lock()` where `lock` is a same-impl method
                        // is a call, not an acquisition — the call graph
                        // carries its effects instead.
                        let is_helper = recv == "self"
                            && file.items.fns.iter().any(|f2| {
                                f2.name == *m && f2.impl_type == def.impl_type
                            });
                        if !is_helper {
                            let lock_name = if recv == "self" {
                                def.impl_type.clone().unwrap_or_else(|| "self".to_string())
                            } else {
                                recv.to_string()
                            };
                            let end = guard_end(t, i, lo, hi, depth);
                            out.push(Acq {
                                lock: format!("{}::{}", file.crate_name, lock_name),
                                line: t[i].line,
                                start: i,
                                end,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// The last token index a guard acquired at `i` (depth `depth`) is held
/// over: to its binding's `drop(…)`, to the end of the enclosing block for
/// `let`-bound guards, or to the end of the statement for temporaries.
fn guard_end(t: &[crate::lexer::Token], i: usize, lo: usize, hi: usize, depth: usize) -> usize {
    let binding = let_binding(t, i, lo);
    let mut d = depth;
    let mut j = i + 1;
    let last = hi.min(t.len().saturating_sub(1));
    while j <= last {
        match &t[j].kind {
            TokKind::Punct('{') => d += 1,
            TokKind::Punct('}') => {
                if d == depth {
                    return j; // leaving the guard's block
                }
                d = d.saturating_sub(1);
            }
            TokKind::Punct(';') if binding.is_none() && d == depth => return j,
            TokKind::Ident(name) if name == "drop" && punct_at(t, j + 1, '(') => {
                if let (Some(b), Some(arg)) = (binding, ident_at(t, j + 2)) {
                    if arg == b && punct_at(t, j + 3, ')') {
                        return j;
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    last
}

/// The `let` binding a guard expression is assigned to, if the statement
/// has the `let [mut] name = …` shape within a few tokens back.
fn let_binding(t: &[crate::lexer::Token], i: usize, lo: usize) -> Option<&str> {
    let floor = lo.max(i.saturating_sub(24));
    let mut j = i;
    while j > floor {
        j -= 1;
        match &t[j].kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => return None,
            TokKind::Punct('=')
                if !punct_at(t, j + 1, '=')
                    && !punct_at(t, j + 1, '>')
                    && !matches!(
                        t.get(j.wrapping_sub(1)).map(|x| &x.kind),
                        Some(TokKind::Punct(
                            '=' | '!' | '<' | '>' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'
                        ))
                    ) =>
            {
                let name = ident_at(t, j - 1)?;
                let kw = ident_at(t, j.wrapping_sub(2));
                return (kw == Some("let") || kw == Some("mut") && ident_at(t, j.wrapping_sub(3)) == Some("let"))
                    .then_some(name);
            }
            _ => {}
        }
    }
    None
}

/// Does this function's own body contain a blocking operation (condvar
/// wait, socket/channel blocking call, `catch_unwind`)? Deliberately
/// *not* transitive — one level keeps the heuristic's noise bounded.
fn blocks_directly(files: &[ParsedFile], g: &Graph, idx: usize) -> bool {
    let node = g.nodes[idx];
    let file = &files[node.file];
    let def = &file.items.fns[node.fn_idx];
    let Some((lo, hi)) = def.body else { return false };
    let nested = g.nested_ranges(files, idx);
    let t = &file.source.tokens;
    let mut i = lo;
    while i <= hi && i < t.len() {
        if nested.iter().any(|&(a, b)| i >= a && i <= b) {
            i += 1;
            continue;
        }
        if let Some(m) = ident_at(t, i) {
            if (BLOCKING_METHODS.contains(&m)
                && punct_at(t, i.wrapping_sub(1), '.')
                && punct_at(t, i + 1, '('))
                || (m == "catch_unwind" && punct_at(t, i + 1, '('))
            {
                return true;
            }
        }
        i += 1;
    }
    false
}
