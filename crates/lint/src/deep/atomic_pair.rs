//! **atomic-pairing**: pairs `Ordering::Release` stores with
//! `Acquire`/`AcqRel` loads on the same atomic field path (and vice
//! versa), mechanizing the bug class PR 5 found by hand — a `Release`
//! store whose readers all load `Relaxed` synchronizes nothing.
//!
//! An atomic field's identity is `crate::receiver-ident`
//! (`chaos::ENABLED`, `serve::open`). Only operations that *literally*
//! name an `Ordering::…` variant in their arguments are classified;
//! orderings passed through variables are skipped (rare, and a variable
//! ordering defeats textual analysis honestly). Three findings, all
//! errors:
//!
//! 1. an exact-`Release` store on a path with no acquire-capable read;
//! 2. an `Acquire` load on a path with no release-capable write;
//! 3. the PR 5 class — an exact-`Release` store coexisting with a
//!    `Relaxed` load of the same path (the load can never observe the
//!    release edge; it must be `Acquire`).
//!
//! `SeqCst` stores read by `Relaxed` loads are deliberately *not*
//! flagged: that is the obs counter pattern, where the `Relaxed` reads
//! carry their own `relaxed-ordering` justifications. All-`Relaxed`
//! paths are likewise out of scope — justifying `Relaxed` is the
//! `relaxed-ordering` rule's job; this rule checks pairing.

use crate::graph::ParsedFile;
use crate::items::{ident_at, path_sep_at, punct_at};
use crate::lexer::TokKind;
use crate::report::{Diagnostic, Severity};
use crate::RuleId;
use std::collections::BTreeMap;

/// Atomic method names that write (RMWs are both read and write).
const WRITE_OPS: &[&str] = &[
    "store", "swap", "compare_exchange", "compare_exchange_weak", "fetch_add", "fetch_sub",
    "fetch_and", "fetch_or", "fetch_xor", "fetch_nand", "fetch_max", "fetch_min", "fetch_update",
];

/// Atomic method names that read.
const READ_OPS: &[&str] = &[
    "load", "swap", "compare_exchange", "compare_exchange_weak", "fetch_add", "fetch_sub",
    "fetch_and", "fetch_or", "fetch_xor", "fetch_nand", "fetch_max", "fetch_min", "fetch_update",
];

/// One atomic operation site.
struct Op {
    file: usize,
    line: u32,
    /// Method name (`store`, `load`, `fetch_add`, …).
    method: &'static str,
    /// `Ordering::` variants named in the argument list, in order.
    orderings: Vec<&'static str>,
}

impl Op {
    fn is_write(&self) -> bool {
        WRITE_OPS.contains(&self.method)
    }
    fn is_read(&self) -> bool {
        READ_OPS.contains(&self.method)
    }
    /// A write that publishes (release-capable).
    fn releases(&self) -> bool {
        self.is_write()
            && self.orderings.iter().any(|o| matches!(*o, "Release" | "AcqRel" | "SeqCst"))
    }
    /// A read that can observe a release edge (acquire-capable).
    fn acquires(&self) -> bool {
        self.is_read()
            && self.orderings.iter().any(|o| matches!(*o, "Acquire" | "AcqRel" | "SeqCst"))
    }
    /// A store-side op that names `Release` exactly.
    fn exact_release_write(&self) -> bool {
        self.is_write() && self.orderings.contains(&"Release")
    }
    /// A pure-`Relaxed` load.
    fn relaxed_load(&self) -> bool {
        self.method == "load" && self.orderings == ["Relaxed"]
    }
    /// A load that names `Acquire`.
    fn acquire_load(&self) -> bool {
        self.method == "load" && self.orderings.contains(&"Acquire")
    }
}

/// Runs the rule, appending findings.
pub(crate) fn check(files: &[ParsedFile], out: &mut Vec<Diagnostic>) {
    let mut by_path: BTreeMap<String, Vec<Op>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        collect_ops(fi, f, &mut by_path);
    }

    for (path, ops) in &by_path {
        let any_acquire_read = ops.iter().any(Op::acquires);
        let any_release_write = ops.iter().any(Op::releases);
        let release_site =
            ops.iter().find(|o| o.exact_release_write()).map(|o| (o.file, o.line));
        for op in ops {
            if op.exact_release_write() && !any_acquire_read {
                emit(files, out, op, format!(
                    "`Release` store on `{path}` is never observed by an Acquire/AcqRel \
                     load — add the acquiring read or justify with \
                     lint:allow(atomic_pairing, reason)"
                ));
            }
            if op.acquire_load() && !any_release_write {
                emit(files, out, op, format!(
                    "`Acquire` load on `{path}` has no Release/AcqRel/SeqCst store to \
                     synchronize with — publish with Release or justify with \
                     lint:allow(atomic_pairing, reason)"
                ));
            }
            if op.relaxed_load() {
                if let Some((rf, rl)) = release_site {
                    emit(files, out, op, format!(
                        "`Relaxed` load on `{path}` cannot synchronize with the `Release` \
                         store at {}:{rl} — load with Acquire or justify with \
                         lint:allow(atomic_pairing, reason)",
                        files[rf].source.rel_path,
                    ));
                }
            }
        }
    }
}

fn emit(files: &[ParsedFile], out: &mut Vec<Diagnostic>, op: &Op, message: String) {
    out.push(Diagnostic {
        severity: Severity::Error,
        ..Diagnostic::new(
            files[op.file].source.rel_path.clone(),
            op.line,
            RuleId::AtomicPairing.name(),
            message,
        )
    });
}

/// Scans one file for atomic operations with literal orderings.
fn collect_ops(fi: usize, f: &ParsedFile, by_path: &mut BTreeMap<String, Vec<Op>>) {
    let t = &f.source.tokens;
    for i in 0..t.len() {
        let Some(name) = ident_at(t, i) else { continue };
        let method = match WRITE_OPS.iter().chain(READ_OPS).find(|m| **m == name) {
            Some(m) => *m,
            None => continue,
        };
        if !punct_at(t, i.wrapping_sub(1), '.') || !punct_at(t, i + 1, '(') {
            continue;
        }
        let line = t[i].line;
        if f.source.in_test_code(line) || f.source.suppressed("atomic_pairing", line) {
            continue;
        }
        let orderings = call_orderings(t, i + 1);
        if orderings.is_empty() {
            continue; // not an atomic op, or a variable ordering: skip
        }
        let Some(recv) = super::receiver_ident(t, i) else { continue };
        let path = format!("{}::{recv}", f.crate_name);
        by_path.entry(path).or_default().push(Op { file: fi, line, method, orderings });
    }
}

/// `Ordering::X` variants named inside the call's argument list, scanning
/// from the opening paren to its match (bounded).
fn call_orderings(t: &[crate::lexer::Token], open: usize) -> Vec<&'static str> {
    const VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut j = open;
    let cap = (open + 256).min(t.len());
    while j < cap {
        match &t[j].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokKind::Ident(n) if n == "Ordering" && path_sep_at(t, j + 1) => {
                if let Some(v) = ident_at(t, j + 3) {
                    if let Some(v) = VARIANTS.iter().find(|x| **x == v) {
                        out.push(*v);
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    out
}
