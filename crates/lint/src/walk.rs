//! Deterministic workspace file discovery.
//!
//! The scan set is explicit rather than "everything under the root": Rust
//! sources that ship in the build (`src/`, `crates/*/src/`, `examples/`,
//! `crates/*/benches/`) plus every `Cargo.toml`. Integration-test trees
//! (`tests/`, `crates/*/tests/`) are test code by definition and are not
//! scanned; `crates/lint/fixtures/` holds deliberately-violating inputs and
//! must never be, which falls out of the same policy. Entries are sorted so
//! diagnostics come out in a stable order on every machine.

use std::path::{Path, PathBuf};

/// The files one lint run covers, as workspace-relative `/`-paths.
#[derive(Debug, Default)]
pub struct WorkspaceFiles {
    /// Rust sources.
    pub rust: Vec<String>,
    /// Manifests.
    pub manifests: Vec<String>,
}

/// Discovers the scan set under `root`.
pub fn discover(root: &Path) -> std::io::Result<WorkspaceFiles> {
    let mut out = WorkspaceFiles::default();
    if root.join("Cargo.toml").is_file() {
        out.manifests.push("Cargo.toml".to_string());
    }
    collect_rs(root, Path::new("src"), &mut out.rust)?;
    collect_rs(root, Path::new("examples"), &mut out.rust)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for name in sorted_entries(&crates_dir)? {
            let rel = Path::new("crates").join(&name);
            if !root.join(&rel).is_dir() {
                continue;
            }
            if root.join(&rel).join("Cargo.toml").is_file() {
                out.manifests.push(to_rel_string(&rel.join("Cargo.toml")));
            }
            collect_rs(root, &rel.join("src"), &mut out.rust)?;
            collect_rs(root, &rel.join("benches"), &mut out.rust)?;
        }
    }
    out.rust.sort();
    out.manifests.sort();
    Ok(out)
}

/// Recursively collects `*.rs` under `root/rel` (if it exists).
fn collect_rs(root: &Path, rel: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let abs = root.join(rel);
    if !abs.is_dir() {
        return Ok(());
    }
    for name in sorted_entries(&abs)? {
        let child_rel = rel.join(&name);
        let child_abs = root.join(&child_rel);
        if child_abs.is_dir() {
            collect_rs(root, &child_rel, out)?;
        } else if name.to_string_lossy().ends_with(".rs") {
            out.push(to_rel_string(&child_rel));
        }
    }
    Ok(())
}

/// Directory entries sorted by name (hidden entries and `target` skipped).
fn sorted_entries(dir: &Path) -> std::io::Result<Vec<std::ffi::OsString>> {
    let mut names: Vec<std::ffi::OsString> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name())
        .filter(|n| {
            let s = n.to_string_lossy();
            !s.starts_with('.') && s != "target"
        })
        .collect();
    names.sort();
    Ok(names)
}

/// Renders a relative path with `/` separators regardless of platform.
fn to_rel_string(p: &Path) -> String {
    let mut parts: Vec<String> = Vec::new();
    for c in p.components() {
        parts.push(c.as_os_str().to_string_lossy().into_owned());
    }
    parts.join("/")
}

/// Re-exported for scope predicates that need a `PathBuf` root.
pub fn root_from_arg(arg: Option<&str>) -> PathBuf {
    arg.map(PathBuf::from).unwrap_or_else(|| PathBuf::from("."))
}
