//! Diagnostics and their two renderings: human `file:line` lines and the
//! `lint_report.json` schema (hand-rolled JSON — this crate depends on
//! nothing, including the vendored serde).

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (`no-panic-hotpath`, …).
    pub rule: &'static str,
    /// Human explanation, including the fix direction.
    pub message: String,
}

/// The result of one lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Rule names that ran, in catalog order.
    pub rules: Vec<&'static str>,
    /// Files scanned (Rust sources + manifests).
    pub files_scanned: usize,
    /// Violations sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Canonical ordering so output is byte-stable run-to-run.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }

    /// `file:line: [rule] message` per violation plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{}:{}: [{}] {}\n", d.path, d.line, d.rule, d.message));
        }
        if self.diagnostics.is_empty() {
            out.push_str(&format!(
                "dimlint: clean — {} files, rules: {}\n",
                self.files_scanned,
                self.rules.join(", ")
            ));
        } else {
            out.push_str(&format!(
                "dimlint: {} violation(s) in {} files scanned\n",
                self.diagnostics.len(),
                self.files_scanned
            ));
        }
        out
    }

    /// The `lint_report.json` schema: run metadata plus a violations array.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"rules\": [");
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json_str(&mut out, r);
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"violation_count\": {},\n", self.diagnostics.len()));
        out.push_str("  \"violations\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"path\": ");
            json_str(&mut out, &d.path);
            out.push_str(&format!(", \"line\": {}, \"rule\": ", d.line));
            json_str(&mut out, d.rule);
            out.push_str(", \"message\": ");
            json_str(&mut out, &d.message);
            out.push('}');
        }
        out.push_str(if self.diagnostics.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }
}

/// Minimal JSON string escaping.
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> LintReport {
        LintReport {
            rules: vec!["no-panic-hotpath"],
            files_scanned: 2,
            diagnostics: vec![Diagnostic {
                path: "crates/x/src/lib.rs".into(),
                line: 7,
                rule: "no-panic-hotpath",
                message: "`.unwrap()` with \"quotes\"".into(),
            }],
        }
    }

    #[test]
    fn human_rendering_has_location_prefix() {
        let r = report().render_human();
        assert!(r.starts_with("crates/x/src/lib.rs:7: [no-panic-hotpath]"));
        assert!(r.contains("1 violation(s)"));
    }

    #[test]
    fn json_escapes_quotes() {
        let j = report().render_json();
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\"violation_count\": 1"));
    }

    #[test]
    fn sort_orders_by_path_line_rule() {
        let mut r = LintReport::default();
        r.diagnostics.push(Diagnostic { path: "b.rs".into(), line: 1, rule: "x", message: String::new() });
        r.diagnostics.push(Diagnostic { path: "a.rs".into(), line: 9, rule: "x", message: String::new() });
        r.diagnostics.push(Diagnostic { path: "a.rs".into(), line: 2, rule: "x", message: String::new() });
        r.sort();
        assert_eq!(r.diagnostics[0].path, "a.rs");
        assert_eq!(r.diagnostics[0].line, 2);
        assert_eq!(r.diagnostics[2].path, "b.rs");
    }
}
