//! Diagnostics and their two renderings: human `file:line` lines and the
//! `lint_report.json` v2 schema (hand-rolled JSON — this crate depends
//! only on the vendored `dim-par` fan-out, nothing serialized).
//!
//! Schema v2 (see DESIGN.md §16): every violation carries a `severity`;
//! panic-reachability findings carry a `witness` call chain; lock-order
//! cycle findings carry the `cycle` lock path. v1 consumers that only read
//! `path`/`line`/`rule`/`message` keep working — the new fields are
//! additive.

/// How hard a diagnostic gates. `Error` fails the run (exit code 1);
/// `Warn` is advisory output from an over-approximate analysis (the
/// lock-order blocking-call heuristic) and does not affect the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Severity {
    /// Gates `make lint` / `make verify`.
    #[default]
    Error,
    /// Advisory; printed but not failing.
    Warn,
}

impl Severity {
    /// Schema/report name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
        }
    }
}

/// One step of a panic-reachability call-chain witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessStep {
    /// Function display name (`Type::name` or `name`).
    pub func: String,
    /// Workspace-relative file the step lives in.
    pub path: String,
    /// 1-based line (the call site, or the panic site for the last step).
    pub line: u32,
}

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (`no-panic-hotpath`, …).
    pub rule: &'static str,
    /// Human explanation, including the fix direction.
    pub message: String,
    /// Gate or advisory.
    pub severity: Severity,
    /// Call chain from the flagged call down to the panic site
    /// (panic-reachability findings only; empty otherwise).
    pub witness: Vec<WitnessStep>,
    /// The lock cycle, first lock repeated at the end
    /// (lock-order cycle findings only; empty otherwise).
    pub cycle: Vec<String>,
}

impl Diagnostic {
    /// A plain error diagnostic with no deep-analysis payload.
    pub fn new(path: String, line: u32, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            path,
            line,
            rule,
            message,
            severity: Severity::Error,
            witness: Vec::new(),
            cycle: Vec::new(),
        }
    }
}

/// The result of one lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Rule names that ran, in catalog order.
    pub rules: Vec<&'static str>,
    /// Whether the deep (workspace-level) analyses ran.
    pub deep: bool,
    /// Files scanned (Rust sources + manifests).
    pub files_scanned: usize,
    /// Violations sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Canonical ordering so output is byte-stable run-to-run (and across
    /// thread widths: the parallel file pass feeds this sort).
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
        });
    }

    /// Any gating (error-severity) diagnostics?
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// `file:line: [rule] message` per violation plus a summary line.
    /// Witness chains and cycle paths render as indented continuation
    /// lines under their diagnostic.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let sev = match d.severity {
                Severity::Error => "",
                Severity::Warn => "warning: ",
            };
            out.push_str(&format!("{}:{}: [{}] {sev}{}\n", d.path, d.line, d.rule, d.message));
            for (i, w) in d.witness.iter().enumerate() {
                let marker = if i + 1 == d.witness.len() { "panics at" } else { "calls" };
                out.push_str(&format!("    {} `{}` ({}:{})\n", marker, w.func, w.path, w.line));
            }
            if !d.cycle.is_empty() {
                out.push_str(&format!("    cycle: {}\n", d.cycle.join(" -> ")));
            }
        }
        let warns = self.diagnostics.iter().filter(|d| d.severity == Severity::Warn).count();
        let errors = self.diagnostics.len() - warns;
        if self.diagnostics.is_empty() {
            out.push_str(&format!(
                "dimlint: clean — {} files, rules: {}\n",
                self.files_scanned,
                self.rules.join(", ")
            ));
        } else {
            out.push_str(&format!(
                "dimlint: {errors} violation(s), {warns} warning(s) in {} files scanned\n",
                self.files_scanned
            ));
        }
        out
    }

    /// The `lint_report.json` v2 schema: run metadata plus a violations
    /// array with severity and deep-analysis payloads.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema_version\": 2,\n");
        out.push_str("  \"rules\": [");
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json_str(&mut out, r);
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"deep\": {},\n", self.deep));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        let errors = self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count();
        out.push_str(&format!("  \"violation_count\": {errors},\n"));
        out.push_str(&format!(
            "  \"warning_count\": {},\n",
            self.diagnostics.len() - errors
        ));
        out.push_str("  \"violations\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"path\": ");
            json_str(&mut out, &d.path);
            out.push_str(&format!(", \"line\": {}, \"rule\": ", d.line));
            json_str(&mut out, d.rule);
            out.push_str(", \"severity\": ");
            json_str(&mut out, d.severity.name());
            out.push_str(", \"message\": ");
            json_str(&mut out, &d.message);
            if !d.witness.is_empty() {
                out.push_str(", \"witness\": [");
                for (j, w) in d.witness.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str("{\"fn\": ");
                    json_str(&mut out, &w.func);
                    out.push_str(", \"path\": ");
                    json_str(&mut out, &w.path);
                    out.push_str(&format!(", \"line\": {}}}", w.line));
                }
                out.push(']');
            }
            if !d.cycle.is_empty() {
                out.push_str(", \"cycle\": [");
                for (j, l) in d.cycle.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    json_str(&mut out, l);
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str(if self.diagnostics.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }
}

/// Minimal JSON string escaping.
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> LintReport {
        LintReport {
            rules: vec!["no-panic-hotpath"],
            deep: false,
            files_scanned: 2,
            diagnostics: vec![Diagnostic::new(
                "crates/x/src/lib.rs".into(),
                7,
                "no-panic-hotpath",
                "`.unwrap()` with \"quotes\"".into(),
            )],
        }
    }

    #[test]
    fn human_rendering_has_location_prefix() {
        let r = report().render_human();
        assert!(r.starts_with("crates/x/src/lib.rs:7: [no-panic-hotpath]"));
        assert!(r.contains("1 violation(s)"));
    }

    #[test]
    fn json_escapes_quotes_and_versions_the_schema() {
        let j = report().render_json();
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\"violation_count\": 1"));
        assert!(j.contains("\"warning_count\": 0"));
        assert!(j.contains("\"schema_version\": 2"));
        assert!(j.contains("\"severity\": \"error\""));
    }

    #[test]
    fn witness_and_cycle_render_in_both_formats() {
        let mut r = report();
        r.diagnostics[0].rule = "panic-reachability";
        r.diagnostics[0].witness = vec![
            WitnessStep { func: "helper".into(), path: "crates/y/src/lib.rs".into(), line: 3 },
            WitnessStep { func: "deep".into(), path: "crates/y/src/lib.rs".into(), line: 9 },
        ];
        r.diagnostics.push(Diagnostic {
            cycle: vec!["serve::a".into(), "serve::b".into(), "serve::a".into()],
            severity: Severity::Warn,
            ..Diagnostic::new("z.rs".into(), 1, "lock-order", "cycle".into())
        });
        r.sort();
        let h = r.render_human();
        assert!(h.contains("calls `helper` (crates/y/src/lib.rs:3)"), "{h}");
        assert!(h.contains("panics at `deep` (crates/y/src/lib.rs:9)"), "{h}");
        assert!(h.contains("cycle: serve::a -> serve::b -> serve::a"), "{h}");
        assert!(h.contains("1 violation(s), 1 warning(s)"), "{h}");
        let j = r.render_json();
        assert!(j.contains("\"witness\": [{\"fn\": \"helper\""), "{j}");
        assert!(j.contains("\"cycle\": [\"serve::a\", \"serve::b\", \"serve::a\"]"), "{j}");
        assert!(j.contains("\"severity\": \"warn\""), "{j}");
        assert!(r.has_errors());
    }

    #[test]
    fn sort_orders_by_path_line_rule() {
        let mut r = LintReport::default();
        r.diagnostics.push(Diagnostic::new("b.rs".into(), 1, "x", String::new()));
        r.diagnostics.push(Diagnostic::new("a.rs".into(), 9, "x", String::new()));
        r.diagnostics.push(Diagnostic::new("a.rs".into(), 2, "x", String::new()));
        r.sort();
        assert_eq!(r.diagnostics[0].path, "a.rs");
        assert_eq!(r.diagnostics[0].line, 2);
        assert_eq!(r.diagnostics[2].path, "b.rs");
    }
}
