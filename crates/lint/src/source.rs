//! Per-file analysis state shared by every rule: the token stream,
//! `#[cfg(test)]` region map, and `lint:allow` suppressions.

use crate::lexer::{lex, Comment, TokKind, Token};

/// A `// lint:allow(key, reason)` suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Normalized key (`-` folded to `_`), e.g. `no_panic`.
    pub key: String,
    /// Justification text after the comma (may be empty — see
    /// [`SourceFile::suppressed`], which refuses reasonless suppressions).
    pub reason: String,
    /// Line the suppression comment starts on.
    pub line: u32,
    /// Line the suppression comment ends on (block comments span lines).
    pub end_line: u32,
    /// Whether code tokens share the starting line (a trailing comment).
    /// Trailing suppressions cover only their own line; own-line
    /// suppressions cover the next line instead.
    pub trailing: bool,
}

/// One lexed source file plus the derived region/suppression maps.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (diagnostic identity).
    pub rel_path: String,
    /// Code tokens (no comments).
    pub tokens: Vec<Token>,
    /// Sorted, disjoint 1-based line ranges covered by `#[cfg(test)]`.
    test_regions: Vec<(u32, u32)>,
    /// Parsed suppressions.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Lexes and analyzes one file.
    pub fn parse(rel_path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let test_regions = find_test_regions(&lexed.tokens);
        let mut suppressions: Vec<Suppression> =
            lexed.comments.iter().filter_map(parse_suppression).collect();
        for s in &mut suppressions {
            s.trailing = lexed.tokens.iter().any(|t| t.line == s.line);
        }
        SourceFile { rel_path: rel_path.to_string(), tokens: lexed.tokens, test_regions, suppressions }
    }

    /// Is `line` inside a `#[cfg(test)]` item?
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_regions.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Is a violation of `key` on `line` suppressed? A trailing suppression
    /// (comment sharing a line with code) covers exactly its own line; an
    /// own-line suppression covers the line immediately after it ends. A
    /// suppression without a reason suppresses nothing — the justification
    /// *is* the point.
    pub fn suppressed(&self, key: &str, line: u32) -> bool {
        let key = normalize_key(key);
        self.suppressions.iter().any(|s| {
            s.key == key
                && !s.reason.is_empty()
                && if s.trailing { s.line == line } else { s.end_line + 1 == line }
        })
    }
}

/// Folds `-` to `_` so `no-panic` and `no_panic` name the same key.
pub fn normalize_key(key: &str) -> String {
    key.trim().replace('-', "_")
}

/// Extracts `lint:allow(key, reason)` from a comment, if present.
fn parse_suppression(c: &Comment) -> Option<Suppression> {
    let start = c.text.find("lint:allow(")?;
    let body = &c.text[start + "lint:allow(".len()..];
    let body = body.split(')').next().unwrap_or(body);
    let (key, reason) = match body.split_once(',') {
        Some((k, r)) => (k, r.trim().to_string()),
        None => (body, String::new()),
    };
    Some(Suppression {
        key: normalize_key(key),
        reason,
        line: c.line,
        end_line: c.end_line,
        trailing: false, // filled in by SourceFile::parse, which sees the tokens
    })
}

/// Finds every `#[cfg(test)]`-gated item and returns its line range.
///
/// Matching: an attribute `#[cfg(…)]` whose parenthesized body contains the
/// ident `test` but not `not` (so `cfg(all(test, foo))` counts and
/// `cfg(not(test))` does not). The gated region runs from the attribute to
/// the end of the next brace-balanced block — or to the first top-level `;`
/// for braceless items (`#[cfg(test)] use …;`). An attribute with nothing
/// after it (EOF) gates through end of file.
fn find_test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(after_attr) = match_cfg_test(tokens, i) {
            let start_line = tokens[i].line;
            let end = region_end(tokens, after_attr);
            let end_line = match end {
                Some(j) => tokens[j].line,
                None => tokens.last().map(|t| t.line).unwrap_or(start_line).max(start_line),
            };
            regions.push((start_line, end_line));
            i = end.map(|j| j + 1).unwrap_or(tokens.len());
        } else {
            i += 1;
        }
    }
    regions
}

/// If tokens at `i` start `#[cfg(… test …)]`, returns the index just past
/// the closing `]`.
fn match_cfg_test(tokens: &[Token], i: usize) -> Option<usize> {
    let punct = |j: usize, c: char| matches!(tokens.get(j), Some(t) if t.kind == TokKind::Punct(c));
    let ident = |j: usize, s: &str| {
        matches!(&tokens.get(j), Some(t) if matches!(&t.kind, TokKind::Ident(n) if n == s))
    };
    if !(punct(i, '#') && punct(i + 1, '[') && ident(i + 2, "cfg") && punct(i + 3, '(')) {
        return None;
    }
    // Scan the cfg(...) body to its matching paren.
    let mut depth = 1usize;
    let mut j = i + 4;
    let mut saw_test = false;
    let mut saw_not = false;
    while j < tokens.len() && depth > 0 {
        match &tokens[j].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => depth -= 1,
            TokKind::Ident(n) if n == "test" => saw_test = true,
            TokKind::Ident(n) if n == "not" => saw_not = true,
            _ => {}
        }
        j += 1;
    }
    if !saw_test || saw_not {
        return None;
    }
    // Expect the closing `]` (tolerate trailing tokens inside the attr).
    while j < tokens.len() {
        if tokens[j].kind == TokKind::Punct(']') {
            return Some(j + 1);
        }
        if tokens[j].kind == TokKind::Punct('[') {
            break; // malformed; bail rather than scan the world
        }
        j += 1;
    }
    None
}

/// Index of the token that ends the item starting at `i`: the `}` matching
/// the first `{`, or a `;` seen before any brace. `None` means EOF.
fn region_end(tokens: &[Token], i: usize) -> Option<usize> {
    let mut j = i;
    // Skip further attributes (`#[test] #[ignore] fn …`).
    while j < tokens.len() {
        if tokens[j].kind == TokKind::Punct('#')
            && matches!(tokens.get(j + 1), Some(t) if t.kind == TokKind::Punct('['))
        {
            let mut depth = 0usize;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        } else {
            break;
        }
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(j);
                }
            }
            TokKind::Punct(';') if depth == 0 => return Some(j),
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_a_region() {
        let f = SourceFile::parse(
            "x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn after() {}\n",
        );
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(2));
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn cfg_test_at_eof_extends_to_eof() {
        let f = SourceFile::parse("x.rs", "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() {\n");
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(1));
    }

    #[test]
    fn cfg_not_test_is_not_a_region() {
        let f = SourceFile::parse("x.rs", "#[cfg(not(test))]\nfn live() {}\n");
        assert!(!f.in_test_code(2));
    }

    #[test]
    fn cfg_all_test_counts() {
        let f = SourceFile::parse("x.rs", "#[cfg(all(test, unix))]\nmod t { fn x() {} }\n");
        assert!(f.in_test_code(2));
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let f = SourceFile::parse("x.rs", "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n");
        assert!(f.in_test_code(2));
        assert!(!f.in_test_code(3));
    }

    #[test]
    fn attributes_between_cfg_and_item_are_skipped() {
        let f =
            SourceFile::parse("x.rs", "#[cfg(test)]\n#[allow(dead_code)]\nmod t {\n fn x() {}\n}\nfn live() {}\n");
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn suppressions_parse_and_apply() {
        let f = SourceFile::parse(
            "x.rs",
            "// lint:allow(no_panic, bounds checked above)\nlet x = v[0];\nlet y = v[1]; // lint:allow(no-panic, fixed-size array)\nlet z = v[2];\n",
        );
        assert!(f.suppressed("no_panic", 2));
        assert!(f.suppressed("no_panic", 3), "hyphen form normalizes");
        assert!(!f.suppressed("no_panic", 4));
        assert!(!f.suppressed("nondeterministic", 2), "key must match");
    }

    #[test]
    fn reasonless_suppression_does_not_suppress() {
        let f = SourceFile::parse("x.rs", "// lint:allow(no_panic)\nlet x = v[0];\n// lint:allow(no_panic, )\nlet y = v[1];\n");
        assert!(!f.suppressed("no_panic", 2));
        assert!(!f.suppressed("no_panic", 4), "empty reason is no reason");
    }
}
