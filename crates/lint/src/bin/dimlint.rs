//! `dimlint` — the workspace invariant linter (see DESIGN.md §11).
//!
//! ```text
//! dimlint [--root DIR] [--rule NAME]... [--json FILE] [--list-rules]
//! ```
//!
//! Human diagnostics (`file:line: [rule] message`) go to stdout; `--json`
//! additionally writes the machine-readable report. Exit codes: 0 clean,
//! 1 violations found, 2 usage or I/O error.

use dim_lint::{run, LintOptions, RuleId};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = String::from(".");
    let mut rules: Vec<RuleId> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = v,
                None => return usage("--root needs a directory"),
            },
            "--rule" => match args.next().as_deref().map(RuleId::parse) {
                Some(Some(r)) => rules.push(r),
                Some(None) => return usage("unknown rule (try --list-rules)"),
                None => return usage("--rule needs a rule name"),
            },
            "--json" => match args.next() {
                Some(v) => json_path = Some(v),
                None => return usage("--json needs an output file"),
            },
            "--list-rules" => {
                for r in RuleId::ALL {
                    println!(
                        "{:<18} suppression: {}",
                        r.name(),
                        r.allow_key()
                            .map(|k| format!("lint:allow({k}, reason)"))
                            .unwrap_or_else(|| "none (never justifiable)".to_string())
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: dimlint [--root DIR] [--rule NAME]... [--json FILE] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let opts = LintOptions { root: root.into(), rules };
    let report = match run(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dimlint: error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("dimlint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    print!("{}", report.render_human());
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("dimlint: {msg}\nusage: dimlint [--root DIR] [--rule NAME]... [--json FILE] [--list-rules]");
    ExitCode::from(2)
}
