//! `dimlint` — the workspace invariant linter (see DESIGN.md §11, §16).
//!
//! ```text
//! dimlint [--root DIR] [--deep] [--rule NAME[,NAME...]]... [--threads N]
//!         [--json FILE] [--list-rules]
//! ```
//!
//! Human diagnostics (`file:line: [rule] message`) go to stdout; `--json`
//! additionally writes the machine-readable v2 report. `--deep` adds the
//! workspace-level analyses (panic-reachability, lock-order,
//! atomic-pairing); naming a deep rule with `--rule` also enables it.
//! `--threads` parallelizes the file pass — output is byte-identical at
//! any width. Exit codes: 0 clean (warnings allowed), 1 error-severity
//! violations found, 2 usage or I/O error.

use dim_lint::{run, LintOptions, RuleId};
use std::process::ExitCode;

const USAGE: &str = "usage: dimlint [--root DIR] [--deep] [--rule NAME[,NAME...]]... \
                     [--threads N] [--json FILE] [--list-rules]";

fn main() -> ExitCode {
    let mut opts = LintOptions::new(".");
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => opts.root = v.into(),
                None => return usage("--root needs a directory"),
            },
            "--deep" => opts.deep = true,
            "--rule" => match args.next().as_deref().map(RuleId::parse_list) {
                Some(Some(rs)) => opts.rules.extend(rs),
                Some(None) => return usage("unknown rule (try --list-rules)"),
                None => return usage("--rule needs a rule name or comma-separated list"),
            },
            "--threads" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => opts.threads = n,
                _ => return usage("--threads needs a positive integer"),
            },
            "--json" => match args.next() {
                Some(v) => json_path = Some(v),
                None => return usage("--json needs an output file"),
            },
            "--list-rules" => {
                for r in RuleId::ALL {
                    println!(
                        "{:<18} {} suppression: {}",
                        r.name(),
                        if r.is_deep() { "(deep)" } else { "      " },
                        r.allow_key()
                            .map(|k| format!("lint:allow({k}, reason)"))
                            .unwrap_or_else(|| "none (never justifiable)".to_string())
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match run(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dimlint: error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("dimlint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    print!("{}", report.render_human());
    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("dimlint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
