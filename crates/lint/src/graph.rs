//! The workspace symbol table and approximate call graph the deep rules
//! run on (see DESIGN.md §16 for the full model and its error bars).
//!
//! Every scanned file is parsed into [`FileItems`]; the functions of all
//! files become graph nodes, and call edges are extracted by scanning each
//! body for `name(…)`, `recv.name(…)`, and `path::name(…)` shapes and
//! resolving the callee name against the symbol table.
//!
//! Resolution is deliberately approximate — a real name resolver needs a
//! type checker — and errs in documented directions:
//!
//! * **method calls** (`x.f(…)`) resolve to same-crate `impl` functions
//!   named `f` only; `self.f(…)` narrows further to the enclosing impl
//!   type. Cross-crate method calls produce no edge (under-approximation);
//!   same-crate same-name methods on different types over-approximate.
//! * **qualified calls** (`a::b::f(…)`) resolve by matching the last
//!   qualifier against impl types, module names — both `mod` declarations
//!   and the file-level module a file stem names — and crate names (via
//!   the file's `use` map). An unknown qualifier (e.g. `Vec::new`) is external:
//!   no edge (under-approximation — std is assumed panic-free at the
//!   granularity this linter cares about; std panics inside hot files are
//!   caught by the intraprocedural token rules).
//! * **bare calls** (`f(…)`) resolve same-file first, then through the
//!   file's `use` imports, then same-crate free functions.
//! * **closures and higher-order calls** are invisible (the classic
//!   under-approximation of a syntactic call graph): a panic reached only
//!   through a function-pointer indirection is not propagated.

use crate::items::{ident_at, path_sep_at, punct_at, FileItems, UseDef};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// One scanned file: the lexed source plus its parsed items and the crate
/// it belongs to.
pub struct ParsedFile {
    /// The lexed file (tokens, test regions, suppressions).
    pub source: SourceFile,
    /// Parsed `fn` / `use` items.
    pub items: FileItems,
    /// Crate directory name (`serve`, `dimkb`, …; `__root__` for `src/`).
    pub crate_name: String,
}

impl ParsedFile {
    /// Lexes and item-parses one file.
    pub fn parse(rel_path: &str, text: &str) -> ParsedFile {
        let source = SourceFile::parse(rel_path, text);
        let items = FileItems::parse(&source);
        let crate_name = crate_of(rel_path).to_string();
        ParsedFile { source, items, crate_name }
    }
}

/// The crate directory a workspace-relative path belongs to.
pub fn crate_of(rel_path: &str) -> &str {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("__root__"),
        _ => "__root__",
    }
}

/// One call edge out of a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Callee node index.
    pub callee: usize,
    /// 1-based line of the call site.
    pub line: u32,
    /// Token index of the callee name at the call site.
    pub token: usize,
}

/// A graph node: function `fn_idx` of file `file`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// Index into the `ParsedFile` slice the graph was built from.
    pub file: usize,
    /// Index into that file's `items.fns`.
    pub fn_idx: usize,
}

/// The workspace call graph.
pub struct Graph {
    /// All function nodes, in (file, source) order.
    pub nodes: Vec<Node>,
    /// Outgoing call edges per node, in call-site order.
    pub edges: Vec<Vec<Edge>>,
    /// Simple name → node indices.
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Maps a `use`-path head segment (a lib name like `dim_par`) to a crate
/// directory name (`par`), given the set of crate directories present.
fn lib_to_crate<'a>(head: &'a str, crates: &'a BTreeSet<String>) -> Option<&'a str> {
    if crates.contains(head) {
        return Some(head);
    }
    if let Some(rest) = head.strip_prefix("dim_") {
        if crates.contains(rest) {
            return Some(rest);
        }
    }
    if head == "dimension_perception" {
        return Some("__root__");
    }
    None
}

/// Keywords that look like `ident (` call shapes but are not calls.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "in", "as", "move", "mut", "ref",
    "let", "else", "break", "continue", "unsafe", "where", "impl", "dyn", "use", "pub", "crate",
    "super", "self", "Self", "static", "const", "type", "struct", "enum", "union", "trait", "mod",
    "box", "yield", "async", "await",
];

impl Graph {
    /// Builds the call graph over all parsed files.
    pub fn build(files: &[ParsedFile]) -> Graph {
        let mut nodes = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut crates: BTreeSet<String> = BTreeSet::new();
        for (fi, f) in files.iter().enumerate() {
            crates.insert(f.crate_name.clone());
            for (gi, def) in f.items.fns.iter().enumerate() {
                let idx = nodes.len();
                nodes.push(Node { file: fi, fn_idx: gi });
                by_name.entry(def.name.clone()).or_default().push(idx);
            }
        }
        let mut g = Graph { nodes, edges: Vec::new(), by_name };
        let mut edges = Vec::with_capacity(g.nodes.len());
        for idx in 0..g.nodes.len() {
            edges.push(g.extract_edges(files, idx, &crates));
        }
        g.edges = edges;
        g
    }

    /// The function definition a node refers to.
    pub fn def<'a>(&self, files: &'a [ParsedFile], idx: usize) -> &'a crate::items::FnDef {
        let n = self.nodes[idx];
        &files[n.file].items.fns[n.fn_idx]
    }

    /// A human-readable name for a node (`Type::name` or `name`).
    pub fn display_name(&self, files: &[ParsedFile], idx: usize) -> String {
        let def = self.def(files, idx);
        match &def.impl_type {
            Some(ty) => format!("{ty}::{}", def.name),
            None => def.name.clone(),
        }
    }

    /// Token ranges of functions nested inside `idx`'s body (their calls
    /// belong to the inner function, not to `idx`).
    pub(crate) fn nested_ranges(&self, files: &[ParsedFile], idx: usize) -> Vec<(usize, usize)> {
        let n = self.nodes[idx];
        let def = &files[n.file].items.fns[n.fn_idx];
        let Some((lo, hi)) = def.body else { return Vec::new() };
        files[n.file]
            .items
            .fns
            .iter()
            .enumerate()
            .filter(|(gi, other)| {
                *gi != n.fn_idx && other.sig_start > lo && other.sig_start < hi
            })
            .map(|(_, other)| (other.sig_start, other.body.map(|(_, e)| e).unwrap_or(other.sig_start)))
            .collect()
    }

    /// Scans one function's body for call shapes and resolves them.
    fn extract_edges(
        &self,
        files: &[ParsedFile],
        idx: usize,
        crates: &BTreeSet<String>,
    ) -> Vec<Edge> {
        let n = self.nodes[idx];
        let file = &files[n.file];
        let def = &file.items.fns[n.fn_idx];
        let Some((lo, hi)) = def.body else { return Vec::new() };
        let nested = self.nested_ranges(files, idx);
        let t = &file.source.tokens;
        let mut out = Vec::new();
        let mut i = lo;
        while i <= hi && i < t.len() {
            if nested.iter().any(|&(a, b)| i >= a && i <= b) {
                i += 1;
                continue;
            }
            let Some(name) = ident_at(t, i) else {
                i += 1;
                continue;
            };
            // `name (` — possibly with a `::<T>` turbofish between.
            let open = call_paren(t, i);
            if open.is_none() || CALL_KEYWORDS.contains(&name) {
                i += 1;
                continue;
            }
            let callees = self.resolve(files, n.file, def, t, i, name, crates);
            for callee in callees {
                if callee != idx {
                    out.push(Edge { callee, line: t[i].line, token: i });
                }
            }
            i += 1;
        }
        out
    }

    /// Resolves the callee name at token `i` to node indices. Empty means
    /// external (std or unresolvable): no edge.
    #[allow(clippy::too_many_arguments)]
    fn resolve(
        &self,
        files: &[ParsedFile],
        file_idx: usize,
        caller: &crate::items::FnDef,
        t: &[crate::lexer::Token],
        i: usize,
        name: &str,
        crates: &BTreeSet<String>,
    ) -> Vec<usize> {
        let file = &files[file_idx];
        let Some(candidates) = self.by_name.get(name) else { return Vec::new() };

        // Method call: `recv.name(…)`.
        if i >= 1 && punct_at(t, i - 1, '.') {
            let receiver_is_self = ident_at(t, i.wrapping_sub(2)) == Some("self");
            let mut found: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&c| {
                    let d = self.def(files, c);
                    let same_crate = files[self.nodes[c].file].crate_name == file.crate_name;
                    if !same_crate || d.impl_type.is_none() {
                        return false;
                    }
                    // `self.f(…)` can only reach the enclosing impl type.
                    if receiver_is_self {
                        d.impl_type == caller.impl_type
                    } else {
                        true
                    }
                })
                .collect();
            found.sort_unstable();
            return found;
        }

        // Qualified call: `…::Q::name(…)`.
        if i >= 2 && path_sep_at(t, i - 2) {
            let qualifier = ident_at(t, i.wrapping_sub(3));
            let seg = match qualifier {
                Some("Self") => caller.impl_type.as_deref(),
                other => other,
            };
            let Some(seg) = seg else { return Vec::new() };
            // Walk further back for the path head (crate narrowing).
            let head = path_head(t, i);
            let head_crate = head
                .and_then(|h| match h {
                    "crate" | "self" | "super" => Some(file.crate_name.as_str()),
                    other => lib_to_crate(other, crates),
                })
                .or_else(|| {
                    // The head may itself be a `use`-imported module/type.
                    head.and_then(|h| {
                        file.items
                            .uses
                            .iter()
                            .find(|u| u.name == h)
                            .and_then(|u| lib_to_crate(&u.head, crates))
                    })
                });
            let mut found: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&c| {
                    let d = self.def(files, c);
                    let c_crate = files[self.nodes[c].file].crate_name.as_str();
                    if let Some(hc) = head_crate {
                        if c_crate != hc {
                            return false;
                        }
                    }
                    d.impl_type.as_deref() == Some(seg)
                        || d.module.last().map(|m| m.as_str()) == Some(seg)
                        // A fn in no `mod` block lives in the file-level
                        // module its file stem names (`helper.rs` ⇒
                        // `helper::f`).
                        || (d.module.is_empty()
                            && file_module(&files[self.nodes[c].file].source.rel_path)
                                == Some(seg))
                        || (head_crate.is_some() && head == Some(seg) && d.impl_type.is_none())
                })
                .collect();
            // A qualifier that matches nothing names an external item
            // (`Vec::new`, `Ordering::Relaxed`): no edge.
            found.sort_unstable();
            found.dedup();
            return found;
        }

        // Bare call: same file, then `use` imports, then same-crate free fns.
        let same_file: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&c| self.nodes[c].file == file_idx && self.def(files, c).impl_type.is_none())
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        if let Some(u) = file.items.uses.iter().find(|u: &&UseDef| u.name == name) {
            if let Some(target_crate) = lib_to_crate(&u.head, crates) {
                let found: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&c| {
                        files[self.nodes[c].file].crate_name == target_crate
                            && self.def(files, c).name == u.leaf
                            && self.def(files, c).impl_type.is_none()
                    })
                    .collect();
                return found;
            }
            if u.head == "crate" || u.head == "super" || u.head == "self" {
                let found: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&c| {
                        files[self.nodes[c].file].crate_name == file.crate_name
                            && self.def(files, c).impl_type.is_none()
                    })
                    .collect();
                return found;
            }
            return Vec::new(); // imported from std or an unknown crate
        }
        candidates
            .iter()
            .copied()
            .filter(|&c| {
                files[self.nodes[c].file].crate_name == file.crate_name
                    && self.def(files, c).impl_type.is_none()
            })
            .collect()
    }
}

/// If token `i` (an ident) is followed by a call's opening paren —
/// directly or through a `::<…>` turbofish — returns the paren index.
pub(crate) fn call_paren(t: &[crate::lexer::Token], i: usize) -> Option<usize> {
    if punct_at(t, i + 1, '(') {
        return Some(i + 1);
    }
    if path_sep_at(t, i + 1) && punct_at(t, i + 3, '<') {
        let mut depth = 0usize;
        let mut j = i + 3;
        let cap = (i + 64).min(t.len());
        while j < cap {
            match t[j].kind {
                TokKind::Punct('<') => depth += 1,
                TokKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        return punct_at(t, j + 1, '(').then_some(j + 1);
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    None
}

/// The module a file's stem names (`crates/serve/src/helper.rs` ⇒
/// `helper`); `lib.rs`, `main.rs` and `mod.rs` name no module of their own.
fn file_module(rel_path: &str) -> Option<&str> {
    let stem = rel_path.rsplit('/').next()?.strip_suffix(".rs")?;
    (!matches!(stem, "lib" | "main" | "mod")).then_some(stem)
}

/// The first segment of the `::`-path ending at the callee ident `i`
/// (`a::b::f(` at `f` ⇒ `a`). `None` when the path is just `Q::f`’s `Q`
/// with nothing before it — the caller then treats `Q` itself as the head.
fn path_head(t: &[crate::lexer::Token], i: usize) -> Option<&str> {
    let mut j = i;
    let mut head = None;
    while j >= 3 && path_sep_at(t, j - 2) {
        j -= 3;
        head = ident_at(t, j);
        if j < 3 {
            break;
        }
    }
    head
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(files: &[(&str, &str)]) -> (Vec<ParsedFile>, Graph) {
        let parsed: Vec<ParsedFile> =
            files.iter().map(|(p, s)| ParsedFile::parse(p, s)).collect();
        let g = Graph::build(&parsed);
        (parsed, g)
    }

    fn callees(files: &[ParsedFile], g: &Graph, name: &str) -> Vec<String> {
        let idx = (0..g.nodes.len()).find(|&i| g.def(files, i).name == name).unwrap();
        let mut out: Vec<String> =
            g.edges[idx].iter().map(|e| g.display_name(files, e.callee)).collect();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn bare_calls_resolve_same_file_first() {
        let (files, g) = build(&[
            ("crates/a/src/lib.rs", "fn helper() {}\nfn caller() { helper(); }\n"),
            ("crates/b/src/lib.rs", "fn helper() {}\n"),
        ]);
        let idx = (0..g.nodes.len()).find(|&i| g.def(&files, i).name == "caller").unwrap();
        assert_eq!(g.edges[idx].len(), 1);
        assert_eq!(g.nodes[g.edges[idx][0].callee].file, 0, "same-file helper wins");
    }

    #[test]
    fn use_imports_resolve_cross_crate() {
        let (files, g) = build(&[
            (
                "crates/a/src/lib.rs",
                "use dim_b::helper;\nfn caller() { helper(); }\n",
            ),
            ("crates/b/src/lib.rs", "pub fn helper() {}\n"),
        ]);
        assert_eq!(callees(&files, &g, "caller"), vec!["helper"]);
    }

    #[test]
    fn std_imports_produce_no_edges() {
        let (files, g) = build(&[(
            "crates/a/src/lib.rs",
            "use std::mem::take;\nfn helper() {}\nfn caller() { take(&mut x); }\n",
        )]);
        assert!(callees(&files, &g, "caller").is_empty(), "std::mem::take is external");
    }

    #[test]
    fn self_method_calls_stay_in_the_impl() {
        let (files, g) = build(&[(
            "crates/a/src/lib.rs",
            "struct A; struct B;\nimpl A { fn go(&self) { self.step(); } fn step(&self) {} }\nimpl B { fn step(&self) {} }\n",
        )]);
        assert_eq!(callees(&files, &g, "go"), vec!["A::step"]);
    }

    #[test]
    fn qualified_calls_match_type_module_and_crate() {
        let (files, g) = build(&[
            (
                "crates/a/src/lib.rs",
                "fn caller() { dim_b::worker::run(); Other::make(); Vec::with_capacity(4); }\nstruct Other;\nimpl Other { fn make() {} }\n",
            ),
            ("crates/b/src/worker.rs", "mod worker { pub fn run() {} }\n"),
        ]);
        let c = callees(&files, &g, "caller");
        assert!(c.contains(&"run".to_string()), "{c:?}");
        assert!(c.contains(&"Other::make".to_string()), "{c:?}");
        assert!(!c.iter().any(|n| n.contains("with_capacity")), "std stays external: {c:?}");
    }

    #[test]
    fn qualified_calls_reach_file_level_modules() {
        let (files, g) = build(&[
            ("crates/a/src/lib.rs", "fn caller() { helper::classify(); }\n"),
            ("crates/a/src/helper.rs", "pub fn classify() {}\n"),
        ]);
        assert_eq!(callees(&files, &g, "caller"), vec!["classify"]);
        // `lib.rs` names no module: `lib::caller()` resolves nothing.
        let (files2, g2) = build(&[
            ("crates/a/src/other.rs", "fn go() { lib::caller(); }\n"),
            ("crates/a/src/lib.rs", "pub fn caller() {}\n"),
        ]);
        assert!(callees(&files2, &g2, "go").is_empty());
    }

    #[test]
    fn turbofish_is_still_a_call() {
        let (files, g) = build(&[(
            "crates/a/src/lib.rs",
            "fn generic<T>() {}\nfn caller() { generic::<u32>(); }\n",
        )]);
        // `generic::<u32>(` — the `::<` path-seps make the shape look
        // qualified; the qualifier walk must still land on the bare name.
        let c = callees(&files, &g, "caller");
        assert_eq!(c, vec!["generic"], "{c:?}");
    }

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/serve/src/app.rs"), "serve");
        assert_eq!(crate_of("src/lib.rs"), "__root__");
        assert_eq!(crate_of("examples/x.rs"), "__root__");
    }
}
