//! A lightweight item parser over the lexed token stream: just enough
//! `fn` / `impl` / `mod` / `use` structure to build the workspace symbol
//! table and call graph the deep rules run on (see [`crate::graph`]).
//!
//! This is *not* a Rust parser. It recognizes item headers and matches
//! braces; everything it cannot classify it walks over. The contract is
//! totality, not fidelity: any token stream — including arbitrary soup —
//! produces a `FileItems` without panicking and in one bounded pass
//! (a property test pins this). Known approximations are documented on
//! [`crate::graph`], which is where their consequences live.

use crate::lexer::{TokKind, Token};
use crate::source::SourceFile;

/// One `fn` definition found in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The `impl` block's self type, when defined inside one
    /// (`impl Foo { fn bar … }` ⇒ `Some("Foo")`; trait impls record the
    /// implementing type, not the trait).
    pub impl_type: Option<String>,
    /// Enclosing in-file `mod` path, outermost first.
    pub module: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token range `[open_brace, close_brace]` of the body, when the item
    /// has one (trait method signatures and `extern` declarations do not).
    /// The end index is `tokens.len() - 1` for an unterminated body at EOF.
    pub body: Option<(usize, usize)>,
    /// Whether the definition sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// One name imported by a `use` declaration, flattened out of groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDef {
    /// The name as visible in this file (the alias, after `as`).
    pub name: String,
    /// The first path segment (`dimkb`, `crate`, `std`, …).
    pub head: String,
    /// The imported item's own name (last real segment before any alias).
    pub leaf: String,
}

/// All items parsed from one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileItems {
    /// Function definitions in source order.
    pub fns: Vec<FnDef>,
    /// Flattened `use` imports.
    pub uses: Vec<UseDef>,
}

/// Token-inspection helpers shared by the item parser and the deep rules.
pub(crate) fn ident_at(t: &[Token], i: usize) -> Option<&str> {
    match t.get(i).map(|x| &x.kind) {
        Some(TokKind::Ident(name)) => Some(name.as_str()),
        _ => None,
    }
}

pub(crate) fn punct_at(t: &[Token], i: usize, c: char) -> bool {
    matches!(t.get(i), Some(x) if x.kind == TokKind::Punct(c))
}

/// `::` — two consecutive `:` punct tokens.
pub(crate) fn path_sep_at(t: &[Token], i: usize) -> bool {
    punct_at(t, i, ':') && punct_at(t, i + 1, ':')
}

/// What an opening brace is about to introduce.
enum Pending {
    Mod(String),
    Impl(Option<String>),
    Fn(usize),
}

/// A scope on the brace stack.
enum Scope {
    Mod(String),
    Impl(Option<String>),
    Fn(usize),
    Block,
}

impl FileItems {
    /// Parses the items of one lexed file. Total: never panics, always
    /// terminates (the cursor advances on every iteration).
    pub fn parse(file: &SourceFile) -> FileItems {
        let t = &file.tokens;
        let mut items = FileItems::default();
        let mut stack: Vec<Scope> = Vec::new();
        let mut pending: Option<(usize, Pending)> = None; // (brace index, scope)
        let mut i = 0usize;
        while i < t.len() {
            match &t[i].kind {
                TokKind::Punct('{') => {
                    // A pending scope that never met its brace (malformed
                    // input) must not attach to a later one.
                    if pending.as_ref().is_some_and(|(at, _)| *at < i) {
                        pending = None;
                    }
                    let scope = match pending.take_if(|(at, _)| *at == i) {
                        Some((_, Pending::Mod(m))) => Scope::Mod(m),
                        Some((_, Pending::Impl(ty))) => Scope::Impl(ty),
                        Some((_, Pending::Fn(idx))) => Scope::Fn(idx),
                        _ => Scope::Block,
                    };
                    stack.push(scope);
                    i += 1;
                }
                TokKind::Punct('}') => {
                    if let Some(Scope::Fn(idx)) = stack.pop() {
                        if let Some(def) = items.fns.get_mut(idx) {
                            if let Some((start, _)) = def.body {
                                def.body = Some((start, i));
                            }
                        }
                    }
                    i += 1;
                }
                TokKind::Ident(kw) if kw == "mod" && pending.is_none() => {
                    if let Some(name) = ident_at(t, i + 1) {
                        if punct_at(t, i + 2, '{') {
                            pending = Some((i + 2, Pending::Mod(name.to_string())));
                        }
                    }
                    i += 1;
                }
                TokKind::Ident(kw) if kw == "impl" && pending.is_none() => {
                    if let Some((brace, ty)) = parse_impl_header(t, i) {
                        pending = Some((brace, Pending::Impl(ty)));
                    }
                    i += 1;
                }
                TokKind::Ident(kw) if kw == "fn" && pending.is_none() => {
                    if let Some((def, brace)) = parse_fn_header(file, t, i, &stack) {
                        items.fns.push(def);
                        let idx = items.fns.len() - 1;
                        if let Some(b) = brace {
                            items.fns[idx].body = Some((b, t.len().saturating_sub(1)));
                            pending = Some((b, Pending::Fn(idx)));
                        }
                    }
                    i += 1;
                }
                TokKind::Ident(kw) if kw == "use" => {
                    parse_use(t, i + 1, &mut items.uses);
                    i += 1;
                }
                _ => i += 1,
            }
        }
        items
    }
}

/// Parses an `impl` header starting at the `impl` keyword. Returns the
/// token index of the opening body brace and the self type (the last path
/// segment of the type after `for`, or of the only type). `None` when the
/// header never reaches a `{` (malformed or EOF).
fn parse_impl_header(t: &[Token], i: usize) -> Option<(usize, Option<String>)> {
    let mut j = i + 1;
    let mut last_seg: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut in_where = false;
    let mut angle = 0usize;
    while j < t.len() {
        match &t[j].kind {
            TokKind::Punct('{') if angle == 0 => {
                let ty = after_for.or(last_seg);
                return Some((j, ty));
            }
            TokKind::Punct(';') if angle == 0 => return None,
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle = angle.saturating_sub(1),
            TokKind::Ident(name) if angle == 0 && !in_where => match name.as_str() {
                "for" => saw_for = true,
                "where" => in_where = true,
                "dyn" | "unsafe" | "const" | "mut" => {}
                _ => {
                    if saw_for {
                        if after_for.is_none() || path_sep_at(t, j.wrapping_sub(2)) {
                            after_for = Some(name.clone());
                        }
                    } else {
                        last_seg = Some(name.clone());
                    }
                }
            },
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses a `fn` header starting at the `fn` keyword: the name, then a
/// bounded scan to the body `{` (paren-depth 0) or to `;` (no body).
/// `fn` immediately followed by `(` is a function-pointer type, not an
/// item. Returns the definition and the body-brace index, if any.
fn parse_fn_header(
    file: &SourceFile,
    t: &[Token],
    i: usize,
    stack: &[Scope],
) -> Option<(FnDef, Option<usize>)> {
    let name = ident_at(t, i + 1)?;
    let mut module = Vec::new();
    let mut impl_type = None;
    for s in stack {
        match s {
            Scope::Mod(m) => module.push(m.clone()),
            Scope::Impl(ty) => impl_type = ty.clone(),
            _ => {}
        }
    }
    let line = t[i].line;
    let def = FnDef {
        name: name.to_string(),
        impl_type,
        module,
        line,
        sig_start: i,
        body: None,
        in_test: file.in_test_code(line),
    };
    // Scan the signature for the body brace.
    let mut j = i + 2;
    let mut paren = 0usize;
    while j < t.len() {
        match &t[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => paren = paren.saturating_sub(1),
            TokKind::Punct('{') if paren == 0 => return Some((def, Some(j))),
            TokKind::Punct(';') if paren == 0 => return Some((def, None)),
            _ => {}
        }
        j += 1;
    }
    Some((def, None))
}

/// Parses one `use` declaration's path starting just past the `use`
/// keyword, flattening `{…}` groups (including nested ones) and `as`
/// aliases into [`UseDef`]s.
fn parse_use(t: &[Token], start: usize, out: &mut Vec<UseDef>) {
    let mut head: Option<String> = None;
    let mut last: Option<String> = None;
    let mut j = start;
    // Walk the leading simple path until `{`, `;`, or something unexpected.
    while j < t.len() {
        match &t[j].kind {
            TokKind::Ident(seg) if seg == "as" => {
                // `use a::b as c;`
                if let (Some(h), Some(l)) = (&head, &last) {
                    if let Some(alias) = ident_at(t, j + 1) {
                        out.push(UseDef {
                            name: alias.to_string(),
                            head: h.clone(),
                            leaf: l.clone(),
                        });
                    }
                }
                return;
            }
            TokKind::Ident(seg) => {
                if head.is_none() {
                    head = Some(seg.clone());
                }
                last = Some(seg.clone());
                j += 1;
            }
            TokKind::Punct(':') => j += 1,
            TokKind::Punct('{') => {
                let Some(h) = head else { return };
                parse_use_group(t, j + 1, &h, out);
                return;
            }
            TokKind::Punct(';') => {
                if let (Some(h), Some(l)) = (head, last) {
                    out.push(UseDef { name: l.clone(), head: h, leaf: l });
                }
                return;
            }
            TokKind::Punct('*') => return, // glob: resolves nothing by name
            _ => return,
        }
    }
    if let (Some(h), Some(l)) = (head, last) {
        out.push(UseDef { name: l.clone(), head: h, leaf: l });
    }
}

/// Parses the inside of a `use …::{…}` group starting just past the `{`.
/// Nested groups reuse the same head (only the crate matters for
/// resolution). Bounded by the group's closing brace or EOF.
fn parse_use_group(t: &[Token], start: usize, head: &str, out: &mut Vec<UseDef>) {
    let mut j = start;
    let mut last: Option<String> = None;
    let mut depth = 1usize;
    while j < t.len() && depth > 0 {
        match &t[j].kind {
            TokKind::Punct('{') => {
                depth += 1;
                last = None;
            }
            TokKind::Punct('}') => {
                depth -= 1;
                if let Some(l) = last.take() {
                    out.push(UseDef { name: l.clone(), head: head.to_string(), leaf: l });
                }
            }
            TokKind::Punct(',') => {
                if let Some(l) = last.take() {
                    out.push(UseDef { name: l.clone(), head: head.to_string(), leaf: l });
                }
            }
            TokKind::Ident(seg) if seg == "as" => {
                if let (Some(l), Some(alias)) = (last.take(), ident_at(t, j + 1)) {
                    out.push(UseDef { name: alias.to_string(), head: head.to_string(), leaf: l });
                    j += 1; // skip the alias ident
                }
            }
            TokKind::Ident(seg) if seg == "self" => {
                // `use a::b::{self, c}` imports `b` itself — the group head
                // stands in for it; nothing callable by simple name.
                last = None;
            }
            TokKind::Ident(seg) => last = Some(seg.clone()),
            TokKind::Punct(';') => break,
            _ => {}
        }
        j += 1;
    }
    if let Some(l) = last {
        out.push(UseDef { name: l.clone(), head: head.to_string(), leaf: l });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileItems {
        FileItems::parse(&SourceFile::parse("x.rs", src))
    }

    #[test]
    fn free_fns_and_bodies() {
        let it = parse("fn a() { one(); }\nfn b(x: u32) -> u32 { x }\nfn sig_only();\n");
        assert_eq!(it.fns.len(), 3);
        assert_eq!(it.fns[0].name, "a");
        assert!(it.fns[0].body.is_some());
        assert_eq!(it.fns[2].name, "sig_only");
        assert!(it.fns[2].body.is_none());
    }

    #[test]
    fn impl_methods_carry_self_type() {
        let it = parse("struct Foo;\nimpl Foo { fn m(&self) {} }\nimpl Display for Foo { fn fmt(&self) {} }\n");
        assert_eq!(it.fns.len(), 2);
        assert_eq!(it.fns[0].impl_type.as_deref(), Some("Foo"));
        assert_eq!(it.fns[1].name, "fmt");
        assert_eq!(it.fns[1].impl_type.as_deref(), Some("Foo"), "trait impls record the self type");
    }

    #[test]
    fn generic_impl_headers_resolve_the_type() {
        let it = parse("impl<T: Clone> Wrapper<T> { fn get(&self) {} }\n");
        assert_eq!(it.fns[0].impl_type.as_deref(), Some("Wrapper"));
        let it = parse("impl<'a> Iterator for Iter<'a> where Self: Sized { fn next(&mut self) {} }\n");
        assert_eq!(it.fns[0].impl_type.as_deref(), Some("Iter"));
    }

    #[test]
    fn module_paths_nest() {
        let it = parse("mod outer { mod inner { fn deep() {} } fn shallow() {} }\nfn top() {}\n");
        assert_eq!(it.fns[0].module, vec!["outer", "inner"]);
        assert_eq!(it.fns[1].module, vec!["outer"]);
        assert!(it.fns[2].module.is_empty());
    }

    #[test]
    fn nested_fns_both_recorded() {
        let it = parse("fn outer() { fn inner() { x(); } inner(); }\n");
        assert_eq!(it.fns.len(), 2);
        let (oa, ob) = it.fns[0].body.unwrap();
        let (ia, ib) = it.fns[1].body.unwrap();
        assert!(oa < ia && ib < ob, "inner body nests inside outer body");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let it = parse("fn real(cb: fn(u32) -> u32) { cb(1); }\ntype F = fn() -> bool;\n");
        assert_eq!(it.fns.len(), 1);
        assert_eq!(it.fns[0].name, "real");
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let it = parse("fn live() {}\n#[cfg(test)]\nmod t {\n fn helper() {}\n}\n");
        assert!(!it.fns[0].in_test);
        assert!(it.fns[1].in_test);
    }

    #[test]
    fn use_declarations_flatten() {
        let it = parse(
            "use dimkb::degrade::quarantine;\nuse dim_par::{par_map, seed_for as seed};\nuse std::collections::{HashMap, HashSet};\nuse crate::helper;\n",
        );
        let names: Vec<(&str, &str, &str)> =
            it.uses.iter().map(|u| (u.name.as_str(), u.head.as_str(), u.leaf.as_str())).collect();
        assert!(names.contains(&("quarantine", "dimkb", "quarantine")));
        assert!(names.contains(&("par_map", "dim_par", "par_map")));
        assert!(names.contains(&("seed", "dim_par", "seed_for")), "{names:?}");
        assert!(names.contains(&("HashMap", "std", "HashMap")));
        assert!(names.contains(&("helper", "crate", "helper")));
    }

    #[test]
    fn unterminated_body_extends_to_eof() {
        let it = parse("fn open() { loop {\n");
        assert_eq!(it.fns.len(), 1);
        let (_, end) = it.fns[0].body.unwrap();
        assert!(end > 0);
    }

    #[test]
    fn soup_is_survivable() {
        for src in ["fn", "impl {", "use ;;", "fn (", "mod", "impl<T", "fn a(", "use a::{b,"] {
            let _ = parse(src);
        }
    }
}
