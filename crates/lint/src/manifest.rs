//! The `zero-dep` rule: every dependency in every `Cargo.toml` must resolve
//! to a vendored in-repo path. The build environment has no registry, so a
//! `foo = "1.0"` entry would not even resolve — but it would only fail at
//! the *next* `cargo build`, possibly on another machine. This rule fails it
//! at lint time, with a line number.
//!
//! The parser is deliberately a line-oriented TOML subset: section headers,
//! `key = value` entries, and single-line inline tables — exactly the shapes
//! this workspace's manifests use. Anything fancier (multi-line inline
//! tables) is flagged as unparseable rather than silently accepted.

use crate::report::Diagnostic;
use std::path::{Component, Path, PathBuf};

const RULE: &str = "zero-dep";

/// Checks one manifest. `root` enables path-existence validation (the
/// fixture tests pass `None` to check shape only).
pub fn check_manifest(rel_path: &str, text: &str, root: Option<&Path>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = strip_toml_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            in_dep_section = line.trim_start_matches('[').trim_end_matches(']').ends_with("dependencies");
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            out.push(diag(rel_path, line_no, format!("unparseable dependency entry `{line}`")));
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        // `name.workspace = true` — resolved by the root manifest, which is
        // itself checked; nothing to validate here.
        if key.ends_with(".workspace") && value == "true" {
            continue;
        }
        // Dotted fragments of an inline definition (`name.path = "…"`).
        if let Some((_, attr)) = key.split_once('.') {
            if attr == "path" {
                check_path_value(rel_path, line_no, value, root, &mut out);
            } else if attr == "version" || attr == "git" || attr == "registry" {
                out.push(diag(rel_path, line_no, format!(
                    "dependency `{key}` pulls from a registry/remote — vendor it under crates/ \
                     and use a path dependency"
                )));
            }
            continue;
        }
        if value.starts_with('"') {
            // `name = "1.0"` — the classic registry dep.
            out.push(diag(rel_path, line_no, format!(
                "registry dependency `{key} = {value}` — the workspace is offline; vendor it \
                 under crates/ and use `path = …`"
            )));
            continue;
        }
        if value.starts_with('{') {
            if !value.ends_with('}') {
                out.push(diag(rel_path, line_no, format!(
                    "multi-line inline table for `{key}` — keep dependency entries on one line \
                     so they stay lintable"
                )));
                continue;
            }
            let body = &value[1..value.len() - 1];
            let has_workspace = inline_value(body, "workspace") == Some("true".to_string());
            let path_val = inline_value(body, "path");
            let has_remote = ["version", "git", "registry"]
                .iter()
                .any(|k| inline_value(body, k).is_some());
            if has_remote && path_val.is_none() {
                out.push(diag(rel_path, line_no, format!(
                    "dependency `{key}` pulls from a registry/remote — vendor it under crates/ \
                     and use a path dependency"
                )));
            } else if let Some(p) = path_val {
                check_path_value(rel_path, line_no, &format!("\"{p}\""), root, &mut out);
            } else if !has_workspace {
                out.push(diag(rel_path, line_no, format!(
                    "dependency `{key}` has neither `path` nor `workspace = true`"
                )));
            }
            continue;
        }
        out.push(diag(rel_path, line_no, format!("unparseable dependency value for `{key}`: `{value}`")));
    }
    out
}

/// Validates a `path = "…"` value: must be a quoted string pointing inside
/// the workspace, and (when `root` is known) must exist.
fn check_path_value(
    rel_path: &str,
    line_no: u32,
    value: &str,
    root: Option<&Path>,
    out: &mut Vec<Diagnostic>,
) {
    let Some(p) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
        out.push(diag(rel_path, line_no, format!("unparseable path value `{value}`")));
        return;
    };
    let Some(root) = root else { return };
    let manifest_dir = root.join(rel_path);
    let manifest_dir = manifest_dir.parent().unwrap_or(root);
    let joined = normalize(&manifest_dir.join(p));
    let root_n = normalize(root);
    if !joined.starts_with(&root_n) {
        out.push(diag(rel_path, line_no, format!(
            "path dependency `{p}` escapes the workspace root"
        )));
    } else if !joined.join("Cargo.toml").is_file() {
        out.push(diag(rel_path, line_no, format!(
            "path dependency `{p}` does not resolve to a crate (no Cargo.toml at {})",
            joined.display()
        )));
    }
}

/// Lexically resolves `.` / `..` components (the paths involved exist, but
/// `canonicalize` would also resolve symlinks, which we don't want).
fn normalize(p: &Path) -> PathBuf {
    let mut out = PathBuf::new();
    for c in p.components() {
        match c {
            Component::CurDir => {}
            Component::ParentDir => {
                out.pop();
            }
            c => out.push(c),
        }
    }
    out
}

/// Extracts `key = <value>` from an inline-table body, returning the value
/// with surrounding quotes stripped.
fn inline_value(body: &str, key: &str) -> Option<String> {
    for part in split_inline(body) {
        let (k, v) = part.split_once('=')?;
        if k.trim() == key {
            let v = v.trim();
            return Some(v.trim_matches('"').to_string());
        }
    }
    None
}

/// Splits an inline-table body on top-level commas (commas inside `[…]`
/// feature lists don't count).
fn split_inline(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            '[' | '{' => depth += 1,
            ']' | '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

/// Drops a `# comment` tail (quote-aware: `#` inside a string stays).
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn diag(path: &str, line: u32, message: String) -> Diagnostic {
    Diagnostic::new(path.to_string(), line, RULE, message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_deps_are_flagged() {
        let t = "[package]\nname = \"x\"\n[dependencies]\nserde = \"1.0\"\nrayon = { version = \"1.8\" }\n";
        let d = check_manifest("Cargo.toml", t, None);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("registry"));
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let t = "[dependencies]\ndim-obs = { path = \"crates/obs\" }\nserde.workspace = true\nrand = { path = \"crates/rand\", features = [\"small_rng\", \"std\"] }\n";
        assert!(check_manifest("Cargo.toml", t, None).is_empty());
    }

    #[test]
    fn non_dep_sections_are_ignored() {
        let t = "[package]\nversion = \"0.1.0\"\n[profile.release]\nlto = \"thin\"\n";
        assert!(check_manifest("Cargo.toml", t, None).is_empty());
    }

    #[test]
    fn git_deps_are_flagged() {
        let t = "[dev-dependencies]\nfoo = { git = \"https://example.com/foo\" }\n";
        let d = check_manifest("Cargo.toml", t, None);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let t = "[dependencies]\n# a comment about serde = \"1.0\"\n\ndim-obs.workspace = true\n";
        assert!(check_manifest("Cargo.toml", t, None).is_empty());
    }

    #[test]
    fn workspace_dep_sections_are_checked() {
        let t = "[workspace.dependencies]\nserde = \"1.0\"\n";
        assert_eq!(check_manifest("Cargo.toml", t, None).len(), 1);
    }
}
