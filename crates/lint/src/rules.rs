//! The rule catalog over lexed Rust source.
//!
//! Every rule walks the token stream of one [`SourceFile`] — comments and
//! string contents are already gone, `#[cfg(test)]` regions and
//! `lint:allow` suppressions are already mapped — and pushes
//! [`Diagnostic`]s. Scope (which files a rule covers) is decided by the
//! caller in `lib.rs`; rules themselves only look at tokens.

use crate::lexer::{TokKind, Token};
use crate::report::Diagnostic;
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// Methods whose call on a hash collection iterates it in layout order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "into_keys", "into_values",
    "drain", "retain",
];

/// Keywords that can legitimately precede `[` (slice patterns, `let [a,b]`)
/// and therefore must not count as the receiver of an index expression.
const NON_RECEIVER_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "fn", "for", "if",
    "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static",
    "struct", "trait", "type", "union", "unsafe", "use", "where", "while", "yield",
];

fn ident(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(name)) => Some(name.as_str()),
        _ => None,
    }
}

fn punct(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i), Some(t) if t.kind == TokKind::Punct(c))
}

/// `::` — two consecutive `:` punct tokens.
fn path_sep(tokens: &[Token], i: usize) -> bool {
    punct(tokens, i, ':') && punct(tokens, i + 1, ':')
}

/// Emits `diag` unless the site is test code or carries a suppression.
fn emit(
    file: &SourceFile,
    out: &mut Vec<Diagnostic>,
    rule: &'static str,
    allow_key: &str,
    line: u32,
    message: String,
) {
    if file.in_test_code(line) || file.suppressed(allow_key, line) {
        return;
    }
    out.push(Diagnostic::new(file.rel_path.clone(), line, rule, message));
}

// ===================== no-panic-hotpath =====================

/// Degraded-mode hot paths must never die: no `.unwrap()` / `.expect(…)`,
/// no panicking macros, no direct slice/array indexing (each index is an
/// implicit `panic!` on out-of-bounds). Sites that are provably safe carry
/// `// lint:allow(no_panic, reason)`.
pub fn no_panic_hotpath(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "no-panic-hotpath";
    const KEY: &str = "no_panic";
    let t = &file.tokens;
    for i in 0..t.len() {
        let line = t[i].line;
        // `.unwrap()` / `.expect(`
        if punct(t, i, '.') {
            if let Some(name @ ("unwrap" | "expect")) = ident(t, i + 1) {
                if punct(t, i + 2, '(') {
                    emit(file, out, RULE, KEY, line, format!(
                        "`.{name}(…)` in a hot path — quarantine or propagate a typed error \
                         (lint:allow(no_panic, reason) if provably safe)"
                    ));
                }
            }
        }
        // panicking macros
        if let Some(name @ ("panic" | "unreachable" | "todo" | "unimplemented")) = ident(t, i) {
            // Not a macro if preceded by `.`/`::` (method or path position).
            let prefixed = i >= 1 && (punct(t, i - 1, '.') || punct(t, i - 1, ':'));
            if punct(t, i + 1, '!') && !prefixed {
                emit(file, out, RULE, KEY, line, format!(
                    "`{name}!` in a hot path — degraded-mode code must return an error, not die"
                ));
            }
        }
        // postfix indexing: `expr[…]` where expr ends in an ident, `)` or `]`
        if punct(t, i, '[') && i >= 1 {
            let is_index = match &t[i - 1].kind {
                TokKind::Ident(name) => !NON_RECEIVER_KEYWORDS.contains(&name.as_str()),
                TokKind::Punct(')') | TokKind::Punct(']') => true,
                _ => false,
            };
            if is_index {
                emit(file, out, RULE, KEY, line, String::from(
                    "slice/array indexing in a hot path can panic on out-of-bounds — use \
                     `.get(…)` (lint:allow(no_panic, reason) when the bound is locally proven)",
                ));
            }
        }
    }
}

// ===================== determinism =====================

/// Output/golden-producing paths must be pure functions of the
/// configuration: no `HashMap`/`HashSet` iteration (layout order), no
/// clocks, no environment reads. Sites that are genuinely measurement-only
/// carry `// lint:allow(nondeterministic, reason)`.
pub fn determinism(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "determinism";
    const KEY: &str = "nondeterministic";
    let t = &file.tokens;
    let tracked = hash_bound_names(t);
    for i in 0..t.len() {
        let line = t[i].line;
        // Clock reads.
        if ident(t, i) == Some("Instant") && path_sep(t, i + 1) && ident(t, i + 3) == Some("now") {
            emit(file, out, RULE, KEY, line, String::from(
                "`Instant::now()` in an output-producing path — wall-clock values must never \
                 reach golden bytes",
            ));
        }
        if ident(t, i) == Some("SystemTime") {
            emit(file, out, RULE, KEY, line, String::from(
                "`SystemTime` in an output-producing path — wall-clock values must never reach \
                 golden bytes",
            ));
        }
        // Environment reads.
        if ident(t, i) == Some("env")
            && path_sep(t, i + 1)
            && matches!(ident(t, i + 3), Some("var" | "vars" | "var_os" | "vars_os" | "args" | "args_os"))
        {
            emit(file, out, RULE, KEY, line, format!(
                "`env::{}` in an output-producing path — outputs must depend only on the \
                 experiment configuration",
                ident(t, i + 3).unwrap_or("var")
            ));
        }
        // Iteration over a hash-typed binding: `name.iter()` / `for _ in &name`.
        if let Some(name) = ident(t, i) {
            if tracked.contains(name)
                && punct(t, i + 1, '.')
                && matches!(ident(t, i + 2), Some(m) if HASH_ITER_METHODS.contains(&m))
                && punct(t, i + 3, '(')
            {
                emit(file, out, RULE, KEY, line, format!(
                    "iterating hash collection `{name}` ({}) — layout order is nondeterministic; \
                     sort first or use a BTree collection",
                    ident(t, i + 2).unwrap_or("iter")
                ));
            }
        }
        if ident(t, i) == Some("for") {
            if let Some((name, at)) = for_loop_hash_receiver(t, i, &tracked) {
                emit(file, out, RULE, KEY, t[at].line, format!(
                    "`for … in {name}` iterates a hash collection — layout order is \
                     nondeterministic; sort first or use a BTree collection"
                ));
            }
        }
    }
}

/// Identifiers bound to `HashMap`/`HashSet` in this file, found lexically:
/// type ascriptions (`name: HashMap<…>`, including struct fields and full
/// `std::collections::` paths) and constructor bindings
/// (`name = HashMap::new()` / `with_capacity` / `from`).
fn hash_bound_names(t: &[Token]) -> BTreeSet<String> {
    let mut tracked = BTreeSet::new();
    for i in 0..t.len() {
        let Some(name) = ident(t, i) else { continue };
        if name == "HashMap" || name == "HashSet" {
            continue;
        }
        // `name : [&|path …] Hash{Map,Set}` — scan a short window past the
        // colon, skipping references and path segments.
        if punct(t, i + 1, ':') && !punct(t, i + 2, ':') {
            let mut j = i + 2;
            let limit = j + 8;
            while j < limit {
                match t.get(j).map(|x| &x.kind) {
                    Some(TokKind::Ident(n)) if n == "HashMap" || n == "HashSet" => {
                        tracked.insert(name.to_string());
                        break;
                    }
                    Some(TokKind::Ident(_)) | Some(TokKind::Punct(':')) | Some(TokKind::Punct('&'))
                    | Some(TokKind::Lifetime) | Some(TokKind::Punct('\'')) => j += 1,
                    _ => break,
                }
            }
        }
        // `name = Hash{Map,Set}::…`
        if punct(t, i + 1, '=')
            && matches!(ident(t, i + 2), Some("HashMap" | "HashSet"))
            && path_sep(t, i + 3)
        {
            tracked.insert(name.to_string());
        }
    }
    tracked
}

/// For a `for` at index `i`, if the loop iterates directly over a tracked
/// name (`for x in name`, `for x in &name`, `for x in &mut name`), returns
/// the name and its token index. Method-call receivers (`name.iter()`) are
/// handled by the caller's method pattern.
fn for_loop_hash_receiver<'a>(
    t: &'a [Token],
    i: usize,
    tracked: &BTreeSet<String>,
) -> Option<(&'a str, usize)> {
    // Find the `in` within a short window (patterns are rarely longer).
    let mut j = i + 1;
    let limit = (i + 24).min(t.len());
    while j < limit && ident(t, j) != Some("in") {
        j += 1;
    }
    if j >= limit {
        return None;
    }
    let mut k = j + 1;
    while punct(t, k, '&') || ident(t, k) == Some("mut") {
        k += 1;
    }
    // `for x in name {` / `for x in &name {` only; `name.iter()` is caught
    // by the method pattern.
    let name = ident(t, k)?;
    if tracked.contains(name) && punct(t, k + 1, '{') {
        return Some((name, k));
    }
    None
}

// ===================== thread-discipline =====================

/// Raw `thread::spawn` belongs only in `crates/par` (the deterministic
/// fan-out) and `crates/serve` (the worker pool); everywhere else must go
/// through `dim_par` so thread width stays a config, not an accident.
pub fn thread_discipline(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "thread-discipline";
    const KEY: &str = "thread_spawn";
    let t = &file.tokens;
    for i in 0..t.len() {
        if ident(t, i) == Some("thread") && path_sep(t, i + 1) && ident(t, i + 3) == Some("spawn")
        {
            emit(file, out, RULE, KEY, t[i].line, String::from(
                "raw `thread::spawn` outside crates/par and crates/serve — use `dim_par` so \
                 thread width stays configuration-driven and deterministic",
            ));
        }
    }
}

// ===================== relaxed-ordering =====================

/// Every `Ordering::Relaxed` must carry a
/// `// lint:allow(relaxed_ordering, reason)` justification: Relaxed is
/// correct for value-only counters but silently wrong for cross-thread
/// handoff, and the difference is invisible without the annotation.
pub fn relaxed_ordering(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "relaxed-ordering";
    const KEY: &str = "relaxed_ordering";
    let t = &file.tokens;
    for i in 0..t.len() {
        if ident(t, i) == Some("Ordering")
            && path_sep(t, i + 1)
            && ident(t, i + 3) == Some("Relaxed")
        {
            emit(file, out, RULE, KEY, t[i].line, String::from(
                "`Ordering::Relaxed` without justification — annotate with \
                 lint:allow(relaxed_ordering, reason), or upgrade to Acquire/Release if this \
                 atomic guards a cross-thread handoff",
            ));
        }
    }
}

// ===================== hot-alloc =====================

/// The annotate/link hot paths must not allocate per item: no `.clone()`,
/// `.to_string()`, `String::from(…)`, or `format!` — those are exactly the
/// patterns the interner/ScratchSpace refactor removed, and each one that
/// creeps back is a per-sentence heap round-trip multiplied by corpus size.
/// Legitimate sites (output construction, memo key insertion, error
/// reporting) carry `// lint:allow(hot_alloc, reason)`.
pub fn hot_alloc(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "hot-alloc";
    const KEY: &str = "hot_alloc";
    let t = &file.tokens;
    for i in 0..t.len() {
        let line = t[i].line;
        // `.clone()` / `.to_string()`
        if punct(t, i, '.') {
            if let Some(name @ ("clone" | "to_string")) = ident(t, i + 1) {
                if punct(t, i + 2, '(') {
                    emit(file, out, RULE, KEY, line, format!(
                        "`.{name}()` in a hot path — intern, borrow, or reuse a scratch buffer \
                         (lint:allow(hot_alloc, reason) for output/memo construction)"
                    ));
                }
            }
        }
        // `String::from(…)`
        if ident(t, i) == Some("String")
            && path_sep(t, i + 1)
            && ident(t, i + 3) == Some("from")
            && punct(t, i + 4, '(')
        {
            emit(file, out, RULE, KEY, line, String::from(
                "`String::from(…)` in a hot path — intern, borrow, or reuse a scratch buffer \
                 (lint:allow(hot_alloc, reason) for output/memo construction)",
            ));
        }
        // `format!` — not a macro call when preceded by `.`/`::`.
        if ident(t, i) == Some("format") && punct(t, i + 1, '!') {
            let prefixed = i >= 1 && (punct(t, i - 1, '.') || punct(t, i - 1, ':'));
            if !prefixed {
                emit(file, out, RULE, KEY, line, String::from(
                    "`format!` in a hot path allocates a fresh String — write into a reused \
                     buffer (lint:allow(hot_alloc, reason) for error/report construction)",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(rule: fn(&SourceFile, &mut Vec<Diagnostic>), src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("test.rs", src);
        let mut out = Vec::new();
        rule(&f, &mut out);
        out
    }

    #[test]
    fn no_panic_catches_unwrap_expect_macros_indexing() {
        let src = "fn f(v: &[u8]) { v.first().unwrap(); r.expect(\"x\"); panic!(\"y\"); let a = v[0]; }";
        let d = check(no_panic_hotpath, src);
        assert_eq!(d.len(), 4, "{d:?}");
    }

    #[test]
    fn no_panic_ignores_strings_comments_tests_and_slice_patterns() {
        let src = r#"
fn f() { let s = ".unwrap()"; let r = r"panic!(x)"; // .expect( in comment
    let [a, b] = [1, 2];
}
#[cfg(test)]
mod tests { fn t() { x.unwrap(); } }
"#;
        let d = check(no_panic_hotpath, src);
        // `[1, 2]` literal isn't indexing (preceded by `=`); `let [a, b]`
        // is a pattern (preceded by keyword).
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn no_panic_respects_suppressions() {
        let src = "fn f(v: &[u8; 4]) { let a = v[0]; // lint:allow(no_panic, fixed-size array)\n}";
        assert!(check(no_panic_hotpath, src).is_empty());
    }

    #[test]
    fn determinism_tracks_hash_bindings() {
        let src = r#"
fn f() {
    let mut m: HashMap<String, u32> = HashMap::new();
    for (k, v) in m.iter() { body(k, v); }
    let s = HashSet::new();
    let s2 = s; // rebinding without type is not tracked — fine
    for x in &m { body2(x); }
}
"#;
        let d = check(determinism, src);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn determinism_allows_keyed_access_and_vec_iter() {
        let src = r#"
struct R { choice: HashMap<K, V> }
fn f(r: &R, order: &[K]) {
    for k in order.iter() { let v = r.choice.get(k); use_it(v); }
}
"#;
        assert!(check(determinism, src).is_empty());
    }

    #[test]
    fn determinism_flags_field_iteration() {
        let src = "struct R { choice: HashMap<K, V> }\nfn f(r: &R) { for (k, v) in r.choice.iter() { b(k, v); } }";
        assert_eq!(check(determinism, src).len(), 1);
    }

    #[test]
    fn determinism_flags_clocks_and_env() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); let v = std::env::var(\"X\"); }";
        assert_eq!(check(determinism, src).len(), 3);
    }

    #[test]
    fn determinism_suppression() {
        let src = "fn f() { let t = Instant::now(); // lint:allow(nondeterministic, measurement only)\n}";
        assert!(check(determinism, src).is_empty());
    }

    #[test]
    fn thread_rule_flags_spawn() {
        assert_eq!(check(thread_discipline, "fn f() { std::thread::spawn(|| {}); }").len(), 1);
        assert!(check(thread_discipline, "fn f() { std::thread::scope(|s| {}); }").is_empty());
    }

    #[test]
    fn relaxed_rule_requires_annotation() {
        assert_eq!(check(relaxed_ordering, "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }").len(), 1);
        let ok = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); // lint:allow(relaxed_ordering, stat counter)\n}";
        assert!(check(relaxed_ordering, ok).is_empty());
        assert!(check(relaxed_ordering, "fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }").is_empty());
    }

    #[test]
    fn hot_alloc_catches_the_four_patterns() {
        let src = r#"fn f(s: &str) -> String {
    let a = s.clone();
    let b = s.to_string();
    let c = String::from(s);
    format!("{a}{b}{c}")
}"#;
        let d = check(hot_alloc, src);
        assert_eq!(d.len(), 4, "{d:?}");
    }

    #[test]
    fn hot_alloc_ignores_strings_comments_tests_and_prefixed_paths() {
        let src = r#"
fn f() {
    let s = ".clone()"; let r = r"String::from(x)"; // .to_string( and format! in comment
    let d = fmt.format!; // path-prefixed `format` followed by `!` never parses as the macro
    let e = value::format!(x); // `::format!` is some other crate's macro, not std's
    let g = s.clone; // method reference without call parens is a lexer-level near-miss
}
#[cfg(test)]
mod tests { fn t() { x.clone(); y.to_string(); } }
"#;
        let d = check(hot_alloc, src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn hot_alloc_respects_suppressions() {
        let src = "fn f(s: &str) { out.push(s.to_string()); // lint:allow(hot_alloc, output construction)\n}";
        assert!(check(hot_alloc, src).is_empty());
    }
}
