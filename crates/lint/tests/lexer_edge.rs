//! Lexer edge cases the awk scan this engine replaced could never handle,
//! plus property tests that the lexer is total (never panics, never loses
//! line-number monotonicity) on arbitrary input.

use dim_lint::lexer::lex;
use dim_lint::{check_rust_source, RuleId};
use proptest::prelude::*;

fn no_panic(src: &str) -> Vec<dim_lint::Diagnostic> {
    check_rust_source("edge.rs", src, &[RuleId::NoPanicHotpath], true)
}

#[test]
fn raw_string_containing_unwrap_is_not_a_violation() {
    let src = r####"
fn f() {
    let doc = r#"call .unwrap() and v[0] and panic!("x") here"#;
    let deeper = r##"a raw string with "# inside"##;
    let _ = (doc, deeper);
}
"####;
    assert!(no_panic(src).is_empty());
}

#[test]
fn violation_after_a_raw_string_is_still_caught() {
    let src = r###"
fn f(v: &[u8]) -> u8 {
    let doc = r#".unwrap() decoy"#;
    let _ = doc;
    v[0]
}
"###;
    let d = no_panic(src);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].line, 5, "line numbers must survive raw strings");
}

#[test]
fn nested_block_comments_hide_their_contents() {
    let src = "fn f() { /* outer /* inner v[0].unwrap() */ still comment panic!() */ }";
    assert!(no_panic(src).is_empty());
}

#[test]
fn unterminated_nested_comment_swallows_the_rest() {
    let src = "fn f() { /* open /* deeper */ never closed\nv.unwrap();\n";
    assert!(no_panic(src).is_empty());
}

#[test]
fn cfg_test_mid_file_exempts_only_its_item() {
    let src = r#"
fn live_before(v: &[u8]) -> u8 { v[0] }
#[cfg(test)]
mod tests {
    fn exempt(v: &[u8]) -> u8 { v[1] }
}
fn live_after(v: &[u8]) -> u8 { v[2] }
"#;
    let d = no_panic(src);
    let lines: Vec<u32> = d.iter().map(|x| x.line).collect();
    assert_eq!(lines, vec![2, 7], "{d:?}");
}

#[test]
fn cfg_test_at_eof_exempts_to_eof() {
    let src = "fn live(v: &[u8]) -> u8 { v[0] }\n#[cfg(test)]\nmod tests {\n  fn t(v: &[u8]) -> u8 { v[1] }\n";
    let d = no_panic(src);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].line, 1);
}

#[test]
fn multibyte_utf8_keeps_line_numbers_and_suppressions_aligned() {
    let src = "fn f(v: &[u8]) -> u8 {\n    // 多字节注释 🚀 with v[0] inside\n    let 千米 = \"单位 .unwrap()\";\n    let _ = 千米;\n    v[0] // lint:allow(no_panic, 上面已检查边界 — multi-byte reason text)\n}\n";
    assert!(no_panic(src).is_empty());
    let d = no_panic(&src.replace(" // lint:allow(no_panic, 上面已检查边界 — multi-byte reason text)", ""));
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].line, 5, "CJK/emoji bytes must not skew line accounting");
}

#[test]
fn char_literal_vs_lifetime_does_not_derail_string_tracking() {
    // If `'a` were mislexed as an unterminated char literal, the `"` after
    // it would open a string and hide the real violation.
    let src = "fn f<'a>(v: &'a [u8]) -> u8 { let c = 'x'; let s = \"ok\"; let _ = (c, s); v[0] }";
    let d = no_panic(src);
    assert_eq!(d.len(), 1, "{d:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The lexer is a total function: any printable garbage — unbalanced
    /// quotes, stray hashes, half-open comments — lexes without panicking.
    #[test]
    fn lexer_never_panics_on_arbitrary_input(s in "\\PC{0,120}") {
        let lexed = lex(&s);
        // Line numbers are 1-based and nondecreasing in token order.
        let mut last = 1u32;
        for t in &lexed.tokens {
            prop_assert!(t.line >= last);
            last = t.line;
        }
        for c in &lexed.comments {
            prop_assert!(c.end_line >= c.line && c.line >= 1);
        }
    }

    /// Rule checking is total too: the full pipeline (lex → regions →
    /// suppressions → every rule) digests arbitrary input.
    #[test]
    fn check_never_panics_on_arbitrary_input(s in "\\PC{0,120}") {
        let all: Vec<RuleId> = RuleId::ALL.to_vec();
        let _ = check_rust_source("garbage.rs", &s, &all, true);
    }

    /// Quote/comment soup built from lexer-relevant atoms: the worst-case
    /// inputs for string/comment tracking, denser than uniform printables.
    #[test]
    fn lexer_never_panics_on_quote_comment_soup(s in "[\"'#/*r\\\\ba\n\\]\\[{}]{0,160}") {
        let _ = lex(&s);
        let all: Vec<RuleId> = RuleId::ALL.to_vec();
        let _ = check_rust_source("soup.rs", &s, &all, true);
    }
}
