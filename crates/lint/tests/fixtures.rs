//! Fixture-driven rule tests: each file under `fixtures/` concentrates one
//! rule's violation classes next to the decoys that must not fire. The
//! fixtures are fed through `check_rust_source` with scope ignored (they
//! live outside every production scope on purpose) and are excluded from
//! real runs by `walk`, which this file also pins.

use dim_lint::{check_rust_source, manifest, walk, RuleId};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn check(name: &str, rule: RuleId) -> Vec<dim_lint::Diagnostic> {
    check_rust_source(&format!("fixtures/{name}"), &fixture(name), &[rule], true)
}

#[test]
fn no_panic_fixture_finds_every_violation_class() {
    let d = check("no_panic.rs", RuleId::NoPanicHotpath);
    assert_eq!(d.len(), 5, "unwrap, expect, panic!, unreachable!, indexing: {d:?}");
    assert!(d.iter().all(|x| x.rule == "no-panic-hotpath"));
    // The decoys (strings, raw strings, comments, slice patterns, test code)
    // contribute nothing: all five hits are in `hot_path`.
    assert!(d.iter().all(|x| (6..=14).contains(&x.line)), "{d:?}");
}

#[test]
fn determinism_fixture_finds_every_violation_class() {
    let d = check("determinism.rs", RuleId::Determinism);
    assert_eq!(d.len(), 5, "field iter, for-in, Instant, SystemTime, env::var: {d:?}");
    let messages: Vec<&str> = d.iter().map(|x| x.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("by_task")), "{messages:?}");
    assert!(messages.iter().any(|m| m.contains("seen")), "{messages:?}");
    assert!(messages.iter().any(|m| m.contains("Instant::now")), "{messages:?}");
    assert!(messages.iter().any(|m| m.contains("SystemTime")), "{messages:?}");
    assert!(messages.iter().any(|m| m.contains("env::var")), "{messages:?}");
}

#[test]
fn thread_discipline_fixture_flags_spawn_not_scope() {
    let d = check("thread_discipline.rs", RuleId::ThreadDiscipline);
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].message.contains("thread::spawn"));
}

#[test]
fn relaxed_ordering_fixture_requires_justification() {
    let d = check("relaxed_ordering.rs", RuleId::RelaxedOrdering);
    assert_eq!(d.len(), 1, "only the unjustified load: {d:?}");
}

#[test]
fn zero_dep_fixture_flags_registry_git_and_version_deps() {
    let d = manifest::check_manifest("fixtures/zero_dep.toml", &fixture("zero_dep.toml"), None);
    assert_eq!(d.len(), 4, "serde_json, rayon, remote, criterion: {d:?}");
    assert!(d.iter().all(|x| x.rule == "zero-dep"));
}

#[test]
fn hot_alloc_fixture_finds_every_violation_class() {
    let d = check("hot_alloc.rs", RuleId::HotAlloc);
    assert_eq!(d.len(), 4, ".clone(), .to_string(), String::from, format!: {d:?}");
    assert!(d.iter().all(|x| x.rule == "hot-alloc"));
    // Decoys (strings, comments, method references, path-prefixed macros,
    // the suppressed site, test code) contribute nothing: all four hits are
    // in `hot_path`.
    assert!(d.iter().all(|x| (6..=9).contains(&x.line)), "{d:?}");
}

#[test]
fn seeded_clone_in_a_link_path_fails_scoped_lint() {
    // The acceptance scenario: if a per-item `.clone()` creeps back into the
    // linker, the scoped check (no ignore_scope) must fire.
    let src = "fn link(m: &str) -> String { m.clone() }";
    let scoped = check_rust_source("crates/dimlink/src/linker.rs", src, &[RuleId::HotAlloc], false);
    assert_eq!(scoped.len(), 1, "{scoped:?}");
    // The same source in the reference oracle (or outside dimlink/par) is not checked.
    let oracle = check_rust_source("crates/dimlink/src/reference.rs", src, &[RuleId::HotAlloc], false);
    assert!(oracle.is_empty());
}

#[test]
fn seeded_hash_iteration_in_a_render_path_fails_scoped_lint() {
    // The acceptance scenario: if someone adds a HashMap iteration to a
    // golden-producing file, the scoped check (no ignore_scope) must fire.
    let src = "fn render(m: HashMap<String, u32>) { for (k, v) in m.iter() { println!(\"{k}{v}\"); } }";
    let scoped = check_rust_source("crates/bench/src/render.rs", src, &[RuleId::Determinism], false);
    assert_eq!(scoped.len(), 1, "{scoped:?}");
    // The same source outside the determinism scope is not checked.
    let unscoped = check_rust_source("crates/bench/src/lib.rs", src, &[RuleId::Determinism], false);
    assert!(unscoped.is_empty());
}

#[test]
fn seeded_registry_dep_fails_manifest_check() {
    let toml = "[dependencies]\nserde = \"1.0\"\n";
    let d = manifest::check_manifest("crates/obs/Cargo.toml", toml, None);
    assert_eq!(d.len(), 1, "{d:?}");
}

#[test]
fn walk_never_scans_fixtures_or_test_trees() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = walk::discover(&root).expect("workspace scan");
    assert!(
        !files.rust.is_empty() && !files.manifests.is_empty(),
        "scan must see the workspace"
    );
    for f in files.rust.iter().chain(&files.manifests) {
        assert!(!f.contains("fixtures/"), "fixture leaked into scan set: {f}");
        assert!(!f.contains("/tests/"), "test tree leaked into scan set: {f}");
    }
}
