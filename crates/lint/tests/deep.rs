//! Fixture-driven tests for the three workspace-level analyses, plus
//! property tests that the item parser / call-graph layer underneath them
//! is total on arbitrary input. Each fixture under `fixtures/deep/`
//! concentrates one rule's violation classes next to the decoys that must
//! not fire; the files are fed through `check_deep_sources` under virtual
//! workspace paths so the path-scoped rules engage.

use dim_lint::{check_deep_sources, Diagnostic, RuleId, Severity};
use proptest::prelude::*;

fn fixture(name: &str) -> String {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/deep").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn errors(d: &[Diagnostic]) -> Vec<&Diagnostic> {
    d.iter().filter(|x| x.severity == Severity::Error).collect()
}

fn warns(d: &[Diagnostic]) -> Vec<&Diagnostic> {
    d.iter().filter(|x| x.severity == Severity::Warn).collect()
}

#[test]
fn panic_reachability_fixture_flags_the_chain_and_only_the_chain() {
    let hot = fixture("panic_hot.rs");
    let helper = fixture("panic_helper.rs");
    let d = check_deep_sources(
        &[("crates/serve/src/fixture_hot.rs", &hot), ("crates/serve/src/helper.rs", &helper)],
        &[RuleId::PanicReachability],
    );
    // Exactly the three functions on the chain: `handle`, `route`,
    // `classify`. The decoys — `safe`, the justified edge, the external
    // call, test code — contribute nothing.
    assert_eq!(d.len(), 3, "{d:?}");
    assert!(d.iter().all(|x| x.rule == "panic-reachability" && x.severity == Severity::Error));
    let handle = d
        .iter()
        .find(|x| x.message.contains("`handle`"))
        .unwrap_or_else(|| panic!("no finding for handle: {d:?}"));
    assert!(handle.message.contains("3 frame(s) deep"), "{}", handle.message);
    assert!(handle.message.contains("`depth`"), "the seed is named: {}", handle.message);
}

#[test]
fn panic_reachability_witness_walks_to_the_panic_site() {
    let hot = fixture("panic_hot.rs");
    let helper = fixture("panic_helper.rs");
    let d = check_deep_sources(
        &[("crates/serve/src/fixture_hot.rs", &hot), ("crates/serve/src/helper.rs", &helper)],
        &[RuleId::PanicReachability],
    );
    for x in &d {
        assert!(!x.witness.is_empty(), "every finding carries a witness: {x:?}");
        let last = x.witness.last().unwrap();
        assert!(last.func.contains("depth"), "chains end at the panicking fn: {x:?}");
        assert_eq!(last.path, "crates/serve/src/helper.rs");
    }
    let handle = d.iter().find(|x| x.message.contains("`handle`")).unwrap();
    let funcs: Vec<&str> = handle.witness.iter().map(|s| s.func.as_str()).collect();
    assert_eq!(funcs, ["route", "classify", "depth"], "{:?}", handle.witness);
}

#[test]
fn lock_order_fixture_reports_the_seeded_cycle_with_its_path() {
    let src = fixture("lock_cycle.rs");
    let d = check_deep_sources(&[("crates/fixt/src/locks.rs", &src)], &[RuleId::LockOrder]);
    let errs = errors(&d);
    assert_eq!(errs.len(), 1, "one cycle between a and b: {d:?}");
    let e = errs[0];
    assert_eq!(e.rule, "lock-order");
    assert!(e.message.contains("potential deadlock"), "{}", e.message);
    assert!(e.message.contains("`Pair::ab`"), "first edge attributed: {}", e.message);
    assert_eq!(e.cycle, ["fixt::a", "fixt::b", "fixt::a"], "{e:?}");
    // The consistently-ordered pair (c -> d, direct and via `take_d`) and
    // the dropped-guard sequence stay silent; the socket read under `a`
    // is advisory only.
    let ws = warns(&d);
    assert_eq!(ws.len(), 1, "{d:?}");
    assert!(ws[0].message.contains("blocking `read_exact`"), "{}", ws[0].message);
    assert!(ws[0].message.contains("`fixt::a`"), "{}", ws[0].message);
}

#[test]
fn atomic_pairing_fixture_finds_every_pairing_class() {
    let src = fixture("atomic_pair.rs");
    let d = check_deep_sources(&[("crates/fixt/src/atomics.rs", &src)], &[RuleId::AtomicPairing]);
    // FLAG yields two findings (unobserved Release store + the Relaxed
    // load that cannot see it); LONE and ORPHAN one each. STAT, COUNT and
    // GOOD stay silent.
    assert_eq!(d.len(), 4, "{d:?}");
    assert!(d.iter().all(|x| x.rule == "atomic-pairing" && x.severity == Severity::Error));
    let on = |needle: &str| d.iter().filter(|x| x.message.contains(needle)).count();
    assert_eq!(on("fixt::FLAG"), 2, "{d:?}");
    assert_eq!(on("fixt::LONE"), 1, "{d:?}");
    assert_eq!(on("fixt::ORPHAN"), 1, "{d:?}");
    assert_eq!(on("fixt::STAT") + on("fixt::COUNT") + on("fixt::GOOD"), 0, "{d:?}");
}

/// The bug class that motivated the rule: PR 5's chaos switch published
/// its plan with a release store of `ENABLED` that the hot path read
/// `Relaxed`. The pre-fix shape must keep failing atomic-pairing.
#[test]
fn chaos_enabled_regression_fails_atomic_pairing() {
    let src = fixture("chaos_enabled.rs");
    let d = check_deep_sources(&[("crates/chaos/src/fixture.rs", &src)], &[RuleId::AtomicPairing]);
    assert!(!errors(&d).is_empty(), "the pre-fix chaos shape must fail: {d:?}");
    let relaxed = d
        .iter()
        .find(|x| x.message.contains("`Relaxed` load on `chaos::ENABLED`"))
        .unwrap_or_else(|| panic!("the Relaxed load is the finding: {d:?}"));
    assert!(relaxed.message.contains("cannot synchronize"), "{}", relaxed.message);
    // The fields published *under* the release store are not the bug.
    assert!(d.iter().all(|x| !x.message.contains("SEED")), "{d:?}");
}

#[test]
fn deep_rules_compose_over_one_source_set() {
    let hot = fixture("panic_hot.rs");
    let helper = fixture("panic_helper.rs");
    let locks = fixture("lock_cycle.rs");
    let atomics = fixture("atomic_pair.rs");
    let sources: Vec<(&str, &str)> = vec![
        ("crates/serve/src/fixture_hot.rs", &hot),
        ("crates/serve/src/helper.rs", &helper),
        ("crates/fixt/src/locks.rs", &locks),
        ("crates/fixt/src/atomics.rs", &atomics),
    ];
    let d = check_deep_sources(&sources, &RuleId::DEEP);
    // Same totals as the per-rule runs: the analyses don't interfere.
    assert_eq!(errors(&d).len(), 3 + 1 + 4, "{d:?}");
    assert_eq!(warns(&d).len(), 1, "{d:?}");
}

/// Building blocks for item-shaped token soup.
const SOUP_PARTS: &[&str] = &[
    "fn ", "impl ", "use ", "mod ", "self", "Self", "for ", "where ", "::", "<", ">", "{", "}",
    "(", ")", ";", ",", ".", "lock()", "unwrap()", "Ordering::Release", "#[cfg(test)]",
    "r#\"x\"#", "'a", "a", "bb", "ccc", " ", "\n",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The item parser and call-graph builder under the deep rules are
    /// total: arbitrary printable garbage parses, builds, and analyzes
    /// without panicking, and every diagnostic keeps a valid line.
    #[test]
    fn deep_analysis_is_total_on_arbitrary_input(s in "\\PC{0,160}") {
        let d = check_deep_sources(&[("crates/serve/src/soup.rs", &s)], &RuleId::DEEP);
        for x in &d {
            prop_assert!(x.line >= 1);
        }
    }

    /// Same, on soup biased toward item syntax — half-open fn headers,
    /// stray impl/use/generics tokens, test attributes, raw strings —
    /// across two files so cross-file resolution runs too.
    #[test]
    fn deep_analysis_is_total_on_item_shaped_soup(
        ix in prop::collection::vec(0usize..SOUP_PARTS.len(), 0..80)
    ) {
        let src: String = ix.iter().map(|&i| SOUP_PARTS[i]).collect();
        let (a, b) = src.split_at(src.len() / 2); // all parts are ASCII
        let d = check_deep_sources(
            &[("crates/serve/src/a.rs", a), ("crates/serve/src/b.rs", b)],
            &RuleId::DEEP,
        );
        for x in &d {
            prop_assert!(x.line >= 1);
        }
    }
}
