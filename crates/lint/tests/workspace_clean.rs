//! The self-test that gives `make lint` its teeth: the workspace itself
//! must be clean under every rule — including the deep (call-graph) rules,
//! which run here exactly as `dimlint --deep` runs them in `make verify`.
//! A violation introduced anywhere in the scanned tree fails this test
//! with a file:line diagnostic.

use dim_lint::{run, LintOptions, Severity};

#[test]
fn the_workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut opts = LintOptions::new(root);
    opts.deep = true;
    let report = run(&opts).expect("lint run");
    assert!(
        report.files_scanned > 100,
        "scan set collapsed to {} files — walk is broken",
        report.files_scanned
    );
    assert!(
        !report.has_errors(),
        "workspace has lint violations:\n{}",
        report.render_human()
    );
    let warns: Vec<_> =
        report.diagnostics.iter().filter(|d| d.severity == Severity::Warn).collect();
    assert!(
        warns.is_empty(),
        "workspace has unjustified lint warnings (add lint:allow with a reason):\n{}",
        report.render_human()
    );
}

/// The parallel file pass must not change a single output byte: width 1
/// and width 4 renderings are compared bit-for-bit, human and JSON.
#[test]
fn output_is_byte_identical_across_thread_widths() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut w1 = LintOptions::new(root);
    w1.deep = true;
    w1.threads = 1;
    let mut w4 = w1.clone();
    w4.threads = 4;
    let r1 = run(&w1).expect("width-1 run");
    let r4 = run(&w4).expect("width-4 run");
    assert_eq!(r1.render_human(), r4.render_human(), "human output differs across widths");
    assert_eq!(r1.render_json(), r4.render_json(), "json output differs across widths");
}
