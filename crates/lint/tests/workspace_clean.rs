//! The self-test that gives `make lint` its teeth: the workspace itself
//! must be clean under every rule. A violation introduced anywhere in the
//! scanned tree fails this test (and the `dimlint` binary run in `verify`)
//! with a file:line diagnostic.

use dim_lint::{run, LintOptions};

#[test]
fn the_workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run(&LintOptions { root, rules: Vec::new() }).expect("lint run");
    assert!(
        report.files_scanned > 100,
        "scan set collapsed to {} files — walk is broken",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint violations:\n{}",
        report.render_human()
    );
}
