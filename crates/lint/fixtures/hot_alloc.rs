//! Fixture: every hot-alloc violation class. Fed through
//! `check_rust_source` with scope ignored; never compiled or scanned by a
//! real lint run (`walk` only visits `src/` trees).

fn hot_path(s: &str, owned: String) -> String {
    let a = owned.clone();
    let b = s.to_string();
    let c = String::from(s);
    format!("{a}{b}{c}")
}

fn justified_output_construction(s: &str, out: &mut Vec<String>) {
    out.push(s.to_string()); // lint:allow(hot_alloc, report construction, outside the per-sentence loop)
}

fn decoys_that_must_not_fire(s: &str) {
    let lit = ".clone() inside a string";
    let raw = r"String::from(in a raw string)";
    // .to_string( and format!( in a line comment
    /* s.clone() in a /* nested */ block comment */
    let method_ref = s.clone; // no call parens — not the allocation pattern
    let other_macro = value::format!(s); // another crate's path-prefixed macro
    let _ = (lit, raw, method_ref, other_macro);
}

#[cfg(test)]
mod tests {
    fn test_code_is_exempt(s: &str) -> String {
        s.to_string() // allocation in test code never fires
    }
}
