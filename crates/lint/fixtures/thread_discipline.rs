//! Fixture: raw `thread::spawn` outside the sanctioned crates.

fn fan_out() {
    let h = std::thread::spawn(|| 42);
    let _ = h.join();
}

fn scoped_is_fine() {
    std::thread::scope(|s| {
        let _ = s;
    });
}
