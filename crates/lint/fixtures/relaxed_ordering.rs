//! Fixture: `Ordering::Relaxed` with and without justification.

use std::sync::atomic::{AtomicU64, Ordering};

fn unjustified(a: &AtomicU64) -> u64 {
    a.load(Ordering::Relaxed)
}

fn justified(a: &AtomicU64) -> u64 {
    a.load(Ordering::Relaxed) // lint:allow(relaxed_ordering, value-only stat counter)
}

fn stronger_orderings_never_fire(a: &AtomicU64) -> u64 {
    a.store(1, Ordering::Release);
    a.load(Ordering::Acquire)
}
