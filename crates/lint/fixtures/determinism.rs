//! Fixture: every determinism violation class — hash iteration (binding,
//! field, and `for … in` forms), clock reads, and env reads.

use std::collections::{HashMap, HashSet};

struct Results {
    by_task: HashMap<String, u32>,
}

fn render(r: &Results) -> String {
    let mut out = String::new();
    for (k, v) in r.by_task.iter() {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

fn summarize() -> usize {
    let seen: HashSet<u64> = HashSet::new();
    let mut n = 0;
    for x in &seen {
        n += *x as usize;
    }
    let stamp = Instant::now();
    let wall = SystemTime::now();
    let home = std::env::var("HOME");
    let _ = (stamp, wall, home);
    n
}

fn keyed_access_is_fine(r: &Results, order: &[String]) -> u32 {
    order.iter().filter_map(|k| r.by_task.get(k)).sum()
}
