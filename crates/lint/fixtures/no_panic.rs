//! Fixture: every no-panic-hotpath violation class. Fed through
//! `check_rust_source` with scope ignored; never compiled or scanned by a
//! real lint run (`walk` only visits `src/` trees).

fn hot_path(v: &[u8], r: Result<u8, ()>) -> u8 {
    let first = v.first().unwrap();
    let second = r.expect("always ok");
    if *first == 0 {
        panic!("zero");
    }
    if second == 1 {
        unreachable!();
    }
    v[2]
}

fn decoys_that_must_not_fire() {
    let s = ".unwrap() inside a string";
    let raw = r"panic!(in a raw string)";
    // .expect( in a line comment
    /* v[0] in a /* nested */ block comment */
    let [a, b] = [1, 2]; // slice pattern + array literal, not indexing
    let _ = (s, raw, a, b);
}

#[cfg(test)]
mod tests {
    fn test_code_is_exempt(v: &[u8]) -> u8 {
        v[0] // indexing in test code never fires
    }
}
