//! atomic-pairing fixture: one atomic per violation class, one per
//! exemption. `FLAG` is the PR 5 shape (Release store read Relaxed),
//! `LONE` a Release store nobody acquires, `ORPHAN` an Acquire load
//! nobody publishes to; `STAT` (SeqCst counter read Relaxed), `COUNT`
//! (all-Relaxed) and `GOOD` (properly paired) must stay silent.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

static FLAG: AtomicBool = AtomicBool::new(false);
static LONE: AtomicU64 = AtomicU64::new(0);
static ORPHAN: AtomicUsize = AtomicUsize::new(0);
static STAT: AtomicU64 = AtomicU64::new(0);
static COUNT: AtomicU64 = AtomicU64::new(0);
static GOOD: AtomicBool = AtomicBool::new(false);

pub fn publish() {
    FLAG.store(true, Ordering::Release);
    LONE.store(1, Ordering::Release);
    STAT.store(2, Ordering::SeqCst);
    COUNT.fetch_add(1, Ordering::Relaxed);
    GOOD.store(true, Ordering::Release);
}

pub fn consume() -> bool {
    let f = FLAG.load(Ordering::Relaxed);
    let o = ORPHAN.load(Ordering::Acquire);
    let s = STAT.load(Ordering::Relaxed);
    let c = COUNT.load(Ordering::Relaxed);
    let g = GOOD.load(Ordering::Acquire);
    f && g && o + s as usize + c as usize == 0
}
