//! lock-order fixture: `ab` and `ba` acquire the same pair of mutexes in
//! opposite orders — the seeded deadlock cycle the rule must report — next
//! to decoys that must not fire: a consistently-ordered pair (direct and
//! through a helper call), a guard dropped before the next acquisition,
//! and one blocking-I/O-under-lock site that must warn rather than error.

use std::io::Read;
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
    c: Mutex<u32>,
    d: Mutex<u32>,
}

impl Pair {
    pub fn ab(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn ba(&self) -> u32 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga - *gb
    }

    // Decoy: the same order from two sites (one interprocedural) is
    // consistent — no cycle.
    pub fn cd(&self) -> u32 {
        let gc = self.c.lock().unwrap();
        let gd = self.d.lock().unwrap();
        *gc + *gd
    }

    pub fn cd_again(&self) -> u32 {
        let gc = self.c.lock().unwrap();
        *gc + self.take_d()
    }

    fn take_d(&self) -> u32 {
        *self.d.lock().unwrap()
    }

    // Decoy: dropping the first guard before the second acquisition means
    // no `d -> c` edge, so the consistent `c -> d` order stands.
    pub fn sequential(&self) -> u32 {
        let gd = self.d.lock().unwrap();
        let x = *gd;
        drop(gd);
        let gc = self.c.lock().unwrap();
        x + *gc
    }

    // Advisory: blocking socket I/O while holding `a` warns (not errors).
    pub fn held_io(&self, src: &mut std::net::TcpStream) -> u32 {
        let ga = self.a.lock().unwrap();
        let mut buf = [0u8; 4];
        let _ = src.read_exact(&mut buf);
        *ga
    }
}
