//! Regression fixture: the pre-fix shape of the chaos switch. `install`
//! publishes the plan fields with a release store of `ENABLED`, but the
//! hot-path check loaded it `Relaxed` — a reader observing `true` was not
//! guaranteed to see the plan fields the release store ordered. PR 5 found
//! this by hand; atomic-pairing must fail this file mechanically.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEED: AtomicU64 = AtomicU64::new(0);

pub fn install(seed: u64) {
    SEED.store(seed, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Release);
}

pub fn is_active() -> bool {
    ENABLED.load(Ordering::Relaxed)
}
