//! panic-reachability fixture, cold side: the panic the hot entry in
//! `panic_hot.rs` transitively reaches lives at the bottom of this file.

pub fn classify(s: &str) -> usize {
    depth(s)
}

fn depth(s: &str) -> usize {
    s.find(':').unwrap()
}
