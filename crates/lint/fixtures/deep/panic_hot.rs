//! panic-reachability fixture, hot side: `handle` reaches a panic three
//! frames down (`route` → `classify` → `depth`, the panic living in the
//! companion `panic_helper.rs`), next to decoys that must stay silent —
//! a total function, a justified call edge, a call into an unknown crate,
//! and test code.

pub fn handle(req: &str) -> usize {
    route(req)
}

fn route(req: &str) -> usize {
    helper::classify(req)
}

// Decoy: calls nothing that panics.
pub fn safe(req: &str) -> usize {
    req.len()
}

// Decoy: the edge is justified, so nothing propagates through it.
pub fn justified(req: &str) -> usize {
    // lint:allow(panic_reachable, fixture decoy - the input is pre-validated upstream)
    route(req)
}

// Decoy: an unresolvable external call contributes no edge.
pub fn external_only(req: &str) -> usize {
    mystery_crate::transform(req)
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_freely_in_tests() {
        assert_eq!(super::handle("x:y"), 1);
        "7".parse::<usize>().unwrap();
    }
}
