//! Arithmetic expressions over units (`F_c` in Table I of the paper, e.g.
//! `Joule × Meter`), used by the dimension-arithmetic task and by the
//! WolframAlpha-style tool engine.
//!
//! Expressions combine units with `*` (also `·`, `×`, ` per `→`/`), `/`,
//! integer exponents (`^2`, `²`, `³`, `⁻¹`) and parentheses. Evaluation
//! yields the combined [`DimVec`] and the combined multiplicative SI factor.
//! Affine units (°C, °F) are rejected inside compounds but allowed as a
//! bare single-unit expression.

use crate::dim::DimVec;
use crate::error::KbError;
use crate::kb::DimUnitKb;
use crate::unit::UnitId;

/// The value of a unit expression: its dimension and SI factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExprValue {
    /// Combined dimension vector.
    pub dim: DimVec,
    /// Combined multiplicative factor to SI coherent units.
    pub factor: f64,
}

/// A binary operation between units in an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitOp {
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// Evaluates a product of unit powers, e.g. `[(J, 1), (kg, -1), (K, -1)]`.
///
/// This is the programmatic counterpart of [`eval`], used when expressions
/// are generated rather than parsed.
pub fn eval_powers(kb: &DimUnitKb, powers: &[(UnitId, i8)]) -> Result<ExprValue, KbError> {
    let mut dim = DimVec::DIMENSIONLESS;
    let mut factor = 1.0;
    let single = powers.len() == 1 && powers[0].1 == 1;
    for &(id, exp) in powers {
        let unit = kb.unit(id);
        if unit.conversion.is_affine() && !single {
            return Err(KbError::AffineInCompound(unit.label_en.clone()));
        }
        dim = dim * unit.dim.powi(exp);
        factor *= unit.conversion.factor.powi(exp as i32);
    }
    Ok(ExprValue { dim, factor })
}

/// Parses and evaluates a textual unit expression against the KB.
///
/// ```
/// use dimkb::{expr::eval, DimUnitKb, DimVec};
///
/// let kb = DimUnitKb::shared();
/// let v = eval(&kb, "J / (kg * K)").unwrap();
/// assert_eq!(v.dim, DimVec::parse("L2 T-2 H-1").unwrap());
/// ```
pub fn eval(kb: &DimUnitKb, input: &str) -> Result<ExprValue, KbError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { kb, tokens, pos: 0, unit_count: 0 };
    let value = parser.expr()?;
    if parser.pos != parser.tokens.len() {
        return Err(KbError::ExprParse(format!("trailing input in {input:?}")));
    }
    Ok(value)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Name(String),
    Op(UnitOp),
    Pow(i8),
    Open,
    Close,
}

fn tokenize(input: &str) -> Result<Vec<Token>, KbError> {
    // ` per ` is division; `squared`/`cubed` are postfix exponents.
    let lowered = format!(" {} ", input.trim());
    let pre = lowered
        .replace(" per ", " / ")
        .replace(" Per ", " / ")
        .replace(" PER ", " / ");
    let mut tokens = Vec::new();
    let mut word = String::new();
    let mut chars = pre.chars().peekable();
    let flush = |word: &mut String, tokens: &mut Vec<Token>| {
        let w = word.trim();
        if !w.is_empty() {
            match w {
                "squared" => tokens.push(Token::Pow(2)),
                "cubed" => tokens.push(Token::Pow(3)),
                _ => {
                    // Merge consecutive name words into one phrase token.
                    if let Some(Token::Name(prev)) = tokens.last_mut() {
                        prev.push(' ');
                        prev.push_str(w);
                    } else {
                        tokens.push(Token::Name(w.to_string()));
                    }
                }
            }
        }
        word.clear();
    };
    while let Some(c) = chars.next() {
        match c {
            '*' | '·' | '×' | '⋅' => {
                flush(&mut word, &mut tokens);
                tokens.push(Token::Op(UnitOp::Mul));
            }
            '/' | '÷' => {
                flush(&mut word, &mut tokens);
                tokens.push(Token::Op(UnitOp::Div));
            }
            '(' => {
                flush(&mut word, &mut tokens);
                tokens.push(Token::Open);
            }
            ')' => {
                flush(&mut word, &mut tokens);
                tokens.push(Token::Close);
            }
            '^' => {
                flush(&mut word, &mut tokens);
                let mut num = String::new();
                if matches!(chars.peek(), Some('-') | Some('+')) {
                    num.extend(chars.next());
                }
                while matches!(chars.peek(), Some(d) if d.is_ascii_digit()) {
                    num.extend(chars.next());
                }
                let exp: i8 = num
                    .parse()
                    .map_err(|_| KbError::ExprParse(format!("bad exponent {num:?}")))?;
                // No physical unit expression needs |exp| > 12; larger values
                // are adversarial input (DimVec arithmetic saturates, but the
                // SI factor would silently overflow to ±inf).
                if exp.unsigned_abs() > 12 {
                    return Err(KbError::ExprParse(format!("exponent out of range: {exp}")));
                }
                tokens.push(Token::Pow(exp));
            }
            '⁻' => {
                flush(&mut word, &mut tokens);
                let exp = match chars.next() {
                    Some('¹') => -1,
                    Some('²') => -2,
                    Some('³') => -3,
                    other => {
                        return Err(KbError::ExprParse(format!(
                            "bad superscript after ⁻: {other:?}"
                        )))
                    }
                };
                tokens.push(Token::Pow(exp));
            }
            '²' => {
                flush(&mut word, &mut tokens);
                tokens.push(Token::Pow(2));
            }
            '³' => {
                flush(&mut word, &mut tokens);
                tokens.push(Token::Pow(3));
            }
            c if c.is_whitespace() => {
                // End the current word but allow multi-word names: flush
                // merges consecutive words into the previous Name token
                // unless an operator intervened.
                flush(&mut word, &mut tokens);
            }
            c => word.push(c),
        }
    }
    flush(&mut word, &mut tokens);
    if tokens.is_empty() {
        return Err(KbError::ExprParse("empty expression".into()));
    }
    Ok(tokens)
}

struct Parser<'a> {
    kb: &'a DimUnitKb,
    tokens: Vec<Token>,
    pos: usize,
    unit_count: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn expr(&mut self) -> Result<ExprValue, KbError> {
        let mut acc = self.term()?;
        while let Some(Token::Op(op)) = self.peek().cloned() {
            self.pos += 1;
            let rhs = self.term()?;
            match op {
                UnitOp::Mul => {
                    acc.dim = acc.dim * rhs.dim;
                    acc.factor *= rhs.factor;
                }
                UnitOp::Div => {
                    acc.dim = acc.dim / rhs.dim;
                    acc.factor /= rhs.factor;
                }
            }
        }
        Ok(acc)
    }

    fn term(&mut self) -> Result<ExprValue, KbError> {
        let mut base = match self.peek().cloned() {
            Some(Token::Open) => {
                self.pos += 1;
                let inner = self.expr()?;
                match self.peek() {
                    Some(Token::Close) => {
                        self.pos += 1;
                        inner
                    }
                    _ => return Err(KbError::ExprParse("unclosed parenthesis".into())),
                }
            }
            Some(Token::Name(name)) => {
                self.pos += 1;
                self.resolve(&name)?
            }
            other => return Err(KbError::ExprParse(format!("unexpected token {other:?}"))),
        };
        while let Some(Token::Pow(exp)) = self.peek().cloned() {
            self.pos += 1;
            base.dim = base.dim.powi(exp);
            base.factor = base.factor.powi(exp as i32);
        }
        Ok(base)
    }

    /// Resolves a (possibly multi-word) unit name, preferring the
    /// highest-frequency candidate; falls back to trying the trailing word
    /// alone so phrases like "force in newton" degrade gracefully.
    fn resolve(&mut self, name: &str) -> Result<ExprValue, KbError> {
        let candidates = self.kb.lookup(name);
        let id = if candidates.is_empty() {
            let last = name.rsplit(' ').next().unwrap_or(name);
            let fallback = self.kb.lookup(last);
            *best_by_frequency(self.kb, fallback).ok_or_else(|| KbError::UnknownUnit(name.to_string()))?
        } else {
            *best_by_frequency(self.kb, candidates)
                .ok_or_else(|| KbError::UnknownUnit(name.to_string()))?
        };
        self.unit_count += 1;
        let unit = self.kb.unit(id);
        if unit.conversion.is_affine() && (self.unit_count > 1 || self.tokens.len() > 1) {
            return Err(KbError::AffineInCompound(unit.label_en.clone()));
        }
        Ok(ExprValue { dim: unit.dim, factor: unit.conversion.factor })
    }
}

fn best_by_frequency<'a>(kb: &DimUnitKb, ids: &'a [UnitId]) -> Option<&'a UnitId> {
    ids.iter().max_by(|a, b| {
        kb.unit(**a)
            .frequency
            .partial_cmp(&kb.unit(**b).frequency)
            .unwrap_or(std::cmp::Ordering::Equal)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::{Base, DimVec};

    fn kb() -> std::sync::Arc<DimUnitKb> {
        DimUnitKb::shared()
    }

    #[test]
    fn joule_times_metre() {
        let v = eval(&kb(), "joule * metre").unwrap();
        assert_eq!(v.dim, DimVec::parse("L3 M T-2").unwrap());
        assert!((v.factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn newton_over_square_metre_is_pascal() {
        let kb = kb();
        let v = eval(&kb, "N / m^2").unwrap();
        let pa = kb.unit_by_code("PA").unwrap();
        assert_eq!(v.dim, pa.dim);
        assert!((v.factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_keyword_divides() {
        let kb = kb();
        let v = eval(&kb, "dyne per centimetre").unwrap();
        assert_eq!(v.dim, DimVec::parse("M T-2").unwrap());
        assert!((v.factor - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn parentheses_and_unicode_dot() {
        let kb = kb();
        let v = eval(&kb, "J / (kg · K)").unwrap();
        assert_eq!(v.dim, DimVec::parse("L2 T-2 H-1").unwrap());
    }

    #[test]
    fn superscripts_work() {
        let kb = kb();
        let a = eval(&kb, "m²").unwrap();
        assert_eq!(a.dim, DimVec::base(Base::Length).powi(2));
        let b = eval(&kb, "s⁻¹").unwrap();
        assert_eq!(b.dim, DimVec::base(Base::Time).powi(-1));
    }

    #[test]
    fn multiword_names_resolve() {
        let kb = kb();
        let v = eval(&kb, "light year / year").unwrap();
        assert_eq!(v.dim, DimVec::parse("L T-1").unwrap());
        // ly/yr is the speed of light.
        assert!((v.factor - 299_792_458.0).abs() / 299_792_458.0 < 1e-6);
    }

    #[test]
    fn squared_postfix_word() {
        let kb = kb();
        let v = eval(&kb, "m / s squared").unwrap();
        assert_eq!(v.dim, DimVec::parse("L T-2").unwrap());
    }

    #[test]
    fn affine_rejected_in_compound_allowed_bare() {
        let kb = kb();
        assert!(eval(&kb, "°C").is_ok());
        assert!(matches!(eval(&kb, "°C / s"), Err(KbError::AffineInCompound(_))));
    }

    #[test]
    fn unknown_unit_is_reported() {
        let kb = kb();
        assert!(matches!(eval(&kb, "flibbertigibbet"), Err(KbError::UnknownUnit(_))));
    }

    #[test]
    fn eval_powers_matches_parsed() {
        let kb = kb();
        let j = kb.unit_by_code("J").unwrap().id;
        let kg = kb.unit_by_code("KiloGM").unwrap().id;
        let k = kb.unit_by_code("K").unwrap().id;
        let p = eval_powers(&kb, &[(j, 1), (kg, -1), (k, -1)]).unwrap();
        let e = eval(&kb, "J/(kg*K)").unwrap();
        assert_eq!(p.dim, e.dim);
        assert!((p.factor - e.factor).abs() < 1e-12);
    }

    #[test]
    fn eval_powers_rejects_affine() {
        let kb = kb();
        let c = kb.unit_by_code("DEG-C").unwrap().id;
        let s = kb.unit_by_code("SEC").unwrap().id;
        assert!(eval_powers(&kb, &[(c, 1), (s, -1)]).is_err());
        assert!(eval_powers(&kb, &[(c, 1)]).is_ok());
    }

    #[test]
    fn empty_expression_errors() {
        assert!(matches!(eval(&kb(), "   "), Err(KbError::ExprParse(_))));
    }
}
