//! SI decimal prefixes, used to expand prefixable metric units into the full
//! prefixed family (`metre` → `kilometre`, `centimetre`, …), mirroring how
//! QUDT reaches its unit count.

use serde::Serialize;

/// An SI decimal prefix. Serialize-only: prefixes are const tables of
/// `&'static str` data, never deserialized.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SiPrefix {
    /// English prefix name, e.g. `kilo`.
    pub name_en: &'static str,
    /// Chinese prefix name, e.g. `千`.
    pub name_zh: &'static str,
    /// Prefix symbol, e.g. `k`.
    pub symbol: &'static str,
    /// Power of ten, e.g. `3`.
    pub power: i8,
    /// How common the prefix is in everyday text, in `[0, 1]`; used to scale
    /// the popularity of prefix-expanded units (the paper's observation that
    /// "centimetre" is frequent while "decimetre" is rare).
    pub commonness: f64,
}

impl SiPrefix {
    /// The multiplicative factor `10^power`.
    pub fn factor(&self) -> f64 {
        10f64.powi(self.power as i32)
    }
}

/// The twenty SI decimal prefixes (quetta/ronna families omitted, matching
/// the 2001 SI brochure the paper cites).
pub const SI_PREFIXES: &[SiPrefix] = &[
    SiPrefix { name_en: "yotta", name_zh: "尧", symbol: "Y", power: 24, commonness: 0.02 },
    SiPrefix { name_en: "zetta", name_zh: "泽", symbol: "Z", power: 21, commonness: 0.02 },
    SiPrefix { name_en: "exa", name_zh: "艾", symbol: "E", power: 18, commonness: 0.03 },
    SiPrefix { name_en: "peta", name_zh: "拍", symbol: "P", power: 15, commonness: 0.05 },
    SiPrefix { name_en: "tera", name_zh: "太", symbol: "T", power: 12, commonness: 0.15 },
    SiPrefix { name_en: "giga", name_zh: "吉", symbol: "G", power: 9, commonness: 0.35 },
    SiPrefix { name_en: "mega", name_zh: "兆", symbol: "M", power: 6, commonness: 0.45 },
    SiPrefix { name_en: "kilo", name_zh: "千", symbol: "k", power: 3, commonness: 0.95 },
    SiPrefix { name_en: "hecto", name_zh: "百", symbol: "h", power: 2, commonness: 0.12 },
    SiPrefix { name_en: "deca", name_zh: "十", symbol: "da", power: 1, commonness: 0.05 },
    SiPrefix { name_en: "deci", name_zh: "分", symbol: "d", power: -1, commonness: 0.10 },
    SiPrefix { name_en: "centi", name_zh: "厘", symbol: "c", power: -2, commonness: 0.85 },
    SiPrefix { name_en: "milli", name_zh: "毫", symbol: "m", power: -3, commonness: 0.90 },
    SiPrefix { name_en: "micro", name_zh: "微", symbol: "µ", power: -6, commonness: 0.55 },
    SiPrefix { name_en: "nano", name_zh: "纳", symbol: "n", power: -9, commonness: 0.45 },
    SiPrefix { name_en: "pico", name_zh: "皮", symbol: "p", power: -12, commonness: 0.20 },
    SiPrefix { name_en: "femto", name_zh: "飞", symbol: "f", power: -15, commonness: 0.08 },
    SiPrefix { name_en: "atto", name_zh: "阿", symbol: "a", power: -18, commonness: 0.03 },
    SiPrefix { name_en: "zepto", name_zh: "仄", symbol: "z", power: -21, commonness: 0.02 },
    SiPrefix { name_en: "yocto", name_zh: "幺", symbol: "y", power: -24, commonness: 0.02 },
];

/// Looks up a prefix by its English name.
pub fn prefix_by_name(name: &str) -> Option<&'static SiPrefix> {
    SI_PREFIXES.iter().find(|p| p.name_en == name)
}

/// Looks up a prefix by its symbol.
pub fn prefix_by_symbol(symbol: &str) -> Option<&'static SiPrefix> {
    SI_PREFIXES.iter().find(|p| p.symbol == symbol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_prefixes_with_unique_symbols() {
        assert_eq!(SI_PREFIXES.len(), 20);
        let mut symbols: Vec<&str> = SI_PREFIXES.iter().map(|p| p.symbol).collect();
        symbols.sort_unstable();
        symbols.dedup();
        assert_eq!(symbols.len(), 20, "prefix symbols must be unique");
    }

    #[test]
    fn factors_match_powers() {
        let kilo = prefix_by_name("kilo").unwrap();
        assert_eq!(kilo.factor(), 1e3);
        let micro = prefix_by_symbol("µ").unwrap();
        assert!((micro.factor() - 1e-6).abs() < 1e-21);
    }

    #[test]
    fn common_prefixes_outrank_rare_ones() {
        let kilo = prefix_by_name("kilo").unwrap();
        let deci = prefix_by_name("deci").unwrap();
        assert!(kilo.commonness > deci.commonness, "kilometre is more common than decimetre");
    }

    #[test]
    fn lookup_misses_return_none() {
        assert!(prefix_by_name("mega2").is_none());
        assert!(prefix_by_symbol("q").is_none());
    }
}
