//! Degraded-mode execution vocabulary: the [`RecordError`] taxonomy, the
//! [`ErrorBudget`] contract, and the quarantine bookkeeping shared by every
//! `try_*` batch entry point in the workspace.
//!
//! # The degradation contract
//!
//! A `try_*` batch entry point processes every input record independently.
//! A record that fails — a KB error, a parse failure, an oversized input, a
//! caught panic, or an injected fault from `dim-chaos` — is **skipped and
//! recorded** as a [`QuarantineEntry`]; every other record's output is
//! byte-identical to what the classic (non-`try`) entry point produces.
//! After the batch, the failure fraction is checked against the caller's
//! [`ErrorBudget`]: exceeding it returns a typed [`BudgetExceeded`] abort,
//! never a panic. With no faults (and no fault plan installed) a `try_*`
//! call returns exactly the classic output plus an empty quarantine.
//!
//! Chaos faults are consulted *only* through [`inject`], which the `try_*`
//! paths call once per record; classic paths never consult the injector, so
//! an installed [`dim_chaos::FaultPlan`] cannot perturb golden outputs.

use crate::error::KbError;
use std::fmt;

/// Per-record size cap enforced by the degraded-mode entry points. Real
/// corpus sentences and MWP statements are a few hundred bytes; anything
/// beyond this is a malformed or adversarial record.
pub const MAX_RECORD_BYTES: usize = 64 * 1024;

/// Why one record was skipped by a degraded-mode batch entry point.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordError {
    /// A knowledge-base query or conversion failed.
    Kb(KbError),
    /// A unit expression could not be parsed.
    ExprParse(String),
    /// Unit linking failed for a mention.
    Link(String),
    /// The record contained a decoy token (`LPUI-1T`, `v2.5`, …) whose
    /// embedded number must not be treated as a quantity.
    Decoy(String),
    /// Problem generation failed for this record.
    Gen(String),
    /// The record exceeds [`MAX_RECORD_BYTES`].
    Oversized {
        /// Observed record size.
        bytes: usize,
        /// The cap that was exceeded.
        cap: usize,
    },
    /// The record's work item panicked (caught by `dim_par`'s isolation).
    Panicked(String),
}

impl RecordError {
    /// Stable kebab-case tag, used in quarantine manifests.
    pub fn kind(&self) -> &'static str {
        match self {
            RecordError::Kb(_) => "kb",
            RecordError::ExprParse(_) => "expr-parse",
            RecordError::Link(_) => "link",
            RecordError::Decoy(_) => "decoy",
            RecordError::Gen(_) => "gen",
            RecordError::Oversized { .. } => "oversized",
            RecordError::Panicked(_) => "panicked",
        }
    }
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Kb(e) => write!(f, "kb: {e}"),
            RecordError::ExprParse(s) => write!(f, "expr-parse: {s}"),
            RecordError::Link(s) => write!(f, "link: {s}"),
            RecordError::Decoy(s) => write!(f, "decoy: skipped record with decoy token {s:?}"),
            RecordError::Gen(s) => write!(f, "gen: {s}"),
            RecordError::Oversized { bytes, cap } => {
                write!(f, "oversized: record is {bytes} bytes (cap {cap})")
            }
            RecordError::Panicked(s) => write!(f, "panicked: {s}"),
        }
    }
}

impl std::error::Error for RecordError {}

impl From<KbError> for RecordError {
    fn from(e: KbError) -> RecordError {
        match e {
            KbError::ExprParse(s) => RecordError::ExprParse(s),
            other => RecordError::Kb(other),
        }
    }
}

/// The failure fraction a degraded batch may absorb before aborting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBudget {
    /// Maximum tolerated `failed / total` ratio in `[0, 1]`. A batch whose
    /// failure fraction strictly exceeds this aborts with [`BudgetExceeded`].
    pub max_error_rate: f64,
}

impl ErrorBudget {
    /// A budget tolerating `max_error_rate` failures.
    pub fn new(max_error_rate: f64) -> ErrorBudget {
        ErrorBudget { max_error_rate: max_error_rate.clamp(0.0, 1.0) }
    }

    /// Zero tolerance: any failed record aborts the batch.
    pub fn strict() -> ErrorBudget {
        ErrorBudget { max_error_rate: 0.0 }
    }
}

impl Default for ErrorBudget {
    /// One failed record in ten — generous for real corpora (observed clean
    /// failure rates are ~0) while still catching systemic breakage.
    fn default() -> ErrorBudget {
        ErrorBudget { max_error_rate: 0.10 }
    }
}

/// Typed abort raised when a batch's failure fraction exceeds its
/// [`ErrorBudget`] — the degraded-mode replacement for a panic.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetExceeded {
    /// The site whose batch blew the budget.
    pub site: String,
    /// Failed record count.
    pub failed: usize,
    /// Total record count.
    pub total: usize,
    /// The budget that was exceeded.
    pub max_error_rate: f64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error budget exceeded at {}: {}/{} records failed (max_error_rate {})",
            self.site, self.failed, self.total, self.max_error_rate
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// One quarantined record: where, which index, and why.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct QuarantineEntry {
    /// The batch site that skipped the record (e.g. `"mwp.gen.math23k"`).
    pub site: String,
    /// The record's input index within the batch.
    pub index: usize,
    /// Rendered [`RecordError`].
    pub error: String,
}

impl fmt::Display for QuarantineEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.site, self.index, self.error)
    }
}

/// The outcome of a degraded batch: positional results (`None` where a
/// record was quarantined, so un-faulted items can be compared slot-for-slot
/// against a clean run) plus the quarantine log.
#[derive(Debug, Clone, PartialEq)]
pub struct Degraded<U> {
    /// Slot `i` holds record `i`'s output, or `None` if it was quarantined.
    pub items: Vec<Option<U>>,
    /// One entry per quarantined record, in index order.
    pub quarantine: Vec<QuarantineEntry>,
}

impl<U> Degraded<U> {
    /// The surviving outputs, in input order.
    pub fn ok_items(self) -> Vec<U> {
        self.items.into_iter().flatten().collect()
    }

    /// Number of surviving records.
    pub fn ok_count(&self) -> usize {
        self.items.iter().filter(|s| s.is_some()).count()
    }

    /// Number of quarantined records.
    pub fn failed_count(&self) -> usize {
        self.quarantine.len()
    }
}

/// Folds per-record outcomes into a [`Degraded`] batch, enforcing `budget`.
///
/// The budget check runs once at batch end: `failed / total` strictly above
/// `max_error_rate` aborts. (An empty batch never aborts.)
pub fn collect_degraded<U>(
    site: &str,
    slots: impl IntoIterator<Item = Result<U, RecordError>>,
    budget: ErrorBudget,
) -> Result<Degraded<U>, BudgetExceeded> {
    let mut items = Vec::new();
    let mut quarantine = Vec::new();
    for (index, slot) in slots.into_iter().enumerate() {
        match slot {
            Ok(u) => items.push(Some(u)),
            Err(e) => {
                items.push(None);
                quarantine.push(QuarantineEntry {
                    site: site.to_string(),
                    index,
                    error: e.to_string(),
                });
            }
        }
    }
    let (failed, total) = (quarantine.len(), items.len());
    if total > 0 && failed as f64 > budget.max_error_rate * total as f64 {
        return Err(BudgetExceeded {
            site: site.to_string(),
            failed,
            total,
            max_error_rate: budget.max_error_rate,
        });
    }
    Ok(Degraded { items, quarantine })
}

/// Renders a deterministic quarantine manifest: entries sorted by
/// `(site, index)`, one `site[index]: error` line each.
pub fn manifest(entries: &[QuarantineEntry]) -> String {
    if entries.is_empty() {
        return "(no records quarantined)\n".to_string();
    }
    let mut sorted: Vec<&QuarantineEntry> = entries.iter().collect();
    sorted.sort();
    let mut out = String::new();
    for e in sorted {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

/// Enforces the degraded-mode record size cap.
pub fn guard_len(bytes: usize) -> Result<(), RecordError> {
    if bytes > MAX_RECORD_BYTES {
        return Err(RecordError::Oversized { bytes, cap: MAX_RECORD_BYTES });
    }
    Ok(())
}

/// The per-record chaos hook every `try_*` site calls once. With no active
/// [`dim_chaos::FaultPlan`] this is a single acquire atomic load. When a
/// fault fires it is realized *honestly*:
///
/// * `Panic` — panics (caught by `dim_par`'s per-item isolation);
/// * `MalformedExpr` — runs the real `dimkb::expr` parser on
///   [`dim_chaos::MALFORMED_EXPR`], returning the genuine parse error;
/// * `CorruptKb` — evaluates the nonexistent [`dim_chaos::CORRUPT_UNIT`]
///   code, returning the genuine `UnknownUnit` error;
/// * `Oversize` — fails the real [`guard_len`] size check.
pub fn inject(site: &'static str, index: usize) -> Result<(), RecordError> {
    let Some(kind) = dim_chaos::fault_at(site, index as u64) else {
        return Ok(());
    };
    match kind {
        dim_chaos::FaultKind::Panic => {
            // lint:allow(no_panic, deliberate chaos fault realization; every caller sits behind dim-par per-item isolation or the serve worker catch_unwind)
            panic!("{} at {site}[{index}]", dim_chaos::INJECTED_PANIC_PREFIX)
        }
        dim_chaos::FaultKind::MalformedExpr => {
            match crate::expr::eval(&crate::DimUnitKb::shared(), dim_chaos::MALFORMED_EXPR) {
                Err(e) => Err(RecordError::from(e)),
                Ok(_) => Ok(()), // unreachable: MALFORMED_EXPR never parses
            }
        }
        dim_chaos::FaultKind::CorruptKb => {
            match crate::expr::eval(&crate::DimUnitKb::shared(), dim_chaos::CORRUPT_UNIT) {
                Err(e) => Err(RecordError::Kb(e)),
                Ok(_) => Ok(()), // unreachable: the code exists in no KB
            }
        }
        dim_chaos::FaultKind::Oversize => guard_len(MAX_RECORD_BYTES + 1 + index),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_within_budget_preserves_positions() {
        let slots = vec![
            Ok(10),
            Err(RecordError::Gen("nope".into())),
            Ok(30),
            Err(RecordError::Oversized { bytes: 70_000, cap: MAX_RECORD_BYTES }),
            Ok(50),
        ];
        let d = collect_degraded("t.site", slots, ErrorBudget::new(0.5)).expect("within budget");
        assert_eq!(d.items, vec![Some(10), None, Some(30), None, Some(50)]);
        assert_eq!(d.ok_count(), 3);
        assert_eq!(d.failed_count(), 2);
        assert_eq!(d.quarantine[0].index, 1);
        assert_eq!(d.quarantine[1].index, 3);
        assert_eq!(d.clone().ok_items(), vec![10, 30, 50]);
        let m = manifest(&d.quarantine);
        assert!(m.starts_with("t.site[1]: gen: nope\n"), "manifest = {m}");
        assert!(m.contains("t.site[3]: oversized: record is 70000 bytes"));
    }

    #[test]
    fn budget_exceeded_is_typed() {
        let slots: Vec<Result<u32, RecordError>> =
            (0..10).map(|i| if i < 4 { Err(RecordError::Gen("x".into())) } else { Ok(i) }).collect();
        let err = collect_degraded("t.site", slots, ErrorBudget::new(0.3)).expect_err("4/10 > 0.3");
        assert_eq!(err.site, "t.site");
        assert_eq!(err.failed, 4);
        assert_eq!(err.total, 10);
        assert!(err.to_string().contains("4/10"));
    }

    #[test]
    fn strict_budget_rejects_any_failure_and_empty_batch_passes() {
        let ok: Vec<Result<u32, RecordError>> = vec![Ok(1), Ok(2)];
        assert!(collect_degraded("s", ok, ErrorBudget::strict()).is_ok());
        let one_bad = vec![Ok(1), Err(RecordError::Gen("x".into()))];
        assert!(collect_degraded("s", one_bad, ErrorBudget::strict()).is_err());
        let empty: Vec<Result<u32, RecordError>> = vec![];
        assert!(collect_degraded("s", empty, ErrorBudget::strict()).is_ok());
    }

    #[test]
    fn manifest_is_sorted_and_stable() {
        let entries = vec![
            QuarantineEntry { site: "b".into(), index: 2, error: "e".into() },
            QuarantineEntry { site: "a".into(), index: 9, error: "e".into() },
            QuarantineEntry { site: "a".into(), index: 1, error: "e".into() },
        ];
        assert_eq!(manifest(&entries), "a[1]: e\na[9]: e\nb[2]: e\n");
        assert_eq!(manifest(&[]), "(no records quarantined)\n");
    }

    #[test]
    fn guard_len_enforces_cap() {
        assert!(guard_len(100).is_ok());
        assert!(guard_len(MAX_RECORD_BYTES).is_ok());
        let err = guard_len(MAX_RECORD_BYTES + 1).expect_err("over cap");
        assert_eq!(err.kind(), "oversized");
    }

    #[test]
    fn inject_is_noop_without_plan() {
        // No plan installed in this process → every site is clean.
        for i in 0..100 {
            assert_eq!(inject("degrade.test", i), Ok(()));
        }
    }

    #[test]
    fn kb_error_conversion_separates_expr_parse() {
        let e: RecordError = KbError::ExprParse("bad".into()).into();
        assert_eq!(e.kind(), "expr-parse");
        let e: RecordError = KbError::UnknownUnit("frob".into()).into();
        assert_eq!(e.kind(), "kb");
    }

    #[test]
    fn chaos_payloads_fail_the_real_parser() {
        let kb = crate::DimUnitKb::shared();
        assert!(crate::expr::eval(&kb, dim_chaos::MALFORMED_EXPR).is_err());
        assert!(matches!(
            crate::expr::eval(&kb, dim_chaos::CORRUPT_UNIT),
            Err(KbError::UnknownUnit(_))
        ));
    }
}
