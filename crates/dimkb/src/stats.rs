//! Knowledge-base statistics: the data behind Table IV, Fig. 3 and Fig. 4
//! of the paper.

use crate::kb::DimUnitKb;
use crate::kind::KindId;
use crate::unit::UnitId;
use std::collections::HashSet;

/// Aggregate statistics of a knowledge base (the Table IV row format).
#[derive(Debug, Clone, PartialEq)]
pub struct KbStatistics {
    /// Number of units.
    pub units: usize,
    /// Number of quantity kinds actually used by at least one unit.
    pub quantity_kinds: usize,
    /// Number of distinct dimension vectors.
    pub dim_vectors: usize,
    /// Supported languages ("En" or "En&Zh").
    pub languages: &'static str,
    /// Whether the frequency feature is populated.
    pub has_frequency: bool,
}

/// Computes the Table IV statistics for a knowledge base.
pub fn statistics(kb: &DimUnitKb) -> KbStatistics {
    let mut kinds: HashSet<KindId> = HashSet::new();
    let mut dims = HashSet::new();
    let mut has_zh = false;
    let mut has_freq = false;
    for unit in kb.units() {
        kinds.insert(unit.kind);
        dims.insert(unit.dim);
        if !unit.label_zh.is_empty() {
            has_zh = true;
        }
        if unit.frequency > 0.0 {
            has_freq = true;
        }
    }
    KbStatistics {
        units: kb.units().len(),
        quantity_kinds: kinds.len(),
        dim_vectors: dims.len(),
        languages: if has_zh { "En&Zh" } else { "En" },
        has_frequency: has_freq,
    }
}

/// The `k` most frequent units (Fig. 3): `(unit, frequency)` descending.
pub fn top_units(kb: &DimUnitKb, k: usize) -> Vec<(UnitId, f64)> {
    let mut all: Vec<(UnitId, f64)> = kb.units().iter().map(|u| (u.id, u.frequency)).collect();
    all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    all.truncate(k);
    all
}

/// Frequency of a quantity kind: the mean frequency of its top-five units
/// (the paper's Fig. 4 definition). `None` if the kind has no units.
pub fn kind_frequency(kb: &DimUnitKb, kind: KindId) -> Option<f64> {
    let ids = kb.units_of_kind(kind);
    if ids.is_empty() {
        return None;
    }
    let mut freqs: Vec<f64> = ids.iter().map(|&id| kb.unit(id).frequency).collect();
    freqs.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    freqs.truncate(5);
    Some(freqs.iter().sum::<f64>() / freqs.len() as f64)
}

/// One row of the Fig. 4 payload: a kind, its aggregate frequency, and its
/// top-five units with their frequencies.
pub type KindFrequencyRow = (KindId, f64, Vec<(UnitId, f64)>);

/// The `k` most frequent quantity kinds and, for each, its top-five units
/// with their frequencies (the full Fig. 4 payload).
pub fn top_kinds(kb: &DimUnitKb, k: usize) -> Vec<KindFrequencyRow> {
    let mut rows: Vec<(KindId, f64)> = kb
        .kinds()
        .iter()
        .filter_map(|kind| kind_frequency(kb, kind.id).map(|f| (kind.id, f)))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    rows.truncate(k);
    rows.into_iter()
        .map(|(kid, f)| {
            let mut units: Vec<(UnitId, f64)> = kb
                .units_of_kind(kid)
                .iter()
                .map(|&id| (id, kb.unit(id).frequency))
                .collect();
            units.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            units.truncate(5);
            (kid, f, units)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_statistics_shape() {
        let kb = DimUnitKb::shared();
        let s = statistics(&kb);
        assert!(s.units >= 900);
        assert!(s.quantity_kinds >= 70);
        assert!(s.dim_vectors >= 50);
        assert_eq!(s.languages, "En&Zh");
        assert!(s.has_frequency);
    }

    #[test]
    fn dimunitkb_dominates_wolfram_and_uom_scale() {
        // Table IV shape: DimUnitKB(1778) > WolframAlpha(540) > UoM(76).
        let kb = DimUnitKb::shared();
        let s = statistics(&kb);
        assert!(s.units > 540, "must exceed the WolframAlpha unit count");
    }

    #[test]
    fn top_units_sorted_descending() {
        let kb = DimUnitKb::shared();
        let top = top_units(&kb, 20);
        assert_eq!(top.len(), 20);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn kind_frequency_uses_top_five() {
        let kb = DimUnitKb::shared();
        let length = kb.kind_by_name("Length").unwrap();
        let f = kind_frequency(&kb, length.id).unwrap();
        assert!(f > 0.5, "length units are common, got {f}");
    }

    #[test]
    fn top_kinds_come_with_units() {
        let kb = DimUnitKb::shared();
        let rows = top_kinds(&kb, 14);
        assert_eq!(rows.len(), 14);
        for (_, freq, units) in &rows {
            assert!(!units.is_empty());
            assert!(*freq <= 1.0 + 1e-9);
            for w in units.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }
}
