//! The unit record: the full `DimUnitKB` schema of Table II.

use crate::dim::DimVec;
use crate::kind::KindId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a unit inside a [`crate::DimUnitKb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UnitId(pub u32);

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U{}", self.0)
    }
}

/// Affine conversion to the SI-coherent unit of the same dimension:
/// `si_value = value * factor + offset`.
///
/// `offset` is non-zero only for the relative temperature scales
/// (°C, °F, °Ré); such units cannot appear inside compound unit
/// expressions (the usual SI rule).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Conversion {
    /// Multiplicative factor to the coherent SI unit.
    pub factor: f64,
    /// Additive offset to the coherent SI unit (0 for almost all units).
    pub offset: f64,
}

impl Conversion {
    /// A purely multiplicative conversion.
    pub const fn linear(factor: f64) -> Self {
        Conversion { factor, offset: 0.0 }
    }

    /// An affine conversion (temperature scales).
    pub const fn affine(factor: f64, offset: f64) -> Self {
        Conversion { factor, offset }
    }

    /// True iff this conversion has a non-zero offset.
    pub fn is_affine(&self) -> bool {
        self.offset != 0.0
    }

    /// Converts a value in this unit to the coherent SI unit.
    pub fn to_si(&self, value: f64) -> f64 {
        value * self.factor + self.offset
    }

    /// Converts a value in the coherent SI unit to this unit.
    pub fn from_si(&self, si_value: f64) -> f64 {
        (si_value - self.offset) / self.factor
    }
}

/// A unit record as stored in `DimUnitKB` (Table II of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Unit {
    /// `UnitID`: stable index within the knowledge base.
    pub id: UnitId,
    /// QUDT-style identifier code, e.g. `DYN-PER-CentiM`.
    pub code: String,
    /// `Label_en`: English name, e.g. `dyne per centimetre`.
    pub label_en: String,
    /// `Label_zh`: Chinese name, e.g. `达因每厘米`.
    pub label_zh: String,
    /// `Symbol`: symbolic expression, e.g. `dyn/cm`.
    pub symbol: String,
    /// `Alias`: alternative textual expressions.
    pub aliases: Vec<String>,
    /// `Description`: a descriptive text for the unit.
    pub description: String,
    /// `Keywords`: descriptive keywords used by context-based linking.
    pub keywords: Vec<String>,
    /// `Frequency`: commonness in real-world text, in `[δ, 1]` (Eq. 2).
    pub frequency: f64,
    /// `QuantityKind`: the kind of quantity this unit measures.
    pub kind: KindId,
    /// `DimensionVec`: the dimension vector of this unit.
    pub dim: DimVec,
    /// `ConversionVal`: the conversion to the coherent SI unit.
    pub conversion: Conversion,
    /// True if this unit was produced by SI-prefix expansion of a base
    /// record rather than curated directly.
    pub prefixed: bool,
}

impl Unit {
    /// All surface forms under which this unit may be mentioned in text:
    /// English label, Chinese label, symbol, and every alias.
    pub fn surface_forms(&self) -> impl Iterator<Item = &str> {
        std::iter::once(self.label_en.as_str())
            .chain(std::iter::once(self.label_zh.as_str()))
            .chain(std::iter::once(self.symbol.as_str()))
            .chain(self.aliases.iter().map(String::as_str))
            .filter(|s| !s.is_empty())
    }

    /// Magnitude of the unit relative to the coherent SI unit, ignoring
    /// offsets (used by the magnitude-comparison task).
    pub fn magnitude(&self) -> f64 {
        self.conversion.factor
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.label_en, self.symbol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::{Base, DimVec};

    fn sample() -> Unit {
        Unit {
            id: UnitId(7),
            code: "CentiM".into(),
            label_en: "centimetre".into(),
            label_zh: "厘米".into(),
            symbol: "cm".into(),
            aliases: vec!["centimeter".into(), "公分".into()],
            description: "one hundredth of a metre".into(),
            keywords: vec!["length".into()],
            frequency: 0.9,
            kind: KindId(0),
            dim: DimVec::base(Base::Length),
            conversion: Conversion::linear(0.01),
            prefixed: true,
        }
    }

    #[test]
    fn linear_conversion_roundtrip() {
        let c = Conversion::linear(0.01);
        assert!((c.to_si(250.0) - 2.5).abs() < 1e-12);
        assert!((c.from_si(2.5) - 250.0).abs() < 1e-12);
        assert!(!c.is_affine());
    }

    #[test]
    fn affine_conversion_celsius() {
        let celsius = Conversion::affine(1.0, 273.15);
        assert!((celsius.to_si(25.0) - 298.15).abs() < 1e-9);
        assert!((celsius.from_si(273.15) - 0.0).abs() < 1e-9);
        assert!(celsius.is_affine());
    }

    #[test]
    fn affine_conversion_fahrenheit() {
        let f = Conversion::affine(5.0 / 9.0, 459.67 * 5.0 / 9.0);
        assert!((f.to_si(32.0) - 273.15).abs() < 1e-9);
        assert!((f.to_si(212.0) - 373.15).abs() < 1e-9);
    }

    #[test]
    fn surface_forms_cover_all_representations() {
        let u = sample();
        let forms: Vec<&str> = u.surface_forms().collect();
        assert_eq!(forms, vec!["centimetre", "厘米", "cm", "centimeter", "公分"]);
    }

    #[test]
    fn display_and_magnitude() {
        let u = sample();
        assert_eq!(u.to_string(), "centimetre (cm)");
        assert!((u.magnitude() - 0.01).abs() < 1e-15);
    }
}
