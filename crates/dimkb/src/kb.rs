//! `DimUnitKB`: the dimensional unit knowledge base (§III-A of the paper).

use crate::data;
use crate::dim::DimVec;
use crate::error::KbError;
use crate::freq::{frequencies, PopularitySource, SyntheticPopularity};
use crate::kind::{KindId, QuantityKind};
use crate::prefix::SI_PREFIXES;
use crate::spec::{KindSpec, UnitSpec};
use crate::unit::{Conversion, Unit, UnitId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// The dimensional unit knowledge base.
///
/// Stores every [`Unit`] with the full Table II schema, the
/// [`QuantityKind`] taxonomy, and the derived indexes used throughout the
/// framework: the *naming dictionary* (surface form → candidate units) that
/// powers unit linking, plus kind and dimension indexes.
///
/// # Examples
///
/// ```
/// use dimkb::DimUnitKb;
///
/// let kb = DimUnitKb::shared();
/// let poundal = kb.unit_by_code("PDL").expect("curated");
/// let dyn_per_cm = kb.unit_by_code("DYN-PER-CentiM").expect("curated");
/// // The Fig. 1 unit trap: poundal (LMT⁻²) is NOT comparable to dyn/cm (MT⁻²).
/// assert!(!poundal.dim.comparable(dyn_per_cm.dim));
/// ```
#[derive(Debug, Clone)]
pub struct DimUnitKb {
    units: Vec<Unit>,
    kinds: Vec<QuantityKind>,
    by_code: HashMap<String, UnitId>,
    kind_by_name: HashMap<String, KindId>,
    pub(crate) naming: HashMap<String, Vec<UnitId>>,
    pub(crate) naming_cased: HashMap<String, Vec<UnitId>>,
    by_kind: HashMap<KindId, Vec<UnitId>>,
    by_dim: HashMap<DimVec, Vec<UnitId>>,
    /// Inverted token→unit index for free-text search, built lazily on the
    /// first [`crate::search::search`] call against this KB.
    search_index: OnceLock<crate::search::SearchIndex>,
    /// Interned link index (symbol tables + fuzzy prefilter buckets), built
    /// lazily on the first [`DimUnitKb::link_index`] call against this KB.
    link_index: OnceLock<crate::intern::LinkIndex>,
}

static STANDARD: OnceLock<Arc<DimUnitKb>> = OnceLock::new();

impl DimUnitKb {
    /// Builds the standard knowledge base from the curated tables in
    /// [`crate::data`], with SI-prefix expansion and Eq. 1–2 frequency
    /// scoring.
    pub fn standard() -> Self {
        Self::from_specs(data::all_kinds(), &data::all_units(), &SyntheticPopularity)
    }

    /// A process-wide shared copy of [`DimUnitKb::standard`].
    pub fn shared() -> Arc<Self> {
        STANDARD.get_or_init(|| Arc::new(Self::standard())).clone()
    }

    /// Builds a knowledge base from explicit specifications.
    pub fn from_specs(
        kinds: &[KindSpec],
        units: &[&UnitSpec],
        popularity: &dyn PopularitySource,
    ) -> Self {
        let mut builder = Builder::default();
        for spec in kinds {
            builder.add_kind_family(spec);
        }
        for spec in units {
            builder.add_curated(spec);
        }
        builder.expand_prefixes();
        builder.expand_rates();
        builder.finish(popularity)
    }

    /// A sub-knowledge-base containing only the units accepted by `keep`
    /// (kinds are retained in full so `KindId`s remain stable). Frequencies
    /// are preserved from the parent. Used for the WolframAlpha / UoM
    /// comparison subsets and for the degraded views of simulated models.
    pub fn subset(&self, mut keep: impl FnMut(&Unit) -> bool) -> Self {
        let mut kb = DimUnitKb {
            units: Vec::new(),
            kinds: self.kinds.clone(),
            by_code: HashMap::new(),
            kind_by_name: self.kind_by_name.clone(),
            naming: HashMap::new(),
            naming_cased: HashMap::new(),
            by_kind: HashMap::new(),
            by_dim: HashMap::new(),
            search_index: OnceLock::new(),
            link_index: OnceLock::new(),
        };
        for unit in &self.units {
            if keep(unit) {
                let mut u = unit.clone();
                u.id = UnitId(kb.units.len() as u32);
                kb.index_unit(&u);
                kb.units.push(u);
            }
        }
        kb
    }

    fn index_unit(&mut self, unit: &Unit) {
        self.by_code.insert(unit.code.clone(), unit.id);
        self.by_kind.entry(unit.kind).or_default().push(unit.id);
        self.by_dim.entry(unit.dim).or_default().push(unit.id);
        for form in unit.surface_forms() {
            let entry = self.naming.entry(normalize(form)).or_default();
            if !entry.contains(&unit.id) {
                entry.push(unit.id);
            }
            // Case-exact index: symbols distinguish mW from MW and t from T.
            let entry = self.naming_cased.entry(normalize_cased(form)).or_default();
            if !entry.contains(&unit.id) {
                entry.push(unit.id);
            }
        }
    }

    /// The unit with the given id. Panics on a foreign id — ids are only
    /// produced by this KB's own queries.
    pub fn unit(&self, id: UnitId) -> &Unit {
        &self.units[id.0 as usize]
    }

    /// The kind with the given id.
    pub fn kind(&self, id: KindId) -> &QuantityKind {
        &self.kinds[id.0 as usize]
    }

    /// All units.
    pub fn units(&self) -> &[Unit] {
        &self.units
    }

    /// All quantity kinds.
    pub fn kinds(&self) -> &[QuantityKind] {
        &self.kinds
    }

    /// Looks up a unit by its stable code.
    pub fn unit_by_code(&self, code: &str) -> Option<&Unit> {
        self.by_code.get(code).map(|&id| self.unit(id))
    }

    /// Looks up a quantity kind by its English name.
    pub fn kind_by_name(&self, name: &str) -> Option<&QuantityKind> {
        self.kind_by_name.get(name).map(|&id| self.kind(id))
    }

    /// Naming-dictionary lookup. A case-exact match wins (so `mW` and `MW`
    /// stay distinct); otherwise the lookup falls back to the
    /// case-insensitive index. Returns every unit the surface form may
    /// refer to.
    pub fn lookup(&self, surface: &str) -> &[UnitId] {
        if let Some(ids) = self.naming_cased.get(&normalize_cased(surface)) {
            return ids;
        }
        self.naming.get(&normalize(surface)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over the whole naming dictionary (normalized surface form →
    /// candidate units). This is the retrieval source for candidate
    /// generation in unit linking.
    pub fn naming_dictionary(&self) -> impl Iterator<Item = (&str, &[UnitId])> {
        self.naming.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Units measuring the given kind.
    pub fn units_of_kind(&self, kind: KindId) -> &[UnitId] {
        self.by_kind.get(&kind).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Units with exactly the given dimension.
    pub fn units_with_dim(&self, dim: DimVec) -> &[UnitId] {
        self.by_dim.get(&dim).map(Vec::as_slice).unwrap_or(&[])
    }

    // ---- Dimension-resolution helpers (dim-verify) ------------------------
    //
    // The solution checker needs to go straight from a unit code or a
    // surface form to a dimension vector / linear SI scale, without
    // materializing the `Unit` record at every equation leaf.

    /// The dimension vector of a unit code; `None` for unknown codes.
    pub fn dim_of_code(&self, code: &str) -> Option<DimVec> {
        self.unit_by_code(code).map(|u| u.dim)
    }

    /// The multiplicative SI factor of a unit code; `None` for unknown
    /// codes and for affine conversions (temperature scales have no
    /// single factor).
    pub fn linear_scale_of_code(&self, code: &str) -> Option<f64> {
        self.unit_by_code(code)
            .filter(|u| !u.conversion.is_affine())
            .map(|u| u.conversion.factor)
    }

    /// The dimension vector a surface form resolves to through the
    /// naming dictionary (first candidate, in dictionary preference
    /// order); `None` for unknown surfaces.
    pub fn dim_of_surface(&self, surface: &str) -> Option<DimVec> {
        self.lookup(surface).first().map(|&id| self.unit(id).dim)
    }

    /// The multiplicative SI factor a surface form resolves to (first
    /// candidate); `None` for unknown surfaces and affine conversions.
    pub fn linear_scale_of_surface(&self, surface: &str) -> Option<f64> {
        self.lookup(surface)
            .first()
            .map(|&id| self.unit(id))
            .filter(|u| !u.conversion.is_affine())
            .map(|u| u.conversion.factor)
    }

    /// The full kind index, for snapshot emission.
    pub(crate) fn by_kind_map(&self) -> &HashMap<KindId, Vec<UnitId>> {
        &self.by_kind
    }

    /// The full dimension index, for snapshot emission.
    pub(crate) fn by_dim_map(&self) -> &HashMap<DimVec, Vec<UnitId>> {
        &self.by_dim
    }

    /// All distinct dimension vectors present in the KB.
    pub fn dimensions(&self) -> impl Iterator<Item = DimVec> + '_ {
        self.by_dim.keys().copied()
    }

    /// Whether two units share a dimension (the dimension law).
    pub fn comparable(&self, a: UnitId, b: UnitId) -> bool {
        self.unit(a).dim == self.unit(b).dim
    }

    /// Converts `value` from one unit to another, honouring affine
    /// (temperature) conversions. Fails on a dimension mismatch.
    pub fn convert(&self, value: f64, from: UnitId, to: UnitId) -> Result<f64, KbError> {
        let (f, t) = (self.unit(from), self.unit(to));
        if f.dim != t.dim {
            return Err(KbError::DimensionMismatch { from: f.dim, to: t.dim });
        }
        Ok(t.conversion.from_si(f.conversion.to_si(value)))
    }

    /// The multiplicative factor β of the unit-conversion task (Def. 8):
    /// `value[from] × β = value[to]`. Affine units have no single factor and
    /// are rejected.
    pub fn conversion_factor(&self, from: UnitId, to: UnitId) -> Result<f64, KbError> {
        let (f, t) = (self.unit(from), self.unit(to));
        if f.dim != t.dim {
            return Err(KbError::DimensionMismatch { from: f.dim, to: t.dim });
        }
        if f.conversion.is_affine() {
            return Err(KbError::AffineInCompound(f.label_en.clone()));
        }
        if t.conversion.is_affine() {
            return Err(KbError::AffineInCompound(t.label_en.clone()));
        }
        Ok(f.conversion.factor / t.conversion.factor)
    }

    /// The inverted search index for this KB, built on first use. Clones
    /// carry the already-built index; `subset`/`from_json` start empty.
    pub(crate) fn search_index(&self) -> &crate::search::SearchIndex {
        self.search_index.get_or_init(|| crate::search::SearchIndex::build(self))
    }

    /// The interned link index for this KB (symbol tables over both naming
    /// dictionaries plus the length-bucketed fuzzy prefilter), built on
    /// first use and shared by every linker over this KB. Like
    /// `search_index`, clones carry the already-built index.
    pub fn link_index(&self) -> &crate::intern::LinkIndex {
        self.link_index.get_or_init(|| crate::intern::LinkIndex::build(self))
    }

    /// Serializes the KB to a JSON snapshot.
    pub fn to_json(&self) -> String {
        let snap = KbSnapshot { kinds: &self.kinds, units: &self.units };
        serde_json::to_string(&snap).expect("KB records always serialize")
    }

    /// Restores a KB from a JSON snapshot produced by [`Self::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let snap: KbSnapshotOwned = serde_json::from_str(json)?;
        let mut kb = DimUnitKb {
            units: Vec::with_capacity(snap.units.len()),
            kinds: snap.kinds,
            by_code: HashMap::new(),
            kind_by_name: HashMap::new(),
            naming: HashMap::new(),
            naming_cased: HashMap::new(),
            by_kind: HashMap::new(),
            by_dim: HashMap::new(),
            search_index: OnceLock::new(),
            link_index: OnceLock::new(),
        };
        for (i, kind) in kb.kinds.iter().enumerate() {
            kb.kind_by_name.insert(kind.name_en.clone(), KindId(i as u32));
        }
        for unit in snap.units {
            kb.index_unit(&unit);
            kb.units.push(unit);
        }
        Ok(kb)
    }

    /// Serializes this KB — records *and* every derived index, including
    /// the interned [`crate::intern::LinkIndex`] — into the versioned
    /// binary snapshot format of [`crate::snap`]. Emission is
    /// deterministic: the same KB always produces byte-identical output.
    pub fn to_snapshot(&self) -> Vec<u8> {
        crate::snap::emit(self)
    }

    /// Opens a binary snapshot produced by [`Self::to_snapshot`]. The
    /// returned handle validates the buffer (magic, version, bounds,
    /// checksum) in microseconds; the full KB materializes lazily on first
    /// access *by decoding* the stored indexes — nothing is re-derived.
    pub fn from_snapshot(bytes: Vec<u8>) -> Result<crate::snap::SnapKb, crate::snap::SnapError> {
        crate::snap::SnapKb::load(bytes)
    }

    /// A process-wide KB decoded from an in-memory snapshot of
    /// [`DimUnitKb::standard`]. Tests and benches that exercise the
    /// snapshot path share this copy the way [`DimUnitKb::shared`] shares
    /// the built one — and because both sides are differentially tested
    /// equal, they are interchangeable.
    pub fn shared_snap() -> Arc<Self> {
        static SNAP: OnceLock<Arc<DimUnitKb>> = OnceLock::new();
        SNAP.get_or_init(|| {
            let bytes = DimUnitKb::shared().to_snapshot();
            let snap = crate::snap::SnapKb::load(bytes)
                .expect("snapshot of the standard KB always validates");
            Arc::new(snap.into_kb().expect("snapshot of the standard KB always decodes"))
        })
        .clone()
    }

    /// Assembles a KB from snapshot-decoded parts (the `dimkb::snap` load
    /// path). `naming`/`naming_cased`/`by_kind`/`by_dim` arrive as decoded
    /// pair lists; the trivial code/kind-name maps are rebuilt from the
    /// records themselves (pure deserialization — no normalization,
    /// sorting, or scoring runs here). `link_index` is pre-seeded so the
    /// first link call decodes nothing.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        units: Vec<Unit>,
        kinds: Vec<QuantityKind>,
        naming: HashMap<String, Vec<UnitId>>,
        naming_cased: HashMap<String, Vec<UnitId>>,
        by_kind: HashMap<KindId, Vec<UnitId>>,
        by_dim: HashMap<DimVec, Vec<UnitId>>,
        link_index: crate::intern::LinkIndex,
    ) -> Self {
        let by_code = units.iter().map(|u| (u.code.clone(), u.id)).collect();
        let kind_by_name =
            kinds.iter().map(|k| (k.name_en.clone(), k.id)).collect();
        let kb = DimUnitKb {
            units,
            kinds,
            by_code,
            kind_by_name,
            naming,
            naming_cased,
            by_kind,
            by_dim,
            search_index: OnceLock::new(),
            link_index: OnceLock::new(),
        };
        let _ = kb.link_index.set(link_index);
        kb
    }
}

#[derive(Serialize)]
struct KbSnapshot<'a> {
    kinds: &'a [QuantityKind],
    units: &'a [Unit],
}

#[derive(Deserialize)]
struct KbSnapshotOwned {
    kinds: Vec<QuantityKind>,
    units: Vec<Unit>,
}

/// Whitespace-normalizes a surface form, preserving case (the case-exact
/// naming-dictionary key).
pub fn normalize_cased(surface: &str) -> String {
    let mut out = String::with_capacity(surface.len());
    normalize_cased_into(surface, &mut out);
    out
}

/// [`normalize_cased`] into a caller-provided buffer (cleared first), so hot
/// paths can normalize without allocating. Returns the buffer's contents.
pub fn normalize_cased_into<'a>(surface: &str, out: &'a mut String) -> &'a str {
    out.clear();
    let mut last_space = true;
    for c in surface.trim().chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(c);
            last_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Normalizes a surface form for case-insensitive naming-dictionary lookup.
pub fn normalize(surface: &str) -> String {
    let mut out = String::with_capacity(surface.len());
    normalize_into(surface, &mut out);
    out
}

/// [`normalize`] into a caller-provided buffer (cleared first). Returns the
/// buffer's contents.
pub fn normalize_into<'a>(surface: &str, out: &'a mut String) -> &'a str {
    out.clear();
    let mut last_space = true;
    for c in surface.trim().chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.extend(c.to_lowercase());
            last_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

#[derive(Default)]
struct Builder {
    kinds: Vec<QuantityKind>,
    kind_by_name: HashMap<String, KindId>,
    /// (unit-without-frequency, base popularity, prefixable)
    pending: Vec<(Unit, f64, bool)>,
    codes: HashMap<String, usize>,
}

impl Builder {
    fn add_kind_family(&mut self, spec: &KindSpec) {
        let dim = DimVec::parse(spec.dim).unwrap_or_else(|e| {
            // lint:allow(no_panic, KIND_SPECS dimensions are curated constants parsed once per process; a bad literal is a compile-time-class data bug caught by the kb tests)
            panic!("kind {} has invalid dimension {:?}: {e}", spec.name_en, spec.dim)
        });
        self.add_kind(spec.name_en, spec.name_zh, dim);
        for (en, zh) in spec.narrow {
            self.add_kind(en, zh, dim);
        }
    }

    fn add_kind(&mut self, en: &str, zh: &str, dim: DimVec) {
        let id = KindId(self.kinds.len() as u32);
        self.kinds.push(QuantityKind { id, name_en: en.to_string(), name_zh: zh.to_string(), dim });
        self.kind_by_name.insert(en.to_string(), id);
    }

    fn kind_id(&self, name: &str) -> KindId {
        *self
            .kind_by_name
            .get(name)
            // lint:allow(no_panic, unit specs and kind specs are curated constants registered together at build time; a dangling kind name is a data bug the kb tests catch, not a runtime input)
            .unwrap_or_else(|| panic!("unit references unknown kind {name:?}"))
    }

    fn add_curated(&mut self, spec: &UnitSpec) {
        let kind_id = self.kind_id(spec.kind);
        let kind = &self.kinds[kind_id.0 as usize];
        let mut keywords: Vec<String> = kind.words();
        keywords.extend(spec.kw.iter().map(|s| s.to_string()));
        let description = if spec.desc.is_empty() {
            default_description(spec.en, &kind.name_en, spec.factor, spec.offset)
        } else {
            spec.desc.to_string()
        };
        let unit = Unit {
            id: UnitId(0), // assigned in finish()
            code: spec.code.to_string(),
            label_en: spec.en.to_string(),
            label_zh: spec.zh.to_string(),
            symbol: spec.sym.to_string(),
            aliases: spec.aliases.iter().map(|s| s.to_string()).collect(),
            description,
            keywords,
            frequency: 0.0, // assigned in finish()
            kind: kind_id,
            dim: kind.dim,
            conversion: Conversion::affine(spec.factor, spec.offset),
            prefixed: false,
        };
        self.push_unit(unit, spec.pop, spec.prefixable);
    }

    fn push_unit(&mut self, unit: Unit, pop: f64, prefixable: bool) {
        if self.codes.insert(unit.code.clone(), self.pending.len()).is_some() {
            // lint:allow(no_panic, unit codes come from the curated spec tables; a collision is a build-time data bug the kb uniqueness tests catch, not a runtime input)
            panic!("duplicate unit code {:?}", unit.code);
        }
        self.pending.push((unit, pop, prefixable));
    }

    /// Expands every prefixable curated unit with the 20 SI prefixes,
    /// mirroring how QUDT reaches its unit count. The prefixed unit's
    /// popularity is the base popularity scaled by the prefix commonness —
    /// producing the paper's "centimetre frequent, decimetre rare" pattern.
    fn expand_prefixes(&mut self) {
        let prefixable: Vec<(Unit, f64)> = self
            .pending
            .iter()
            .filter(|(_, _, p)| *p)
            .map(|(u, pop, _)| (u.clone(), *pop))
            .collect();
        for (base, base_pop) in prefixable {
            for prefix in SI_PREFIXES {
                let code = format!("{}{}", capitalize(prefix.name_en), base.code);
                if self.codes.contains_key(&code) {
                    continue;
                }
                let label_en = format!("{}{}", prefix.name_en, base.label_en);
                let label_zh = format!("{}{}", prefix.name_zh, base.label_zh);
                let symbol = format!("{}{}", prefix.symbol, base.symbol);
                let mut aliases: Vec<String> = base
                    .aliases
                    .iter()
                    .filter(|a| !a.contains(' ') && a.is_ascii())
                    .map(|a| format!("{}{}", prefix.name_en, a))
                    .collect();
                if symbol.contains('µ') {
                    aliases.push(symbol.replace('µ', "u"));
                }
                let mut keywords = base.keywords.clone();
                keywords.push(prefix.name_en.to_string());
                let factor = base.conversion.factor * prefix.factor();
                let unit = Unit {
                    id: UnitId(0),
                    code,
                    label_en,
                    label_zh,
                    symbol,
                    aliases,
                    description: format!(
                        "{} {} ({}× the {})",
                        prefix.name_en,
                        base.label_en,
                        format_factor(prefix.factor()),
                        base.label_en
                    ),
                    keywords,
                    frequency: 0.0,
                    kind: base.kind,
                    dim: base.dim,
                    conversion: Conversion::linear(factor),
                    prefixed: true,
                };
                let pop = (base_pop * prefix.commonness).max(0.05);
                self.push_unit(unit, pop, false);
            }
        }
    }

    /// Expands common stock/flow units into per-time rate units
    /// (litre → litre per minute), the other big QUDT growth pattern.
    /// Collisions with curated codes are skipped; dimensions that no kind
    /// covers are skipped too.
    fn expand_rates(&mut self) {
        const RATE_BASES: &[&str] = &[
            "L", "MilliL", "MicroL", "MegaL", "M3", "CM3", "GM", "KiloGM", "TONNE",
            "MilliGM", "MicroGM", "M", "KiloM", "CentiM", "MilliM", "MI", "FT", "MOL",
            "MilliMOL", "MicroMOL", "J", "KiloJ", "KiloCAL", "KiloWH", "BIT", "KiloBIT",
            "MegaBIT", "GigaBIT", "BYTE", "KiloBYTE", "MegaBYTE", "GigaBYTE", "TeraBYTE",
            "GAL-US", "FT3", "REV", "RAD-ANGLE", "DEG-ANGLE", "C", "KiloGM-PER-M3",
        ];
        const RATE_TIMES: &[(&str, f64)] = &[
            ("SEC", 1.0),
            ("MIN", 60.0),
            ("HR", 3600.0),
            ("DAY", 86_400.0),
            ("WK", 604_800.0),
            ("YR", 31_557_600.0),
        ];
        // Non-time denominators of the same QUDT growth family:
        // per-area (yield, flux), per-mass (specific X), per-mole (molar X),
        // per-distance (consumption, fares).
        const OTHER_DENOMS: &[&str] = &["M2", "KiloGM", "MOL", "HA", "L", "KiloM"];
        const OTHER_NUMERATORS: &[&str] = &[
            "W", "J", "KiloJ", "N", "LM", "GM", "KiloGM", "TONNE", "L", "MilliL", "MOL",
            "MilliGM", "KiloWH", "KiloCAL", "M3",
        ];
        // Dimension → kind index for assigning generated units.
        let mut kind_by_dim: HashMap<DimVec, KindId> = HashMap::new();
        for kind in &self.kinds {
            kind_by_dim.entry(kind.dim).or_insert(kind.id);
        }
        let snapshot: Vec<(Unit, f64)> = self
            .pending
            .iter()
            .filter(|(u, _, _)| RATE_BASES.contains(&u.code.as_str()))
            .map(|(u, pop, _)| (u.clone(), *pop))
            .collect();
        let times: Vec<(Unit, f64, f64)> = self
            .pending
            .iter()
            .filter_map(|(u, pop, _)| {
                RATE_TIMES
                    .iter()
                    .find(|(c, _)| *c == u.code)
                    .map(|(_, secs)| (u.clone(), *pop, *secs))
            })
            .collect();
        let other_pairs: Vec<(Unit, f64, Unit, f64)> = {
            let numerators: Vec<(Unit, f64)> = self
                .pending
                .iter()
                .filter(|(u, _, _)| OTHER_NUMERATORS.contains(&u.code.as_str()))
                .map(|(u, pop, _)| (u.clone(), *pop))
                .collect();
            let denominators: Vec<(Unit, f64)> = self
                .pending
                .iter()
                .filter(|(u, _, _)| OTHER_DENOMS.contains(&u.code.as_str()))
                .map(|(u, pop, _)| (u.clone(), *pop))
                .collect();
            numerators
                .iter()
                .flat_map(|(n, np)| {
                    denominators.iter().map(move |(d, dp)| (n.clone(), *np, d.clone(), *dp))
                })
                .collect()
        };
        // Existing Chinese labels guard against semantic duplicates
        // (the curated t/h would otherwise reappear as TONNE-PER-HR).
        let existing_zh: std::collections::HashSet<String> =
            self.pending.iter().map(|(u, _, _)| u.label_zh.clone()).collect();
        for (base, base_pop) in snapshot {
            for (time, time_pop, secs) in &times {
                let code = format!("{}-PER-{}", base.code, time.code);
                if self.codes.contains_key(&code) {
                    continue;
                }
                let label_zh = format!("{}每{}", base.label_zh, time.label_zh);
                if existing_zh.contains(&label_zh) {
                    continue;
                }
                let dim = base.dim / time.dim;
                let Some(&kind) = kind_by_dim.get(&dim) else { continue };
                let unit = Unit {
                    id: UnitId(0),
                    code,
                    label_en: format!("{} per {}", base.label_en, time.label_en),
                    label_zh,
                    symbol: format!("{}/{}", base.symbol, time.symbol),
                    aliases: Vec::new(),
                    description: format!(
                        "{} per {}: a rate of {}",
                        base.label_en,
                        time.label_en,
                        self.kinds[kind.0 as usize].name_en
                    ),
                    keywords: {
                        let mut kw = self.kinds[kind.0 as usize].name_en
                            .chars()
                            .collect::<String>()
                            .to_lowercase()
                            .split_whitespace()
                            .map(str::to_string)
                            .collect::<Vec<_>>();
                        kw.push("rate".to_string());
                        kw.push("per".to_string());
                        kw
                    },
                    frequency: 0.0,
                    kind,
                    dim,
                    conversion: Conversion::linear(base.conversion.factor / secs),
                    prefixed: false,
                };
                let pop = (base_pop.min(*time_pop) * 0.2).max(0.05);
                self.push_unit(unit, pop, false);
            }
        }
        for (num, num_pop, den, den_pop) in other_pairs {
            if num.code == den.code {
                continue;
            }
            let code = format!("{}-PER-{}", num.code, den.code);
            if self.codes.contains_key(&code) {
                continue;
            }
            let label_zh = format!("{}每{}", num.label_zh, den.label_zh);
            if existing_zh.contains(&label_zh) {
                continue;
            }
            let dim = num.dim / den.dim;
            let Some(&kind) = kind_by_dim.get(&dim) else { continue };
            if dim.is_dimensionless() {
                continue; // L per L etc. degenerate to ratios
            }
            let unit = Unit {
                id: UnitId(0),
                code,
                label_en: format!("{} per {}", num.label_en, den.label_en),
                label_zh,
                symbol: format!("{}/{}", num.symbol, den.symbol),
                aliases: Vec::new(),
                description: format!(
                    "{} per {}: a {}",
                    num.label_en,
                    den.label_en,
                    self.kinds[kind.0 as usize].name_en
                ),
                keywords: {
                    let mut kw: Vec<String> = self.kinds[kind.0 as usize]
                        .name_en
                        .to_lowercase()
                        .split_whitespace()
                        .map(str::to_string)
                        .collect();
                    kw.push("per".to_string());
                    kw
                },
                frequency: 0.0,
                kind,
                dim,
                conversion: Conversion::linear(num.conversion.factor / den.conversion.factor),
                prefixed: false,
            };
            let pop = (num_pop.min(den_pop) * 0.15).max(0.05);
            self.push_unit(unit, pop, false);
        }
    }

    fn finish(mut self, popularity: &dyn PopularitySource) -> DimUnitKb {
        let items: Vec<(&str, f64)> =
            self.pending.iter().map(|(u, pop, _)| (u.code.as_str(), *pop)).collect();
        let freqs = frequencies(popularity, &items);
        for ((unit, _, _), freq) in self.pending.iter_mut().zip(freqs) {
            unit.frequency = freq;
        }
        let mut kb = DimUnitKb {
            units: Vec::with_capacity(self.pending.len()),
            kinds: self.kinds,
            by_code: HashMap::new(),
            kind_by_name: self.kind_by_name,
            naming: HashMap::new(),
            naming_cased: HashMap::new(),
            by_kind: HashMap::new(),
            by_dim: HashMap::new(),
            search_index: OnceLock::new(),
            link_index: OnceLock::new(),
        };
        for (mut unit, _, _) in self.pending {
            unit.id = UnitId(kb.units.len() as u32);
            kb.index_unit(&unit);
            kb.units.push(unit);
        }
        kb
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

fn default_description(en: &str, kind: &str, factor: f64, offset: f64) -> String {
    if offset != 0.0 {
        format!("{en}: a unit of {kind} (affine scale)")
    } else if (factor - 1.0).abs() < f64::EPSILON {
        format!("{en}: the coherent SI unit of {kind}")
    } else {
        format!("{en}: a unit of {kind} equal to {} SI coherent units", format_factor(factor))
    }
}

fn format_factor(f: f64) -> String {
    if (1e-3..1e7).contains(&f) {
        let s = format!("{f}");
        if s.len() <= 12 {
            return s;
        }
    }
    format!("{f:e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_kb_is_large() {
        let kb = DimUnitKb::shared();
        assert!(kb.units().len() >= 900, "got {} units", kb.units().len());
        assert!(kb.kinds().len() >= 120, "got {} kinds", kb.kinds().len());
    }

    #[test]
    fn kilogram_comes_from_prefix_expansion_and_is_coherent() {
        let kb = DimUnitKb::shared();
        let kg = kb.unit_by_code("KiloGM").expect("kilogram expanded from gram");
        assert_eq!(kg.label_en, "kilogram");
        assert_eq!(kg.label_zh, "千克");
        assert_eq!(kg.symbol, "kg");
        assert!((kg.conversion.factor - 1.0).abs() < 1e-12);
        assert!(kg.prefixed);
    }

    #[test]
    fn naming_dictionary_resolves_aliases_and_chinese() {
        let kb = DimUnitKb::shared();
        assert!(!kb.lookup("kilometer").is_empty());
        assert!(!kb.lookup("千米").is_empty());
        assert!(!kb.lookup("km").is_empty());
        assert!(!kb.lookup("公里").is_empty() || !kb.lookup("千米").is_empty());
    }

    #[test]
    fn ambiguous_degree_has_multiple_candidates() {
        let kb = DimUnitKb::shared();
        // "度" is both the Chinese degree-Celsius colloquialism and the
        // angle degree's Chinese label prefix; at minimum it must resolve.
        let ids = kb.lookup("degree");
        assert!(!ids.is_empty());
    }

    #[test]
    fn convert_metres_to_centimetres() {
        let kb = DimUnitKb::shared();
        let m = kb.unit_by_code("M").unwrap().id;
        let cm = kb.unit_by_code("CentiM").unwrap().id;
        assert!((kb.convert(2.5, m, cm).unwrap() - 250.0).abs() < 1e-9);
        assert!((kb.conversion_factor(m, cm).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn convert_rejects_dimension_mismatch() {
        let kb = DimUnitKb::shared();
        let m = kb.unit_by_code("M").unwrap().id;
        let s = kb.unit_by_code("SEC").unwrap().id;
        assert!(matches!(
            kb.convert(1.0, m, s),
            Err(KbError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn affine_temperature_conversion() {
        let kb = DimUnitKb::shared();
        let c = kb.unit_by_code("DEG-C").unwrap().id;
        let f = kb.unit_by_code("DEG-F").unwrap().id;
        let k = kb.unit_by_code("K").unwrap().id;
        assert!((kb.convert(100.0, c, f).unwrap() - 212.0).abs() < 1e-9);
        assert!((kb.convert(0.0, c, k).unwrap() - 273.15).abs() < 1e-9);
        assert!(kb.conversion_factor(c, f).is_err(), "affine units have no single β");
    }

    #[test]
    fn frequency_ordering_centimetre_beats_decimetre() {
        let kb = DimUnitKb::shared();
        let cm = kb.unit_by_code("CentiM").unwrap();
        let dm = kb.unit_by_code("DeciM").unwrap();
        assert!(
            cm.frequency > dm.frequency,
            "paper §III-A4: centimetre ({}) must outrank decimetre ({})",
            cm.frequency,
            dm.frequency
        );
    }

    #[test]
    fn frequencies_are_within_delta_one() {
        let kb = DimUnitKb::shared();
        for unit in kb.units() {
            assert!(
                unit.frequency >= crate::freq::DELTA - 1e-9 && unit.frequency <= 1.0 + 1e-9,
                "{}: {}",
                unit.code,
                unit.frequency
            );
        }
    }

    #[test]
    fn units_with_dim_groups_comparable_units() {
        let kb = DimUnitKb::shared();
        let n = kb.unit_by_code("N").unwrap();
        let ids = kb.units_with_dim(n.dim);
        assert!(ids.iter().any(|&id| kb.unit(id).code == "PDL"), "poundal shares force dim");
        assert!(ids.iter().all(|&id| kb.unit(id).dim == n.dim));
    }

    #[test]
    fn subset_preserves_lookup_and_frequency() {
        let kb = DimUnitKb::shared();
        let sub = kb.subset(|u| !u.prefixed);
        assert!(sub.units().len() < kb.units().len());
        let m = sub.unit_by_code("M").expect("curated units kept");
        assert_eq!(m.frequency, kb.unit_by_code("M").unwrap().frequency);
        assert!(sub.unit_by_code("KiloGM").is_none());
        // Ids are re-assigned densely.
        for (i, unit) in sub.units().iter().enumerate() {
            assert_eq!(unit.id.0 as usize, i);
        }
    }

    #[test]
    fn json_roundtrip_preserves_behaviour() {
        let kb = DimUnitKb::shared();
        let json = kb.to_json();
        let kb2 = DimUnitKb::from_json(&json).expect("roundtrip");
        assert_eq!(kb.units().len(), kb2.units().len());
        let m = kb2.unit_by_code("M").unwrap().id;
        let km = kb2.unit_by_code("KiloM").unwrap().id;
        assert!((kb2.conversion_factor(km, m).unwrap() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_collapses_case_and_whitespace() {
        assert_eq!(normalize("  Square   Metre "), "square metre");
        assert_eq!(normalize("KM"), "km");
        assert_eq!(normalize("千米"), "千米");
    }

    #[test]
    fn case_exact_lookup_separates_prefix_symbols() {
        let kb = DimUnitKb::shared();
        let label = |s: &str| {
            kb.lookup(s).iter().map(|&id| kb.unit(id).label_en.clone()).collect::<Vec<_>>()
        };
        assert_eq!(label("MW"), vec!["megawatt"]);
        assert_eq!(label("mW"), vec!["milliwatt"]);
        assert_eq!(label("t"), vec!["tonne"]);
        assert_eq!(label("T"), vec!["tesla"]);
        // Case-insensitive fallback still resolves sloppy input.
        assert!(!kb.lookup("KM").is_empty());
        assert!(!kb.lookup("Mw").is_empty());
    }

    #[test]
    fn micro_symbol_gets_ascii_alias() {
        let kb = DimUnitKb::shared();
        assert!(!kb.lookup("um").is_empty(), "µm should have ascii alias um");
    }

    #[test]
    fn dimension_resolution_helpers() {
        let kb = DimUnitKb::shared();
        let metre = DimVec::parse("L1").expect("length vector");
        assert_eq!(kb.dim_of_code("KiloM"), Some(metre));
        assert_eq!(kb.dim_of_code("NO-SUCH"), None);
        assert_eq!(kb.linear_scale_of_code("KiloM"), Some(1000.0));
        assert_eq!(kb.linear_scale_of_code("DEG-C"), None, "affine units have no single factor");
        assert_eq!(kb.dim_of_surface("千米"), Some(metre));
        assert_eq!(kb.linear_scale_of_surface("千米"), Some(1000.0));
        assert_eq!(kb.dim_of_surface("不是单位"), None);
    }
}
