//! The unit frequency feature (§III-A4 of the paper).
//!
//! The paper blends three popularity signals — Google-Trends popularity
//! (`GT`), human commonness scores (`HS`) and corpus frequency approximated
//! over CN-DBpedia tail entities (`CF`) — into a single `Frequency` feature:
//!
//! ```text
//! Score(u) = Σ_{j ∈ {GT, HS, CF}} α_j · log(Freq_j(u))        (Eq. 1)
//! Freq(u)  = (1−δ) · minmax(Score(u)) + δ                      (Eq. 2)
//! ```
//!
//! with `α_GT = 0.3`, `α_HS = 0.3`, `α_CF = 0.4` and `δ = 0.1`.
//!
//! The external popularity sources are gated (Google Trends API, human
//! annotators, CN-DBpedia); this module keeps the *formula* intact and makes
//! the sources pluggable via [`PopularitySource`]. The default
//! [`SyntheticPopularity`] derives three deterministic per-source signals
//! from the curated per-unit popularity score, with source-specific
//! perturbations so the three signals disagree the way real ones would.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The three popularity signals of Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Google-Trends degree of popularity.
    GoogleTrend,
    /// Human-scored commonness.
    HumanScore,
    /// Corpus frequency (CN-DBpedia tail-entity occurrences in the paper).
    CorpusFreq,
}

impl Signal {
    /// All three signals.
    pub const ALL: [Signal; 3] = [Signal::GoogleTrend, Signal::HumanScore, Signal::CorpusFreq];

    /// The paper's weighting parameter `α_j` for this signal.
    pub fn alpha(self) -> f64 {
        match self {
            Signal::GoogleTrend => 0.3,
            Signal::HumanScore => 0.3,
            Signal::CorpusFreq => 0.4,
        }
    }
}

/// The paper's smoothing parameter `δ` in Eq. 2.
pub const DELTA: f64 = 0.1;

/// A source of raw popularity values `Freq_j(u) > 0` for units.
///
/// Implementations must return strictly positive values (they are fed to
/// `log`). The `key` is the unit's code; `base_pop` is the curated raw
/// popularity of the unit in `(0, 100]`.
pub trait PopularitySource {
    /// Raw popularity of the given unit under the given signal.
    fn raw(&self, key: &str, base_pop: f64, signal: Signal) -> f64;
}

/// Deterministic synthetic popularity: perturbs the curated base popularity
/// per (unit, signal) with a hash-derived factor in `[0.5, 2.0]`, so the
/// three signals are correlated but not identical — the situation the
/// paper's weighted blend is designed for.
#[derive(Debug, Clone, Copy, Default)]
pub struct SyntheticPopularity;

impl PopularitySource for SyntheticPopularity {
    fn raw(&self, key: &str, base_pop: f64, signal: Signal) -> f64 {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        signal.hash(&mut h);
        // Map hash to [0.5, 2.0] multiplicatively (log-uniform-ish).
        let t = (h.finish() % 10_000) as f64 / 10_000.0;
        let factor = 0.5 * 4f64.powf(t);
        (base_pop.max(1e-6)) * factor
    }
}

/// Computes `Score(u)` (Eq. 1) for one unit.
pub fn score(source: &dyn PopularitySource, key: &str, base_pop: f64) -> f64 {
    Signal::ALL
        .iter()
        .map(|&s| s.alpha() * source.raw(key, base_pop, s).max(1e-12).ln())
        .sum()
}

/// Computes `Freq(u)` (Eq. 2) for every unit: min-max normalizes the scores
/// and maps them into `[δ, 1]`.
///
/// `items` is a list of `(key, base_pop)`; the output is parallel to it.
/// With fewer than two distinct scores the normalized value is defined as 1
/// (a single unit is trivially the most popular).
pub fn frequencies(source: &dyn PopularitySource, items: &[(&str, f64)]) -> Vec<f64> {
    let scores: Vec<f64> = items.iter().map(|(k, p)| score(source, k, *p)).collect();
    let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    scores
        .iter()
        .map(|&s| {
            let norm = if span > 1e-12 { (s - min) / span } else { 1.0 };
            (1.0 - DELTA) * norm + DELTA
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphas_sum_to_one() {
        let total: f64 = Signal::ALL.iter().map(|s| s.alpha()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn synthetic_source_is_deterministic() {
        let s = SyntheticPopularity;
        let a = s.raw("M", 95.0, Signal::GoogleTrend);
        let b = s.raw("M", 95.0, Signal::GoogleTrend);
        assert_eq!(a, b);
    }

    #[test]
    fn signals_disagree_but_stay_bounded() {
        let s = SyntheticPopularity;
        for key in ["M", "KiloGM", "DYN-PER-CentiM"] {
            let vals: Vec<f64> = Signal::ALL.iter().map(|&sig| s.raw(key, 50.0, sig)).collect();
            for v in &vals {
                assert!(*v >= 25.0 - 1e-9 && *v <= 100.0 + 1e-9, "{key}: {v}");
            }
        }
    }

    #[test]
    fn frequencies_live_in_delta_one() {
        let items = [("a", 1.0), ("b", 10.0), ("c", 100.0)];
        let f = frequencies(&SyntheticPopularity, &items);
        for v in &f {
            assert!(*v >= DELTA - 1e-12 && *v <= 1.0 + 1e-12);
        }
        // The extremes of the min-max normalization are hit exactly.
        let max = f.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = f.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((max - 1.0).abs() < 1e-12);
        assert!((min - DELTA).abs() < 1e-12);
    }

    #[test]
    fn higher_base_pop_tends_to_higher_freq() {
        // Averaged over many keys the ordering must follow base popularity.
        let keys: Vec<String> = (0..200).map(|i| format!("unit{i}")).collect();
        let mut low_sum = 0.0;
        let mut high_sum = 0.0;
        for k in &keys {
            low_sum += score(&SyntheticPopularity, k, 2.0);
            high_sum += score(&SyntheticPopularity, k, 80.0);
        }
        assert!(high_sum > low_sum);
    }

    #[test]
    fn single_item_gets_full_frequency() {
        let f = frequencies(&SyntheticPopularity, &[("only", 5.0)]);
        assert_eq!(f.len(), 1);
        assert!((f[0] - 1.0).abs() < 1e-12);
    }
}
