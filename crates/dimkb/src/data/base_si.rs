//! The SI base units and the coherent derived SI units (with prefix
//! expansion), plus time units beyond the second.

use crate::spec::{u, UnitSpec};

/// SI base units, coherent derived units, and common time units.
pub const UNITS: &[UnitSpec] = &[
    // ---- the seven SI base units (Table III of the paper) ------------
    u("M", "metre", "米", "m", "Length", 1.0, 100.0)
        .aliases(&["meter", "metres", "meters", "公尺"])
        .kw(&["distance", "long", "tall", "si"])
        .desc("the SI base unit of length")
        .prefixable(),
    u("GM", "gram", "克", "g", "Mass", 1e-3, 92.0)
        .aliases(&["grams", "gramme"])
        .kw(&["weigh", "heavy", "si"])
        .desc("one thousandth of the SI base unit of mass")
        .prefixable(),
    u("SEC", "second", "秒", "s", "Time", 1.0, 98.0)
        .aliases(&["seconds", "sec", "秒钟"])
        .kw(&["duration", "clock", "si"])
        .desc("the SI base unit of time")
        .prefixable(),
    u("A", "ampere", "安培", "A", "ElectricCurrent", 1.0, 70.0)
        .aliases(&["amperes", "amp", "amps", "安"])
        .kw(&["current", "electric", "circuit", "si"])
        .desc("the SI base unit of electric current")
        .prefixable(),
    u("K", "kelvin", "开尔文", "K", "Temperature", 1.0, 55.0)
        .aliases(&["kelvins", "开氏度"])
        .kw(&["temperature", "thermodynamic", "absolute", "si"])
        .desc("the SI base unit of thermodynamic temperature")
        .prefixable(),
    u("MOL", "mole", "摩尔", "mol", "AmountOfSubstance", 1.0, 50.0)
        .aliases(&["moles", "摩"])
        .kw(&["substance", "chemistry", "avogadro", "si"])
        .desc("the SI base unit of amount of substance")
        .prefixable(),
    u("CD", "candela", "坎德拉", "cd", "LuminousIntensity", 1.0, 25.0)
        .aliases(&["candelas", "坎"])
        .kw(&["luminous", "light", "intensity", "si"])
        .desc("the SI base unit of luminous intensity")
        .prefixable(),
    // ---- time beyond the second ---------------------------------------
    u("MIN", "minute", "分钟", "min", "Time", 60.0, 97.0)
        .aliases(&["minutes", "分"])
        .kw(&["duration", "clock"]),
    u("HR", "hour", "小时", "h", "Time", 3600.0, 97.0)
        .aliases(&["hours", "hr", "时", "钟头"])
        .kw(&["duration", "clock", "day"]),
    u("DAY", "day", "天", "d", "Time", 86_400.0, 96.0)
        .aliases(&["days", "日"])
        .kw(&["duration", "calendar"]),
    u("WK", "week", "周", "wk", "Time", 604_800.0, 88.0)
        .aliases(&["weeks", "星期", "礼拜"])
        .kw(&["duration", "calendar"]),
    u("MO", "month", "个月", "mo", "Time", 2_629_800.0, 90.0)
        .aliases(&["months", "月"])
        .kw(&["duration", "calendar"])
        .desc("one twelfth of a Julian year"),
    u("YR", "year", "年", "yr", "Time", 31_557_600.0, 95.0)
        .aliases(&["years", "annum", "岁"])
        .kw(&["duration", "calendar", "age"])
        .desc("the Julian year of 365.25 days"),
    u("DECADE", "decade", "十年", "dec", "Time", 315_576_000.0, 40.0)
        .aliases(&["decades"])
        .kw(&["duration", "calendar"]),
    u("CENTURY", "century", "世纪", "c.", "Time", 3_155_760_000.0, 42.0)
        .aliases(&["centuries"])
        .kw(&["duration", "calendar", "history"]),
    u("FORTNIGHT", "fortnight", "两周", "fn", "Duration", 1_209_600.0, 8.0)
        .aliases(&["fortnights"])
        .kw(&["duration", "calendar", "british"]),
    // ---- mass beyond the gram ------------------------------------------
    u("TONNE", "tonne", "吨", "t", "Mass", 1000.0, 85.0)
        .aliases(&["metric ton", "tonnes", "ton", "公吨"])
        .kw(&["weigh", "heavy", "freight"])
        .desc("one thousand kilograms")
        .prefixable(),
    u("CARAT", "carat", "克拉", "ct", "Mass", 2e-4, 35.0)
        .aliases(&["carats"])
        .kw(&["gem", "diamond", "jewel"]),
    u("DALTON", "dalton", "道尔顿", "Da", "Mass", 1.660_539_066_6e-27, 12.0)
        .aliases(&["atomic mass unit", "amu", "u"])
        .kw(&["atomic", "molecule", "proton"]),
    u("SOLAR-MASS", "solar mass", "太阳质量", "M☉", "Mass", 1.988_47e30, 6.0)
        .aliases(&["solar masses"])
        .kw(&["astronomy", "star", "sun"]),
    // ---- temperature scales --------------------------------------------
    u("DEG-C", "degree Celsius", "摄氏度", "°C", "Temperature", 1.0, 96.0)
        .offset(273.15)
        .aliases(&["degrees Celsius", "celsius", "centigrade", "℃", "度", "degree", "degrees"])
        .kw(&["temperature", "weather", "thermometer"]),
    u("DEG-F", "degree Fahrenheit", "华氏度", "°F", "Temperature", 5.0 / 9.0, 60.0)
        .offset(273.15 - 32.0 * 5.0 / 9.0)
        .aliases(&["degrees Fahrenheit", "fahrenheit", "℉"])
        .kw(&["temperature", "weather", "imperial"]),
    u("DEG-R", "degree Rankine", "兰氏度", "°R", "Temperature", 5.0 / 9.0, 5.0)
        .aliases(&["degrees Rankine", "rankine"])
        .kw(&["temperature", "thermodynamic", "absolute"]),
    u("DEG-RE", "degree Réaumur", "列氏度", "°Ré", "AmbientTemperature", 1.25, 2.0)
        .offset(273.15)
        .aliases(&["degrees Reaumur", "reaumur"])
        .kw(&["temperature", "historical"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_is_coherent() {
        let sec = UNITS.iter().find(|s| s.code == "SEC").unwrap();
        assert_eq!(sec.factor, 1.0);
        assert!(sec.prefixable);
    }

    #[test]
    fn gram_is_milli_kilogram() {
        let g = UNITS.iter().find(|s| s.code == "GM").unwrap();
        assert_eq!(g.factor, 1e-3, "SI coherent mass unit is the kilogram");
    }

    #[test]
    fn fahrenheit_freezing_point() {
        let f = UNITS.iter().find(|s| s.code == "DEG-F").unwrap();
        let si = 32.0 * f.factor + f.offset;
        assert!((si - 273.15).abs() < 1e-9);
    }

    #[test]
    fn year_is_365_25_days() {
        let yr = UNITS.iter().find(|s| s.code == "YR").unwrap();
        let day = UNITS.iter().find(|s| s.code == "DAY").unwrap();
        assert!((yr.factor / day.factor - 365.25).abs() < 1e-9);
    }
}
