//! Mechanics: mass (imperial), velocity, acceleration, force, pressure,
//! energy, power, density, viscosity, flow.

use crate::spec::{u, UnitSpec};

/// Mechanics-related units.
pub const UNITS: &[UnitSpec] = &[
    // ---- imperial mass ---------------------------------------------------
    u("LB", "pound", "磅", "lb", "Mass", 0.453_592_37, 82.0)
        .aliases(&["pounds", "lbs", "pound-mass", "lbm"])
        .kw(&["imperial", "weigh", "body"]),
    u("OZ", "ounce", "盎司", "oz", "Mass", 0.028_349_523_125, 60.0)
        .aliases(&["ounces", "安士"])
        .kw(&["imperial", "light", "food"]),
    u("STONE", "stone", "英石", "st", "BodyMass", 6.350_293_18, 25.0)
        .aliases(&["stones"])
        .kw(&["british", "body", "weigh"]),
    u("TON-US", "short ton", "美吨", "tn", "NetMass", 907.184_74, 30.0)
        .aliases(&["US ton", "short tons"])
        .kw(&["american", "freight", "heavy"]),
    u("TON-UK", "long ton", "英吨", "LT", "GrossMass", 1_016.046_908_8, 8.0)
        .aliases(&["imperial ton", "long tons"])
        .kw(&["british", "ship", "heavy"]),
    u("SLUG", "slug", "斯勒格", "slug", "Mass", 14.593_902_94, 3.0)
        .aliases(&["slugs"])
        .kw(&["imperial", "dynamics", "engineering"]),
    u("GRAIN", "grain", "格令", "gr", "Mass", 6.479_891e-5, 4.0)
        .aliases(&["grains"])
        .kw(&["bullet", "pharmacy", "tiny"]),
    u("DRAM", "dram", "打兰", "dr", "Mass", 1.771_845_195e-3, 2.0)
        .aliases(&["drams", "drachm"])
        .kw(&["apothecary", "old", "small"]),
    // ---- velocity ---------------------------------------------------------
    u("M-PER-SEC", "metre per second", "米每秒", "m/s", "Velocity", 1.0, 75.0)
        .aliases(&["meter per second", "metres per second", "meters per second", "m/sec", "mps"])
        .kw(&["speed", "physics", "wind"]),
    u("KM-PER-HR", "kilometre per hour", "千米每小时", "km/h", "Velocity", 1.0 / 3.6, 88.0)
        .aliases(&["kilometer per hour", "kph", "kmh", "km/hr", "公里每小时"])
        .kw(&["speed", "car", "road", "limit"]),
    u("MI-PER-HR", "mile per hour", "英里每小时", "mph", "Velocity", 0.447_04, 65.0)
        .aliases(&["miles per hour", "mi/h"])
        .kw(&["speed", "car", "american", "road"]),
    u("KNOT", "knot", "节", "kn", "WindSpeed", 1852.0 / 3600.0, 28.0)
        .aliases(&["knots", "kt"])
        .kw(&["ship", "sea", "wind", "aviation"]),
    u("FT-PER-SEC", "foot per second", "英尺每秒", "ft/s", "Velocity", 0.3048, 15.0)
        .aliases(&["feet per second", "fps"])
        .kw(&["speed", "ballistics", "imperial"]),
    u("CM-PER-SEC", "centimetre per second", "厘米每秒", "cm/s", "Velocity", 0.01, 10.0)
        .aliases(&["centimeter per second"])
        .kw(&["slow", "flow", "laboratory"]),
    u("MACH", "mach number unit", "马赫", "Ma", "Velocity", 340.3, 22.0)
        .aliases(&["mach"])
        .kw(&["aircraft", "supersonic", "jet"])
        .desc("speed of sound at sea level, 340.3 m/s"),
    u("SPEED-OF-LIGHT", "speed of light", "光速", "c", "Velocity", 299_792_458.0, 12.0)
        .kw(&["relativity", "vacuum", "physics"]),
    // ---- acceleration ------------------------------------------------------
    u("M-PER-SEC2", "metre per second squared", "米每二次方秒", "m/s²", "Acceleration", 1.0, 50.0)
        .aliases(&["meter per second squared", "m/s^2", "m/s2", "m s-2"])
        .kw(&["physics", "gravity", "motion"]),
    u("GN", "standard gravity", "标准重力加速度", "gₙ", "Acceleration", 9.806_65, 30.0)
        .aliases(&["g-force", "gee", "g0"])
        .kw(&["gravity", "rocket", "pilot"]),
    u("GAL-CGS", "gal", "伽", "Gal", "Acceleration", 0.01, 2.0)
        .aliases(&["galileo"])
        .kw(&["gravimetry", "geophysics", "cgs"]),
    u("FT-PER-SEC2", "foot per second squared", "英尺每二次方秒", "ft/s²", "Acceleration", 0.3048, 4.0)
        .aliases(&["ft/s^2", "ft/s2"])
        .kw(&["imperial", "dynamics"]),
    // ---- force -------------------------------------------------------------
    u("N", "newton", "牛顿", "N", "Force", 1.0, 72.0)
        .aliases(&["newtons", "牛"])
        .kw(&["push", "pull", "physics", "si"])
        .prefixable(),
    u("DYN", "dyne", "达因", "dyn", "Force", 1e-5, 8.0)
        .aliases(&["dynes"])
        .kw(&["cgs", "small", "laboratory"]),
    u("KGF", "kilogram-force", "千克力", "kgf", "Thrust", 9.806_65, 30.0)
        .aliases(&["kilopond", "kp", "公斤力"])
        .kw(&["engineering", "weight", "gravitational"]),
    u("LBF", "pound-force", "磅力", "lbf", "Tension", 4.448_221_615_260_5, 25.0)
        .aliases(&["pounds-force"])
        .kw(&["imperial", "thrust", "engineering"]),
    u("PDL", "poundal", "磅达", "pdl", "Force", 0.138_254_954_376, 2.0)
        .aliases(&["poundals"])
        .kw(&["imperial", "absolute", "dynamics"])
        .desc("the force accelerating one pound at one foot per second squared"),
    u("TONF", "ton-force", "吨力", "tnf", "Thrust", 9806.65, 5.0)
        .aliases(&["tonne-force"])
        .kw(&["heavy", "engineering", "crane"]),
    // ---- pressure ------------------------------------------------------------
    u("PA", "pascal", "帕斯卡", "Pa", "Pressure", 1.0, 68.0)
        .aliases(&["pascals", "帕"])
        .kw(&["pressure", "physics", "si"])
        .prefixable(),
    u("BAR", "bar", "巴", "bar", "Pressure", 1e5, 45.0)
        .aliases(&["bars"])
        .kw(&["weather", "tank", "diving"])
        .prefixable(),
    u("ATM", "standard atmosphere", "标准大气压", "atm", "AtmosphericPressure", 101_325.0, 40.0)
        .aliases(&["atmosphere", "atmospheres"])
        .kw(&["air", "weather", "chemistry"]),
    u("TORR", "torr", "托", "Torr", "VaporPressure", 101_325.0 / 760.0, 8.0)
        .aliases(&["torrs"])
        .kw(&["vacuum", "laboratory", "gauge"])
        .prefixable(),
    u("MMHG", "millimetre of mercury", "毫米汞柱", "mmHg", "BloodPressure", 133.322_387_415, 35.0)
        .aliases(&["millimeter of mercury", "mm Hg"])
        .kw(&["blood", "medical", "barometer"]),
    u("INHG", "inch of mercury", "英寸汞柱", "inHg", "Pressure", 3386.389, 6.0)
        .aliases(&["inches of mercury"])
        .kw(&["aviation", "barometer", "weather"]),
    u("PSI", "pound per square inch", "磅每平方英寸", "psi", "TirePressure", 6_894.757_293_168, 50.0)
        .aliases(&["pounds per square inch", "lbf/in2"])
        .kw(&["tire", "imperial", "gauge"]),
    u("MH2O", "metre of water", "米水柱", "mH₂O", "Pressure", 9806.65, 4.0)
        .aliases(&["meter of water", "mH2O"])
        .kw(&["head", "pump", "hydraulic"]),
    u("BARYE", "barye", "微巴", "Ba", "Pressure", 0.1, 1.0)
        .kw(&["cgs", "laboratory"]),
    // ---- energy ---------------------------------------------------------------
    u("J", "joule", "焦耳", "J", "Energy", 1.0, 70.0)
        .aliases(&["joules", "焦"])
        .kw(&["energy", "work", "physics", "si"])
        .prefixable(),
    u("CAL", "calorie", "卡路里", "cal", "Energy", 4.184, 62.0)
        .aliases(&["calories", "small calorie", "卡"])
        .kw(&["food", "diet", "heat"])
        .prefixable(),
    u("KCAL", "kilocalorie", "千卡", "kcal", "FoodEnergy", 4184.0, 60.0)
        .aliases(&["Calorie", "large calorie", "food calorie", "大卡"])
        .kw(&["food", "diet", "nutrition"]),
    u("WH", "watt hour", "瓦时", "Wh", "ElectricityConsumption", 3600.0, 55.0)
        .aliases(&["watt-hour", "watt hours"])
        .kw(&["electricity", "battery", "meter"])
        .prefixable(),
    u("EV", "electronvolt", "电子伏特", "eV", "KineticEnergy", 1.602_176_634e-19, 20.0)
        .aliases(&["electron volt", "electronvolts"])
        .kw(&["particle", "atomic", "accelerator"])
        .prefixable(),
    u("BTU", "British thermal unit", "英热单位", "BTU", "Heat", 1_055.055_852_62, 25.0)
        .aliases(&["Btu", "british thermal units"])
        .kw(&["heating", "air", "conditioner"]),
    u("ERG", "erg", "尔格", "erg", "Work", 1e-7, 5.0)
        .aliases(&["ergs"])
        .kw(&["cgs", "small", "laboratory"]),
    u("FT-LBF", "foot-pound", "英尺磅", "ft⋅lbf", "PotentialEnergy", 1.355_817_948_331_400_4, 10.0)
        .aliases(&["foot-pounds", "ft-lb", "foot pound"])
        .kw(&["imperial", "torque", "work"]),
    u("THERM", "therm", "撒姆", "thm", "Energy", 1.055_055_852_62e8, 4.0)
        .aliases(&["therms"])
        .kw(&["natural", "gas", "billing"]),
    u("TNT-TON", "ton of TNT", "吨TNT当量", "tTNT", "Energy", 4.184e9, 6.0)
        .aliases(&["tons of TNT", "TNT equivalent"])
        .kw(&["explosion", "blast", "yield"]),
    // ---- power -----------------------------------------------------------------
    u("W", "watt", "瓦特", "W", "Power", 1.0, 80.0)
        .aliases(&["watts", "瓦"])
        .kw(&["power", "electric", "bulb", "si"])
        .prefixable(),
    u("HP", "horsepower", "马力", "hp", "EnginePower", 745.699_871_582_270_2, 48.0)
        .aliases(&["mechanical horsepower", "bhp", "匹"])
        .kw(&["engine", "car", "motor"]),
    u("PS", "metric horsepower", "公制马力", "PS", "RatedPower", 735.498_75, 12.0)
        .aliases(&["cheval-vapeur", "cv"])
        .kw(&["engine", "european", "car"]),
    u("BTU-PER-HR", "BTU per hour", "英热单位每小时", "BTU/h", "CoolingCapacity", 0.293_071_070_172_222, 8.0)
        .aliases(&["BTU/hr", "BTUH"])
        .kw(&["heating", "cooling", "hvac"]),
    u("ERG-PER-SEC", "erg per second", "尔格每秒", "erg/s", "Power", 1e-7, 1.0)
        .kw(&["cgs", "astronomy", "luminosity"]),
    // ---- torque & force/length ----------------------------------------------------
    u("N-M", "newton metre", "牛米", "N·m", "Torque", 1.0, 40.0)
        .aliases(&["newton meter", "newton-metre", "Nm", "N*m", "N m"])
        .kw(&["torque", "wrench", "engine"]),
    u("N-PER-M", "newton per metre", "牛每米", "N/m", "SpringConstant", 1.0, 18.0)
        .aliases(&["newton per meter", "N/m"])
        .kw(&["surface", "tension", "stiffness"]),
    u("DYN-PER-CentiM", "dyne per centimetre", "达因每厘米", "dyn/cm", "SurfaceTension", 1e-3, 3.0)
        .aliases(&["dyne per centimeter", "dyne/cm"])
        .kw(&["surface", "tension", "cgs", "liquid"]),
    // ---- density -------------------------------------------------------------------
    u("KG-PER-M3", "kilogram per cubic metre", "千克每立方米", "kg/m³", "MassDensity", 1.0, 45.0)
        .aliases(&["kilogram per cubic meter", "kg/m3", "kg/m^3"])
        .kw(&["density", "material", "physics"]),
    u("G-PER-CM3", "gram per cubic centimetre", "克每立方厘米", "g/cm³", "MassDensity", 1000.0, 42.0)
        .aliases(&["gram per cubic centimeter", "g/cm3", "g/cc"])
        .kw(&["density", "chemistry", "mineral"]),
    u("G-PER-ML", "gram per millilitre", "克每毫升", "g/mL", "MassDensity", 1000.0, 25.0)
        .aliases(&["gram per milliliter", "g/ml"])
        .kw(&["density", "liquid", "solution"]),
    u("KG-PER-L", "kilogram per litre", "千克每升", "kg/L", "MassDensity", 1000.0, 15.0)
        .aliases(&["kilogram per liter", "kg/l"])
        .kw(&["density", "fuel", "liquid"]),
    u("LB-PER-FT3", "pound per cubic foot", "磅每立方英尺", "lb/ft³", "MassDensity", 16.018_463_373_96, 6.0)
        .aliases(&["lb/ft3", "pcf"])
        .kw(&["imperial", "material", "soil"]),
    // ---- viscosity --------------------------------------------------------------------
    u("PA-SEC", "pascal second", "帕秒", "Pa·s", "DynamicViscosity", 1.0, 12.0)
        .aliases(&["pascal-second", "Pa s", "Pa.s"])
        .kw(&["viscosity", "fluid", "si"])
        .prefixable(),
    u("POISE", "poise", "泊", "P", "DynamicViscosity", 0.1, 6.0)
        .aliases(&["poises"])
        .kw(&["viscosity", "cgs", "fluid"])
        .prefixable(),
    u("M2-PER-SEC", "square metre per second", "平方米每秒", "m²/s", "KinematicViscosity", 1.0, 5.0)
        .aliases(&["square meter per second", "m2/s"])
        .kw(&["kinematic", "viscosity", "diffusion"]),
    u("STOKES", "stokes", "斯托克斯", "St", "KinematicViscosity", 1e-4, 3.0)
        .aliases(&["stoke"])
        .kw(&["kinematic", "viscosity", "cgs"])
        .prefixable(),
    // ---- flow -------------------------------------------------------------------------
    u("M3-PER-SEC", "cubic metre per second", "立方米每秒", "m³/s", "VolumeFlowRate", 1.0, 25.0)
        .aliases(&["cubic meter per second", "m3/s", "cumec"])
        .kw(&["river", "discharge", "flow"]),
    u("L-PER-MIN", "litre per minute", "升每分钟", "L/min", "VolumeFlowRate", 1e-3 / 60.0, 22.0)
        .aliases(&["liter per minute", "lpm", "l/min"])
        .kw(&["pump", "flow", "water"]),
    u("L-PER-SEC", "litre per second", "升每秒", "L/s", "VolumeFlowRate", 1e-3, 12.0)
        .aliases(&["liter per second", "l/s"])
        .kw(&["pump", "flow", "pipe"]),
    u("GAL-PER-MIN", "US gallon per minute", "加仑每分钟", "gpm", "VolumeFlowRate", 3.785_411_784e-3 / 60.0, 10.0)
        .aliases(&["gallon per minute", "gal/min"])
        .kw(&["pump", "flow", "american"]),
    u("GILL-PER-HR", "gill per hour", "及耳每小时", "gill/h", "VolumeFlowRate", 1.182_941_183e-4 / 3600.0, 1.0)
        .aliases(&["gills per hour"])
        .kw(&["obscure", "drip", "slow"]),
    u("KG-PER-SEC", "kilogram per second", "千克每秒", "kg/s", "MassFlowRate", 1.0, 8.0)
        .aliases(&["kg/s"])
        .kw(&["mass", "flow", "rocket"]),
    u("T-PER-HR", "tonne per hour", "吨每小时", "t/h", "MassFlowRate", 1000.0 / 3600.0, 6.0)
        .aliases(&["ton per hour", "t/hr"])
        .kw(&["conveyor", "industrial", "throughput"]),
    // ---- momentum & inertia --------------------------------------------------------------
    u("KG-M-PER-SEC", "kilogram metre per second", "千克米每秒", "kg·m/s", "Momentum", 1.0, 5.0)
        .aliases(&["kg m/s", "kg*m/s"])
        .kw(&["momentum", "collision", "physics"]),
    u("KG-M2-PER-SEC", "kilogram square metre per second", "千克二次方米每秒", "kg·m²/s", "AngularMomentum", 1.0, 2.0)
        .aliases(&["kg m2/s"])
        .kw(&["angular", "momentum", "spin"]),
    u("KG-M2", "kilogram square metre", "千克二次方米", "kg·m²", "MomentOfInertia", 1.0, 3.0)
        .aliases(&["kg m2", "kg*m^2"])
        .kw(&["inertia", "rotation", "flywheel"]),
    // ---- specific / energy density -------------------------------------------------------
    u("J-PER-KG", "joule per kilogram", "焦耳每千克", "J/kg", "SpecificEnergy", 1.0, 6.0)
        .aliases(&["J/kg"])
        .kw(&["specific", "energy", "latent"]),
    u("J-PER-M3", "joule per cubic metre", "焦耳每立方米", "J/m³", "EnergyDensity", 1.0, 3.0)
        .aliases(&["joule per cubic meter", "J/m3"])
        .kw(&["energy", "density", "field"]),
    u("J-PER-G", "joule per gram", "焦耳每克", "J/g", "SpecificEnergy", 1000.0, 5.0)
        .aliases(&["J/g"])
        .kw(&["specific", "energy", "combustion"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poundal_matches_fig1() {
        // Fig. 1: 0.1 poundal ≈ 0.013825 newtons.
        let pdl = UNITS.iter().find(|s| s.code == "PDL").unwrap();
        assert!((0.1 * pdl.factor - 0.013_825_495_437_6).abs() < 1e-12);
    }

    #[test]
    fn dyne_per_centimetre_is_surface_tension_scale() {
        let d = UNITS.iter().find(|s| s.code == "DYN-PER-CentiM").unwrap();
        assert!((d.factor - 1e-3).abs() < 1e-18, "1 dyn/cm = 1 mN/m");
    }

    #[test]
    fn atmosphere_in_torr() {
        let atm = UNITS.iter().find(|s| s.code == "ATM").unwrap();
        let torr = UNITS.iter().find(|s| s.code == "TORR").unwrap();
        assert!((atm.factor / torr.factor - 760.0).abs() < 1e-9);
    }

    #[test]
    fn kilocalorie_is_1000_calories() {
        let kcal = UNITS.iter().find(|s| s.code == "KCAL").unwrap();
        let cal = UNITS.iter().find(|s| s.code == "CAL").unwrap();
        assert!((kcal.factor / cal.factor - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn pound_force_is_pound_times_gravity() {
        let lbf = UNITS.iter().find(|s| s.code == "LBF").unwrap();
        let lb = UNITS.iter().find(|s| s.code == "LB").unwrap();
        assert!((lbf.factor - lb.factor * 9.806_65).abs() < 1e-9);
    }
}
