//! Information, counting, ratio and miscellaneous dimensionless units.

use crate::spec::{u, UnitSpec};

/// Information / counting / ratio units.
pub const UNITS: &[UnitSpec] = &[
    // ---- information -------------------------------------------------------
    u("BIT", "bit", "比特", "bit", "Information", 1.0, 55.0)
        .aliases(&["bits", "位"])
        .kw(&["data", "binary", "computer"])
        .prefixable(),
    u("BYTE", "byte", "字节", "B", "Information", 8.0, 70.0)
        .aliases(&["bytes"])
        .kw(&["data", "file", "memory", "storage"])
        .prefixable(),
    u("KIB", "kibibyte", "二进制千字节", "KiB", "MemorySize", 8192.0, 12.0)
        .aliases(&["kibibytes"])
        .kw(&["data", "binary", "memory"]),
    u("MIB", "mebibyte", "二进制兆字节", "MiB", "MemorySize", 8.0 * 1_048_576.0, 14.0)
        .aliases(&["mebibytes"])
        .kw(&["data", "binary", "memory"]),
    u("GIB", "gibibyte", "二进制吉字节", "GiB", "StorageCapacity", 8.0 * 1_073_741_824.0, 14.0)
        .aliases(&["gibibytes"])
        .kw(&["data", "binary", "memory"]),
    u("NAT", "nat", "奈特", "nat", "Information", std::f64::consts::LOG2_E, 1.0)
        .aliases(&["nats"])
        .kw(&["entropy", "information", "theory"]),
    // ---- data rate -----------------------------------------------------------
    u("BIT-PER-SEC", "bit per second", "比特每秒", "bit/s", "DataRate", 1.0, 30.0)
        .aliases(&["bits per second", "bps"])
        .kw(&["network", "bandwidth", "internet"])
        .prefixable(),
    u("BYTE-PER-SEC", "byte per second", "字节每秒", "B/s", "DataRate", 8.0, 20.0)
        .aliases(&["bytes per second", "Bps"])
        .kw(&["download", "transfer", "disk"])
        .prefixable(),
    // ---- ratio -----------------------------------------------------------------
    u("PERCENT", "percent", "百分比", "%", "Ratio", 0.01, 98.0)
        .aliases(&["per cent", "percentage", "百分之"])
        .kw(&["fraction", "rate", "share"]),
    u("PERMILLE", "per mille", "千分比", "‰", "Slope", 0.001, 20.0)
        .aliases(&["permil", "per mil", "千分之"])
        .kw(&["fraction", "alcohol", "salinity"]),
    u("PPM", "part per million", "百万分比", "ppm", "MassFraction", 1e-6, 25.0)
        .aliases(&["parts per million"])
        .kw(&["pollution", "trace", "concentration"]),
    u("PPB", "part per billion", "十亿分比", "ppb", "Ratio", 1e-9, 10.0)
        .aliases(&["parts per billion"])
        .kw(&["pollution", "trace", "contaminant"]),
    u("BASIS-POINT", "basis point", "基点", "bp", "Ratio", 1e-4, 15.0)
        .aliases(&["basis points", "bps (finance)"])
        .kw(&["finance", "interest", "rate"]),
    u("UNITY", "unity ratio", "单位一", "1", "Dimensionless", 1.0, 5.0)
        .aliases(&["unit ratio"])
        .kw(&["pure", "number", "fraction"]),
    // ---- count -------------------------------------------------------------------
    u("EACH", "each", "个", "ea", "Count", 1.0, 95.0)
        .aliases(&["piece", "pieces", "只", "件", "台", "架", "辆", "颗", "枚", "本", "张"])
        .kw(&["count", "item", "number"]),
    u("DOZEN", "dozen", "打", "doz", "Count", 12.0, 30.0)
        .aliases(&["dozens"])
        .kw(&["count", "egg", "twelve"]),
    u("PAIR", "pair", "双", "pr", "Count", 2.0, 60.0)
        .aliases(&["pairs", "对"])
        .kw(&["count", "shoes", "two"]),
    u("GROSS", "gross", "罗", "gr.", "Count", 144.0, 2.0)
        .kw(&["count", "wholesale", "144"]),
    u("WAN-ZH", "wan (ten thousand)", "万", "万", "Count", 1e4, 85.0)
        .aliases(&["ten thousand"])
        .kw(&["chinese", "count", "large"]),
    u("YI-ZH", "yi (hundred million)", "亿", "亿", "Count", 1e8, 70.0)
        .aliases(&["hundred million"])
        .kw(&["chinese", "count", "population"]),
    u("MOLE-COUNT", "avogadro count", "阿伏伽德罗数", "N_A", "Count", 6.022_140_76e23, 2.0)
        .kw(&["chemistry", "particles", "constant"]),
    // ---- sound level ----------------------------------------------------------------
    u("DB", "decibel", "分贝", "dB", "SoundLevel", 1.0, 50.0)
        .aliases(&["decibels"])
        .kw(&["sound", "noise", "loud"]),
    // ---- fuel economy -----------------------------------------------------------------
    u("KM-PER-L", "kilometre per litre", "千米每升", "km/L", "FuelEconomy", 1e6, 12.0)
        .aliases(&["kilometer per liter", "km/l"])
        .kw(&["fuel", "mileage", "car"]),
    u("MPG-US", "mile per US gallon", "英里每加仑", "mpg", "FuelEconomy", 1609.344 / 3.785_411_784e-3, 30.0)
        .aliases(&["miles per gallon"])
        .kw(&["fuel", "mileage", "american"]),
    u("L-PER-100KM", "litre per 100 kilometres", "升每百公里", "L/100km", "FuelConsumptionPerDistance", 1e-8, 35.0)
        .aliases(&["liter per 100 kilometers", "l/100km", "百公里油耗"])
        .kw(&["fuel", "consumption", "car"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_is_eight_bits() {
        let b = UNITS.iter().find(|s| s.code == "BYTE").unwrap();
        assert_eq!(b.factor, 8.0);
    }

    #[test]
    fn percent_permille_ratio() {
        let pct = UNITS.iter().find(|s| s.code == "PERCENT").unwrap();
        let pml = UNITS.iter().find(|s| s.code == "PERMILLE").unwrap();
        assert!((pct.factor / pml.factor - 10.0).abs() < 1e-12);
    }

    #[test]
    fn wan_and_yi() {
        let wan = UNITS.iter().find(|s| s.code == "WAN-ZH").unwrap();
        let yi = UNITS.iter().find(|s| s.code == "YI-ZH").unwrap();
        assert!((yi.factor / wan.factor - 1e4).abs() < 1e-6);
    }
}
