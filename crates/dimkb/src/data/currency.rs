//! Currency-like quantity units (monetary amounts and rate prices).
//!
//! Money is not an SI quantity — its dimension vector is empty — but the
//! paper's KB models currency-like rate units (price per mass, per area,
//! per energy, fares, wages) because MWP corpora lean on them heavily.
//! Factors are relative to the yuan as the in-KB reference amount; rate
//! units carry the denominator's SI scaling so conversions inside one
//! kind (e.g. 元/度 vs 元/焦) stay coherent.

use crate::spec::{u, UnitSpec};

/// Currency and price-rate curated units.
pub const UNITS: &[UnitSpec] = &[
    u("YUAN", "yuan", "元", "¥", "Currency", 1.0, 30.0)
        .aliases(&["renminbi", "RMB", "CNY", "块"])
        .kw(&["money", "price", "china"]),
    u("JIAO-MONEY", "jiao", "角", "jiao", "Currency", 0.1, 10.0)
        .aliases(&["mao", "毛"])
        .kw(&["money", "dime", "change"]),
    u("FEN-MONEY", "fen", "分钱", "fen", "Currency", 0.01, 6.0)
        .aliases(&["cent of yuan"])
        .kw(&["money", "cent", "change"]),
    u("WAN-YUAN", "ten-thousand yuan", "万元", "万¥", "Currency", 1e4, 15.0)
        .aliases(&["wan yuan"])
        .kw(&["money", "salary", "statistics"]),
    u("YI-YUAN", "hundred-million yuan", "亿元", "亿¥", "Currency", 1e8, 10.0)
        .aliases(&["yi yuan"])
        .kw(&["money", "gdp", "statistics"]),
    u("YUAN-PER-KG", "yuan per kilogram", "元每千克", "¥/kg", "UnitPrice", 1.0, 8.0)
        .aliases(&["元每公斤"])
        .kw(&["price", "market", "produce"]),
    u("YUAN-PER-M2", "yuan per square metre", "元每平方米", "¥/m²", "PricePerArea", 1.0, 8.0)
        .aliases(&["yuan per square meter"])
        .kw(&["price", "housing", "real estate"]),
    u("YUAN-PER-L", "yuan per litre", "元每升", "¥/L", "PricePerVolume", 1000.0, 6.0)
        .aliases(&["yuan per liter"])
        .kw(&["price", "fuel", "gasoline"]),
    u("YUAN-PER-KWH", "yuan per kilowatt hour", "元每千瓦时", "¥/kWh", "EnergyPrice", 1.0 / 3.6e6, 8.0)
        .aliases(&["元每度"])
        .kw(&["price", "electricity", "tariff"]),
    u("YUAN-PER-HR", "yuan per hour", "元每小时", "¥/h", "Wage", 1.0 / 3600.0, 6.0)
        .aliases(&["hourly yuan"])
        .kw(&["wage", "hourly", "pay"]),
    u("YUAN-PER-KM", "yuan per kilometre", "元每千米", "¥/km", "FareRate", 0.001, 5.0)
        .aliases(&["yuan per kilometer", "元每公里"])
        .kw(&["fare", "taxi", "mileage"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yuan_denominations_scale_by_ten() {
        let by = |c: &str| UNITS.iter().find(|s| s.code == c).unwrap().factor;
        assert!((by("YUAN") / by("JIAO-MONEY") - 10.0).abs() < 1e-12);
        assert!((by("JIAO-MONEY") / by("FEN-MONEY") - 10.0).abs() < 1e-12);
    }

    #[test]
    fn electricity_price_uses_kwh_denominator() {
        let p = UNITS.iter().find(|s| s.code == "YUAN-PER-KWH").unwrap();
        assert!((p.factor * 3.6e6 - 1.0).abs() < 1e-9);
    }
}
