//! Electromagnetic units, including the CGS-Gaussian family.

use crate::spec::{u, UnitSpec};

/// Electromagnetic units.
pub const UNITS: &[UnitSpec] = &[
    // ---- charge ----------------------------------------------------------
    u("C", "coulomb", "库仑", "C", "ElectricCharge", 1.0, 40.0)
        .aliases(&["coulombs", "库"])
        .kw(&["charge", "electric", "si"])
        .prefixable(),
    u("AH", "ampere hour", "安时", "Ah", "BatteryCapacity", 3600.0, 45.0)
        .aliases(&["ampere-hour", "amp hour", "amp-hour"])
        .kw(&["battery", "capacity", "charge"])
        .prefixable(),
    u("E-CHARGE", "elementary charge", "基本电荷", "e", "ElectricCharge", 1.602_176_634e-19, 6.0)
        .kw(&["electron", "proton", "fundamental"]),
    u("STATC", "statcoulomb", "静库", "statC", "ElectricCharge", 3.335_640_951e-10, 1.0)
        .aliases(&["esu", "franklin"])
        .kw(&["cgs", "electrostatic"]),
    // ---- voltage ----------------------------------------------------------
    u("V", "volt", "伏特", "V", "Voltage", 1.0, 78.0)
        .aliases(&["volts", "伏"])
        .kw(&["voltage", "battery", "circuit", "si"])
        .prefixable(),
    u("STATV", "statvolt", "静伏", "statV", "BreakdownVoltage", 299.792_458, 1.0)
        .kw(&["cgs", "electrostatic"]),
    // ---- resistance / conductance -------------------------------------------
    u("OHM", "ohm", "欧姆", "Ω", "Resistance", 1.0, 55.0)
        .aliases(&["ohms", "欧"])
        .kw(&["resistance", "resistor", "circuit", "si"])
        .prefixable(),
    u("S-SIEMENS", "siemens", "西门子", "S", "Conductance", 1.0, 10.0)
        .aliases(&["mho", "西"])
        .kw(&["conductance", "circuit", "si"])
        .prefixable(),
    // ---- capacitance / inductance --------------------------------------------
    u("F-FARAD", "farad", "法拉", "F", "Capacitance", 1.0, 30.0)
        .aliases(&["farads", "法"])
        .kw(&["capacitor", "circuit", "si"])
        .prefixable(),
    u("H-HENRY", "henry", "亨利", "H", "Inductance", 1.0, 18.0)
        .aliases(&["henries", "henrys", "亨"])
        .kw(&["inductor", "coil", "si"])
        .prefixable(),
    // ---- magnetism ---------------------------------------------------------------
    u("WB", "weber", "韦伯", "Wb", "MagneticFlux", 1.0, 8.0)
        .aliases(&["webers", "韦"])
        .kw(&["magnetic", "flux", "si"])
        .prefixable(),
    u("MX", "maxwell", "麦克斯韦", "Mx", "MagneticFlux", 1e-8, 2.0)
        .aliases(&["maxwells"])
        .kw(&["cgs", "magnetic", "flux"]),
    u("T-TESLA", "tesla", "特斯拉", "T", "MagneticFluxDensity", 1.0, 35.0)
        .aliases(&["teslas", "特"])
        .kw(&["magnetic", "field", "mri", "si"])
        .prefixable(),
    u("GAUSS", "gauss", "高斯", "G", "MagneticFluxDensity", 1e-4, 12.0)
        .aliases(&["gausses", "Gs"])
        .kw(&["cgs", "magnetic", "field"]),
    u("A-PER-M", "ampere per metre", "安培每米", "A/m", "MagneticFieldStrength", 1.0, 4.0)
        .aliases(&["ampere per meter", "A/m"])
        .kw(&["magnetic", "field", "strength"]),
    u("OERSTED", "oersted", "奥斯特", "Oe", "MagneticFieldStrength", 79.577_471_545_947_67, 3.0)
        .aliases(&["oersteds"])
        .kw(&["cgs", "magnetic", "coercivity"]),
    // ---- fields / densities --------------------------------------------------------
    u("V-PER-M", "volt per metre", "伏特每米", "V/m", "ElectricFieldStrength", 1.0, 6.0)
        .aliases(&["volt per meter", "V/m"])
        .kw(&["electric", "field", "strength"]),
    u("A-PER-M2", "ampere per square metre", "安培每平方米", "A/m²", "CurrentDensity", 1.0, 3.0)
        .aliases(&["ampere per square meter", "A/m2"])
        .kw(&["current", "density", "electrode"]),
    u("C-PER-M3", "coulomb per cubic metre", "库仑每立方米", "C/m³", "ElectricChargeDensity", 1.0, 1.0)
        .aliases(&["C/m3"])
        .kw(&["charge", "density", "plasma"]),
    u("OHM-M", "ohm metre", "欧姆米", "Ω·m", "Resistivity", 1.0, 5.0)
        .aliases(&["ohm meter", "ohm-m"])
        .kw(&["resistivity", "material", "conductor"]),
    u("S-PER-M", "siemens per metre", "西门子每米", "S/m", "ElectricalConductivity", 1.0, 4.0)
        .aliases(&["siemens per meter", "S/m"])
        .kw(&["conductivity", "electrolyte", "material"]),
    u("F-PER-M", "farad per metre", "法拉每米", "F/m", "Permittivity", 1.0, 2.0)
        .aliases(&["farad per meter", "F/m"])
        .kw(&["permittivity", "dielectric", "vacuum"]),
    u("H-PER-M", "henry per metre", "亨利每米", "H/m", "Permeability", 1.0, 2.0)
        .aliases(&["henry per meter", "H/m"])
        .kw(&["permeability", "magnetic", "vacuum"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauss_is_1e_minus_4_tesla() {
        let g = UNITS.iter().find(|s| s.code == "GAUSS").unwrap();
        assert_eq!(g.factor, 1e-4);
    }

    #[test]
    fn ampere_hour_is_3600_coulombs() {
        let ah = UNITS.iter().find(|s| s.code == "AH").unwrap();
        assert_eq!(ah.factor, 3600.0);
    }

    #[test]
    fn si_electrical_units_are_coherent() {
        for code in ["V", "OHM", "F-FARAD", "H-HENRY", "WB", "T-TESLA", "S-SIEMENS"] {
            let unit = UNITS.iter().find(|s| s.code == code).unwrap();
            assert_eq!(unit.factor, 1.0, "{code} should be coherent");
        }
    }
}
