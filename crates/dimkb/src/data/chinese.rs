//! Chinese traditional (市制) units — the paper manually adds these to cater
//! to the Chinese context (§III-A2).

use crate::spec::{u, UnitSpec};

/// Chinese market-system units.
pub const UNITS: &[UnitSpec] = &[
    // ---- length (市制) ------------------------------------------------------
    u("LI-ZH", "li", "里", "里", "Length", 500.0, 45.0)
        .aliases(&["市里", "华里", "chinese mile"])
        .kw(&["chinese", "road", "traditional"])
        .desc("the Chinese mile of 500 metres"),
    u("ZHANG-ZH", "zhang", "丈", "丈", "Length", 10.0 / 3.0, 12.0)
        .aliases(&["市丈"])
        .kw(&["chinese", "traditional", "construction"]),
    u("CHI-ZH", "chi", "尺", "尺", "Length", 1.0 / 3.0, 35.0)
        .aliases(&["市尺", "chinese foot"])
        .kw(&["chinese", "traditional", "tailor"]),
    u("CUN-ZH", "cun", "寸", "寸", "Length", 1.0 / 30.0, 28.0)
        .aliases(&["市寸", "chinese inch"])
        .kw(&["chinese", "traditional", "small"]),
    u("FEN-LEN-ZH", "fen (length)", "分(长度)", "分", "Length", 1.0 / 300.0, 6.0)
        .aliases(&["市分"])
        .kw(&["chinese", "traditional", "tiny"]),
    // ---- mass (市制) ---------------------------------------------------------
    u("DAN-ZH", "dan", "担", "担", "Weight", 50.0, 10.0)
        .aliases(&["市担", "picul", "石"])
        .kw(&["chinese", "grain", "load"]),
    u("JIN-ZH", "jin", "斤", "斤", "Mass", 0.5, 80.0)
        .aliases(&["市斤", "catty", "chinese pound"])
        .kw(&["chinese", "market", "food", "weigh"]),
    u("LIANG-ZH", "liang", "两", "两", "Mass", 0.05, 50.0)
        .aliases(&["市两", "tael", "chinese ounce"])
        .kw(&["chinese", "market", "medicine", "gold"]),
    u("QIAN-ZH", "qian", "钱", "钱", "Mass", 0.005, 15.0)
        .aliases(&["市钱", "mace"])
        .kw(&["chinese", "medicine", "herb"]),
    u("GONGJIN-ZH", "gongjin", "公斤", "公斤", "Mass", 1.0, 88.0)
        .aliases(&["kilogram (chinese)"])
        .kw(&["chinese", "market", "weigh"])
        .desc("the Chinese name for the kilogram"),
    // ---- area (市制) -----------------------------------------------------------
    u("MU-ZH", "mu", "亩", "亩", "LandArea", 2000.0 / 3.0, 52.0)
        .aliases(&["市亩", "chinese acre"])
        .kw(&["chinese", "farm", "land", "field"]),
    u("QING-ZH", "qing", "顷", "顷", "LandArea", 200_000.0 / 3.0, 5.0)
        .aliases(&["市顷", "公顷(市)"])
        .kw(&["chinese", "land", "estate"]),
    u("FEN-AREA-ZH", "fen (area)", "分(地)", "分地", "Area", 200.0 / 3.0, 8.0)
        .kw(&["chinese", "land", "plot"]),
    // ---- volume (市制) ----------------------------------------------------------
    u("SHENG-ZH", "sheng", "市升", "市升", "Volume", 1e-3, 10.0)
        .aliases(&["chinese litre"])
        .kw(&["chinese", "grain", "rice"]),
    u("DOU-ZH", "dou", "斗", "斗", "Volume", 1e-2, 7.0)
        .aliases(&["市斗"])
        .kw(&["chinese", "grain", "traditional"]),
    u("DAN-VOL-ZH", "dan (volume)", "石(容量)", "石", "Volume", 1e-1, 3.0)
        .aliases(&["市石"])
        .kw(&["chinese", "grain", "historical"]),
    u("XUN-ZH", "xun", "寻", "寻", "Depth", 1.6, 1.0)
        .aliases(&["chinese fathom"])
        .kw(&["chinese", "water", "depth"]),
    u("TUO-ZH", "tuo", "庹", "庹", "Span", 1.67, 0.8)
        .aliases(&["arm span"])
        .kw(&["chinese", "arms", "body"]),
    u("ZHA-ZH", "zha", "拃", "拃", "Span", 0.166_7, 0.8)
        .aliases(&["hand stretch"])
        .kw(&["chinese", "hand", "body"]),
    u("LIAN-ZH", "lian", "链(海)", "链", "Distance", 185.2, 0.5)
        .aliases(&["chinese cable"])
        .kw(&["nautical", "chinese", "chart"]),
    u("SIMI", "simi", "丝米", "丝米", "Thickness", 1e-5, 1.5)
        .aliases(&["si metre"])
        .kw(&["chinese", "decimal", "fine"]),
    u("HAOMI", "haomi", "毫米丝", "毫丝", "Thickness", 1e-4, 0.8)
        .aliases(&["hao metre"])
        .kw(&["chinese", "decimal", "fine"]),
    u("PING-ZH", "ping", "坪", "坪", "FloorArea", 3.305_785, 3.0)
        .aliases(&["pyeong"])
        .kw(&["housing", "taiwan", "floor"]),
    u("WAN", "wan (myriad)", "万", "万", "Count", 1e4, 20.0)
        .aliases(&["ten thousand"])
        .kw(&["chinese", "numeral", "myriad"]),
    u("WAN-REN", "ten-thousand persons", "万人", "万人", "Population", 1e4, 8.0)
        .aliases(&["wan ren"])
        .kw(&["population", "statistics", "city"]),
    u("WAN-HU", "ten-thousand households", "万户", "万户", "Households", 1e4, 5.0)
        .aliases(&["wan hu"])
        .kw(&["households", "statistics", "census"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jin_is_half_kilogram() {
        let jin = UNITS.iter().find(|s| s.code == "JIN-ZH").unwrap();
        assert_eq!(jin.factor, 0.5);
    }

    #[test]
    fn jin_is_ten_liang() {
        let jin = UNITS.iter().find(|s| s.code == "JIN-ZH").unwrap();
        let liang = UNITS.iter().find(|s| s.code == "LIANG-ZH").unwrap();
        assert!((jin.factor / liang.factor - 10.0).abs() < 1e-12);
    }

    #[test]
    fn fifteen_mu_is_one_hectare() {
        let mu = UNITS.iter().find(|s| s.code == "MU-ZH").unwrap();
        assert!((mu.factor * 15.0 - 1e4).abs() < 1e-9);
    }

    #[test]
    fn li_is_500_metres() {
        let li = UNITS.iter().find(|s| s.code == "LI-ZH").unwrap();
        assert_eq!(li.factor, 500.0);
    }
}
