//! The quantity-kind taxonomy of `DimUnitKB`.
//!
//! Top-level kinds carry the dimension; `narrow` sub-kinds mirror QUDT's
//! fine-grained kinds (e.g. `Height` and `Wavelength` are both `Length`).
//! Narrow kinds matter for dimension prediction: natural-language predicates
//! ("height", "top speed") name narrow kinds, not dimensions.

use crate::spec::{kind, KindSpec};

/// All quantity-kind specifications.
pub const KINDS: &[KindSpec] = &[
    // ---- the seven base quantities + dimensionless -------------------
    kind("Length", "长度", "L").narrow(&[
        ("Distance", "距离"),
        ("Height", "高度"),
        ("Width", "宽度"),
        ("Depth", "深度"),
        ("Thickness", "厚度"),
        ("Radius", "半径"),
        ("Diameter", "直径"),
        ("Wavelength", "波长"),
        ("Altitude", "海拔"),
        ("Perimeter", "周长"),
        ("Displacement", "位移"),
        ("FocalLength", "焦距"),
        ("Elevation", "标高"),
        ("Breadth", "幅宽"),
        ("Span", "跨度"),
        ("ScreenSize", "屏幕尺寸"),
        ("Mileage", "里程"),
    ]),
    kind("Mass", "质量", "M").narrow(&[
        ("Weight", "重量"),
        ("BodyMass", "体重"),
        ("Payload", "载重"),
        ("DryMass", "干重"),
        ("GrossMass", "毛重"),
        ("NetMass", "净重"),
    ]),
    kind("Time", "时间", "T").narrow(&[
        ("Duration", "时长"),
        ("Period", "周期"),
        ("Age", "年龄"),
        ("Lifetime", "寿命"),
        ("HalfLife", "半衰期"),
        ("ResponseTime", "响应时间"),
        ("Delay", "延迟"),
    ]),
    kind("ElectricCurrent", "电流", "E").narrow(&[
        ("RatedCurrent", "额定电流"),
        ("LeakageCurrent", "漏电流"),
    ]),
    kind("Temperature", "温度", "H").narrow(&[
        ("BodyTemperature", "体温"),
        ("BoilingPoint", "沸点"),
        ("MeltingPoint", "熔点"),
        ("AmbientTemperature", "环境温度"),
    ]),
    kind("AmountOfSubstance", "物质的量", "A"),
    kind("LuminousIntensity", "发光强度", "I"),
    kind("Dimensionless", "无量纲", "").narrow(&[
        ("RefractiveIndex", "折射率"),
        ("MachNumber", "马赫数"),
        ("ReynoldsNumber", "雷诺数"),
        ("StrainValue", "应变"),
    ]),
    // ---- geometry ----------------------------------------------------
    kind("Area", "面积", "L2").narrow(&[
        ("LandArea", "土地面积"),
        ("SurfaceArea", "表面积"),
        ("CrossSection", "横截面积"),
        ("FloorArea", "建筑面积"),
    ]),
    kind("Volume", "体积", "L3").narrow(&[
        ("Capacity", "容量"),
        ("LiquidVolume", "液体体积"),
        ("EngineDisplacement", "排量"),
        ("StorageVolume", "储存体积"),
    ]),
    kind("PlaneAngle", "平面角", "").narrow(&[
        ("Latitude", "纬度"),
        ("Longitude", "经度"),
        ("Inclination", "倾角"),
    ]),
    kind("SolidAngle", "立体角", ""),
    // ---- kinematics ----------------------------------------------------
    kind("Velocity", "速度", "L T-1").narrow(&[
        ("Speed", "速率"),
        ("WindSpeed", "风速"),
        ("FlowVelocity", "流速"),
        ("TopSpeed", "最高速度"),
        ("OrbitalVelocity", "轨道速度"),
    ]),
    kind("AngularVelocity", "角速度", "T-1"),
    kind("Acceleration", "加速度", "L T-2").narrow(&[
        ("GravitationalAcceleration", "重力加速度"),
    ]),
    kind("AngularAcceleration", "角加速度", "T-2"),
    kind("Frequency", "频率", "T-1").narrow(&[
        ("RotationalSpeed", "转速"),
        ("ClockRate", "时钟频率"),
        ("HeartRate", "心率"),
        ("SamplingRate", "采样率"),
    ]),
    kind("Wavenumber", "波数", "L-1"),
    kind("VolumeFlowRate", "体积流量", "L3 T-1").narrow(&[
        ("WaterDischarge", "流量"),
    ]),
    kind("MassFlowRate", "质量流量", "M T-1"),
    // ---- mechanics ----------------------------------------------------
    kind("Force", "力", "L M T-2").narrow(&[
        ("Thrust", "推力"),
        ("Tension", "张力"),
        ("Load", "载荷"),
        ("Friction", "摩擦力"),
    ]),
    kind("Pressure", "压强", "L-1 M T-2").narrow(&[
        ("Stress", "应力"),
        ("BloodPressure", "血压"),
        ("AtmosphericPressure", "大气压"),
        ("TirePressure", "胎压"),
        ("VaporPressure", "蒸气压"),
    ]),
    kind("Energy", "能量", "L2 M T-2").narrow(&[
        ("Work", "功"),
        ("Heat", "热量"),
        ("KineticEnergy", "动能"),
        ("PotentialEnergy", "势能"),
        ("FoodEnergy", "食物能量"),
        ("ElectricityConsumption", "耗电量"),
    ]),
    kind("Power", "功率", "L2 M T-3").narrow(&[
        ("ElectricPower", "电功率"),
        ("RadiantPower", "辐射功率"),
        ("EnginePower", "发动机功率"),
        ("RatedPower", "额定功率"),
    ]),
    kind("Momentum", "动量", "L M T-1"),
    kind("AngularMomentum", "角动量", "L2 M T-1"),
    kind("MassDensity", "密度", "L-3 M").narrow(&[
        ("BulkDensity", "堆积密度"),
        ("AirDensity", "空气密度"),
    ]),
    kind("SurfaceDensity", "面密度", "L-2 M"),
    kind("LinearDensity", "线密度", "L-1 M"),
    kind("SpecificVolume", "比容", "L3 M-1"),
    kind("DynamicViscosity", "动力粘度", "L-1 M T-1"),
    kind("KinematicViscosity", "运动粘度", "L2 T-1"),
    kind("ForcePerLength", "线力", "M T-2").narrow(&[
        ("SurfaceTension", "表面张力"),
        ("SpringConstant", "弹簧常数"),
    ]),
    kind("MomentOfInertia", "转动惯量", "L2 M"),
    kind("Torque", "力矩", "L2 M T-2"),
    kind("EnergyDensity", "能量密度", "L-1 M T-2"),
    kind("SpecificEnergy", "比能", "L2 T-2"),
    // ---- thermal ----------------------------------------------------
    kind("HeatCapacity", "热容", "L2 M T-2 H-1"),
    kind("SpecificHeatCapacity", "比热容", "L2 T-2 H-1"),
    kind("ThermalConductivity", "导热系数", "L M T-3 H-1"),
    kind("HeatFluxDensity", "热流密度", "M T-3"),
    kind("Entropy", "熵", "L2 M T-2 H-1"),
    kind("ThermalExpansion", "热膨胀系数", "H-1"),
    kind("TemperatureGradient", "温度梯度", "L-1 H"),
    kind("ThermalResistance", "热阻", "L-2 M-1 T3 H"),
    // ---- electromagnetism ---------------------------------------------
    kind("ElectricCharge", "电荷", "T E").narrow(&[
        ("BatteryCapacity", "电池容量"),
    ]),
    kind("Voltage", "电压", "L2 M T-3 E-1").narrow(&[
        ("RatedVoltage", "额定电压"),
        ("BreakdownVoltage", "击穿电压"),
    ]),
    kind("Resistance", "电阻", "L2 M T-3 E-2"),
    kind("Conductance", "电导", "L-2 M-1 T3 E2"),
    kind("Capacitance", "电容", "L-2 M-1 T4 E2"),
    kind("Inductance", "电感", "L2 M T-2 E-2"),
    kind("MagneticFlux", "磁通量", "L2 M T-2 E-1"),
    kind("MagneticFluxDensity", "磁感应强度", "M T-2 E-1"),
    kind("MagneticFieldStrength", "磁场强度", "L-1 E"),
    kind("ElectricFieldStrength", "电场强度", "L M T-3 E-1"),
    kind("CurrentDensity", "电流密度", "L-2 E"),
    kind("ElectricChargeDensity", "电荷密度", "L-3 T E"),
    kind("Resistivity", "电阻率", "L3 M T-3 E-2"),
    kind("ElectricalConductivity", "电导率", "L-3 M-1 T3 E2"),
    kind("Permittivity", "介电常数", "L-3 M-1 T4 E2"),
    kind("Permeability", "磁导率", "L M T-2 E-2"),
    // ---- light & radiation --------------------------------------------
    kind("LuminousFlux", "光通量", "I"),
    kind("Illuminance", "照度", "L-2 I"),
    kind("Luminance", "亮度", "L-2 I"),
    kind("Radioactivity", "放射性活度", "T-1"),
    kind("AbsorbedDose", "吸收剂量", "L2 T-2"),
    kind("DoseEquivalent", "剂量当量", "L2 T-2"),
    kind("RadiationExposure", "照射量", "M-1 T E"),
    kind("RadiantIntensity", "辐射强度", "L2 M T-3"),
    kind("Irradiance", "辐照度", "M T-3").narrow(&[
        ("SolarIrradiance", "太阳辐照度"),
    ]),
    // ---- chemistry ----------------------------------------------------
    kind("Concentration", "浓度", "L-3 A").narrow(&[
        ("BloodGlucose", "血糖浓度"),
    ]),
    kind("MassConcentration", "质量浓度", "L-3 M"),
    kind("MolarMass", "摩尔质量", "M A-1"),
    kind("MolarVolume", "摩尔体积", "L3 A-1"),
    kind("MolarEnergy", "摩尔能", "L2 M T-2 A-1"),
    kind("MolarHeatCapacity", "摩尔热容", "L2 M T-2 H-1 A-1"),
    kind("CatalyticActivity", "催化活性", "T-1 A"),
    kind("Molality", "质量摩尔浓度", "M-1 A"),
    // ---- information & counting ---------------------------------------
    kind("Information", "信息量", "").narrow(&[
        ("StorageCapacity", "存储容量"),
        ("MemorySize", "内存大小"),
    ]),
    kind("DataRate", "数据速率", "T-1").narrow(&[
        ("Bandwidth", "带宽"),
        ("DownloadSpeed", "下载速度"),
    ]),
    kind("Ratio", "比率", "").narrow(&[
        ("Efficiency", "效率"),
        ("Humidity", "湿度"),
        ("Slope", "坡度"),
        ("AlcoholContent", "酒精度"),
        ("MassFraction", "质量分数"),
    ]),
    kind("Count", "数量", "").narrow(&[
        ("Population", "人口"),
        ("Households", "户数"),
    ]),
    kind("FuelEconomy", "燃油经济性", "L-2"),
    kind("FuelConsumptionPerDistance", "油耗", "L2"),
    kind("SoundLevel", "声级", ""),
    // ---- specialist derived kinds (the QUDT-style long tail) -----------
    kind("Jerk", "加加速度", "L T-3"),
    kind("ForceRate", "力变化率", "L M T-3"),
    kind("Action", "作用量", "L2 M T-1"),
    kind("SurfaceEnergy", "表面能", "M T-2"),
    kind("PowerDensity", "功率密度", "L-1 M T-3"),
    kind("MassAttenuation", "质量衰减系数", "L2 M-1"),
    kind("VolumetricHeatCapacity", "体积热容", "L-1 M T-2 H-1"),
    kind("HeatTransferCoefficient", "传热系数", "M T-3 H-1"),
    kind("ThermalInsulance", "热绝缘系数", "M-1 T3 H"),
    kind("AbsorbedDoseRate", "吸收剂量率", "L2 T-3"),
    kind("DoseRate", "剂量率", "L2 T-3"),
    kind("MagneticMoment", "磁矩", "L2 E"),
    kind("ElectricDipoleMoment", "电偶极矩", "L T E"),
    kind("MagneticVectorPotential", "磁矢势", "L M T-2 E-1"),
    kind("SurfaceChargeDensity", "面电荷密度", "L-2 T E"),
    kind("ElectronMobility", "电子迁移率", "M-1 T2 E"),
    kind("MolarConductivity", "摩尔电导率", "M-1 T3 E2 A-1"),
    kind("SeebeckCoefficient", "塞贝克系数", "L2 M T-3 E-1 H-1"),
    kind("LuminousEnergy", "光能", "I T"),
    kind("LuminousEfficacy", "发光效率", "L-2 M-1 T3 I"),
    kind("Radiance", "辐射亮度", "M T-3"),
    kind("SpectralIrradiance", "光谱辐照度", "L-1 M T-3"),
    kind("SpectralFluxDensity", "光谱通量密度", "M T-2"),
    kind("CatalyticConcentration", "催化浓度", "L-3 T-1 A"),
    kind("Acidity", "酸碱度", ""),
    kind("MolarFlux", "摩尔通量", "L-2 T-1 A"),
    kind("Resolution", "分辨率", "L-1"),
    kind("GravityGradient", "重力梯度", "T-2"),
    kind("AcousticImpedance", "声阻抗", "L-2 M T-1"),
    kind("Loudness", "响度", ""),
    // ---- paper-scale growth: time-derivative kinds ---------------------
    kind("PressureRate", "压强变化率", "L-1 M T-3"),
    kind("TemperatureRate", "温度变化率", "H T-1"),
    kind("CurrentRate", "电流变化率", "E T-1"),
    kind("VoltageSlewRate", "电压摆率", "L2 M T-4 E-1"),
    kind("FrequencyDrift", "频率漂移", "T-2"),
    kind("AngularJerk", "角加加速度", "T-3"),
    // ---- per-mass (specific) kinds -------------------------------------
    kind("SpecificEnthalpy", "比焓", "L2 T-2"),
    kind("SpecificEntropy", "比熵", "L2 T-2 H-1"),
    kind("SpecificPower", "比功率", "L2 T-3"),
    kind("SpecificImpulse", "比冲", "T"),
    kind("CalorificValue", "热值", "L2 T-2"),
    kind("SpecificActivity", "比活度", "M-1 T-1"),
    // ---- per-area flux kinds -------------------------------------------
    kind("RadiantExposure", "辐射曝量", "M T-2"),
    kind("MassFlux", "质量通量", "L-2 M T-1"),
    kind("PhotonFlux", "光子通量", "L-2 T-1"),
    kind("LuminousExitance", "光出射度", "L-2 I"),
    // ---- electromagnetic long tail -------------------------------------
    kind("MagnetomotiveForce", "磁动势", "E"),
    kind("MagneticReluctance", "磁阻", "L-2 M-1 T2 E2"),
    kind("ElectricFlux", "电通量", "L3 M T-3 E-1"),
    kind("ElectricElastance", "电弹性", "L2 M T-4 E-2"),
    kind("Magnetization", "磁化强度", "L-1 E"),
    kind("HallCoefficient", "霍尔系数", "L3 T-1 E-1"),
    kind("ChargeToMassRatio", "荷质比", "M-1 T E"),
    kind("LinearChargeDensity", "线电荷密度", "L-1 T E"),
    kind("SheetResistance", "方块电阻", "L2 M T-3 E-2"),
    kind("ApparentPower", "视在功率", "L2 M T-3"),
    kind("ReactivePower", "无功功率", "L2 M T-3"),
    // ---- mechanics long tail -------------------------------------------
    kind("Compressibility", "压缩系数", "L M-1 T2"),
    kind("TorsionalStiffness", "扭转刚度", "L2 M T-2"),
    kind("DampingCoefficient", "阻尼系数", "M T-1"),
    kind("AreaMomentOfInertia", "截面惯性矩", "L4"),
    kind("Hardness", "硬度", "L-1 M T-2"),
    kind("ImpactStrength", "冲击强度", "M T-2"),
    // ---- fluid & thermal long tail -------------------------------------
    kind("ThermalDiffusivity", "热扩散率", "L2 T-1"),
    kind("VolumetricFlux", "体积通量", "L T-1"),
    kind("CoolingCapacity", "制冷量", "L2 M T-3"),
    kind("ThermalTransmittance", "传热系数U值", "M T-3 H-1"),
    kind("LatentHeat", "潜热", "L2 T-2"),
    kind("WaterHardness", "水硬度", "L-3 M"),
    kind("Turbidity", "浊度", ""),
    kind("SoundAbsorption", "吸声量", "L2"),
    kind("SoundIntensity", "声强", "M T-3"),
    kind("IntrinsicPermeability", "渗透率", "L2"),
    // ---- optics & photometry -------------------------------------------
    kind("OpticalPower", "光焦度", "L-1"),
    kind("LuminousExposure", "曝光量", "L-2 T I"),
    // ---- chemistry & biochemistry --------------------------------------
    kind("ReactionRate", "反应速率", "L-3 T-1 A"),
    kind("Osmolarity", "渗透浓度", "L-3 A"),
    kind("Osmolality", "渗透质量摩尔浓度", "M-1 A"),
    kind("EnzymeActivity", "酶活性", "T-1 A"),
    kind("MolarEntropy", "摩尔熵", "L2 M T-2 H-1 A-1"),
    kind("DiffusionCoefficient", "扩散系数", "L2 T-1"),
    kind("SedimentationCoefficient", "沉降系数", "T"),
    kind("Solubility", "溶解度", "L-3 M"),
    // ---- radiation protection ------------------------------------------
    kind("ExposureRate", "照射率", "M-1 E"),
    kind("ActivityConcentration", "活度浓度", "L-3 T-1"),
    kind("SurfaceActivity", "表面活度", "L-2 T-1"),
    kind("EquivalentDoseRate", "当量剂量率", "L2 T-3"),
    // ---- agriculture & environment -------------------------------------
    kind("CropYield", "单位面积产量", "L-2 M"),
    kind("StockingDensity", "载畜密度", "L-2"),
    kind("ApplicationRate", "施用量", "L"),
    kind("Rainfall", "降水量", "L"),
    kind("RainfallRate", "降水强度", "L T-1"),
    kind("EmissionIntensity", "排放强度", "L-1 M"),
    kind("CarbonIntensity", "碳强度", "L-2 T2"),
    kind("ParticulateConcentration", "颗粒物浓度", "L-3 M"),
    kind("Salinity", "盐度", ""),
    kind("SugarContent", "糖度", ""),
    // ---- medicine & physiology -----------------------------------------
    kind("DrugDose", "给药剂量", ""),
    kind("InfusionRate", "输液速率", "L3 T-1"),
    kind("RespiratoryRate", "呼吸频率", "T-1"),
    kind("BoneDensity", "骨密度", "L-2 M"),
    kind("BodyMassIndex", "体质指数", "L-2 M"),
    kind("BloodAlcohol", "血液酒精浓度", "L-3 M"),
    kind("HemoglobinLevel", "血红蛋白浓度", "L-3 M"),
    kind("Prevalence", "患病率", ""),
    // ---- computing & information ---------------------------------------
    kind("InstructionRate", "指令速率", "T-1"),
    kind("FrameRate", "帧率", "T-1"),
    kind("SymbolRate", "符号速率", "T-1"),
    kind("ArealDataDensity", "数据面密度", "L-2"),
    kind("InformationEntropy", "信息熵", ""),
    // ---- currency-like rate kinds --------------------------------------
    kind("Currency", "货币", ""),
    kind("UnitPrice", "单价", "M-1"),
    kind("PricePerArea", "面积单价", "L-2"),
    kind("PricePerVolume", "体积单价", "L-3"),
    kind("EnergyPrice", "能源价格", "L-2 M-1 T2"),
    kind("Wage", "工资率", "T-1"),
    kind("FareRate", "运价率", "L-1"),
    // ---- astronomy & geoscience ----------------------------------------
    kind("ProperMotion", "自行", "T-1"),
    kind("ColumnDensity", "柱密度", "L-2"),
    kind("GeothermalGradient", "地温梯度", "L-1 H"),
    kind("NeutronFlux", "中子注量率", "L-2 T-1"),
    // ---- built environment & society ------------------------------------
    kind("PumpHead", "扬程", "L"),
    kind("Visibility", "能见度", "L"),
    kind("CloudCover", "云量", ""),
    kind("AirChangeRate", "换气率", "T-1"),
    kind("CrowdDensity", "人群密度", "L-2"),
    kind("TrafficFlow", "交通流量", "T-1"),
    kind("TrafficDensity", "交通密度", "L-1"),
    kind("PopulationDensity", "人口密度", "L-2"),
    kind("BirthRate", "出生率", "T-1"),
    kind("ChargeRate", "充放电倍率", "T-1"),
    kind("Curvature", "曲率", "L-1"),
    kind("StrainRate", "应变速率", "T-1"),
    kind("ShearRate", "剪切速率", "T-1"),
    kind("AbsorptionCoefficient", "吸收系数", "L-1"),
    kind("Fineness", "成色", ""),
    kind("TypographicSize", "字号", "L"),
    // ---- everyday & applied kinds ---------------------------------------
    kind("Pace", "配速", "L-1 T"),
    kind("SpecificFuelConsumption", "燃油消耗率", "L-2 T2"),
    kind("PhotonFluxDensity", "光量子通量密度", "L-2 T-1 A"),
    kind("VapourTransmissionRate", "透湿率", "L-2 M T-1"),
    kind("SpecificSurfaceArea", "比表面积", "L2 M-1"),
    kind("CationExchange", "阳离子交换量", "M-1 A"),
    kind("PowerToWeight", "功率重量比", "L2 T-3"),
    kind("PerCapitaArea", "人均面积", "L2"),
    kind("DailyDose", "日剂量", "M T-1"),
    kind("CorrosionRate", "腐蚀速率", "L T-1"),
    kind("SedimentTransport", "输沙率", "M T-1"),
    kind("Evapotranspiration", "蒸散量", "L T-1"),
    kind("OxygenUptake", "摄氧量", "L3 M-1 T-1"),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::DimVec;
    use std::collections::HashSet;

    #[test]
    fn all_dims_parse() {
        for k in KINDS {
            assert!(DimVec::parse(k.dim).is_ok(), "kind {} has bad dim {:?}", k.name_en, k.dim);
        }
    }

    #[test]
    fn kind_names_are_unique_including_narrow() {
        let mut seen = HashSet::new();
        for k in KINDS {
            assert!(seen.insert(k.name_en), "duplicate kind {}", k.name_en);
            for (n, _) in k.narrow {
                assert!(seen.insert(*n), "duplicate narrow kind {n}");
            }
        }
    }

    #[test]
    fn taxonomy_is_substantial() {
        let total: usize = KINDS.iter().map(|k| 1 + k.narrow.len()).sum();
        assert!(total >= 120, "got {total} kinds");
    }

    #[test]
    fn energy_and_torque_share_dimension_but_not_kind() {
        let energy = KINDS.iter().find(|k| k.name_en == "Energy").unwrap();
        let torque = KINDS.iter().find(|k| k.name_en == "Torque").unwrap();
        assert_eq!(
            DimVec::parse(energy.dim).unwrap(),
            DimVec::parse(torque.dim).unwrap()
        );
    }
}
