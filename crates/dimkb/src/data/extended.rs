//! Extended long-tail units: astronomy, maritime, apothecary, historical,
//! natural-unit systems, and additional Chinese market units — the breadth
//! that pushes DimUnitKB toward QUDT-scale coverage.

use crate::spec::{u, UnitSpec};

/// Extended long-tail units.
pub const UNITS: &[UnitSpec] = &[
    // ---- lengths: physics & history -------------------------------------
    u("FERMI", "fermi", "费米", "fm.", "Length", 1e-15, 2.0)
        .aliases(&["fermis"])
        .kw(&["nuclear", "femtometre", "particle"]),
    u("BOHR", "bohr radius", "玻尔半径", "a₀", "Radius", 5.291_772_109e-11, 1.5)
        .aliases(&["bohr"])
        .kw(&["atomic", "hydrogen", "quantum"]),
    u("PLANCK-L", "planck length", "普朗克长度", "ℓP", "Length", 1.616_255e-35, 1.0)
        .kw(&["planck", "quantum", "gravity"]),
    u("ROD", "rod", "杆", "rd.", "Length", 5.0292, 1.5)
        .aliases(&["perch", "pole"])
        .kw(&["survey", "old", "imperial"]),
    u("CHAIN", "chain", "测链", "ch", "Perimeter", 20.1168, 2.0)
        .aliases(&["chains", "gunter's chain"])
        .kw(&["survey", "cricket", "imperial"]),
    u("LEAGUE", "league", "里格", "lea", "Distance", 4828.032, 2.0)
        .aliases(&["leagues"])
        .kw(&["historical", "travel", "sea"]),
    u("SMOOT", "smoot", "斯穆特", "smoot", "Length", 1.702, 0.5)
        .aliases(&["smoots"])
        .kw(&["mit", "bridge", "joke"]),
    u("RACK-U", "rack unit", "机架单位", "U", "Length", 0.04445, 4.0)
        .aliases(&["rack units"])
        .kw(&["server", "datacenter", "rack"]),
    u("EARTH-RADIUS", "earth radius", "地球半径", "R⊕", "Radius", 6.371e6, 2.0)
        .aliases(&["earth radii"])
        .kw(&["planet", "astronomy", "geodesy"]),
    // ---- mass: troy & apothecary -------------------------------------------
    u("OZT", "troy ounce", "金衡盎司", "ozt", "Mass", 0.031_103_476_8, 8.0)
        .aliases(&["troy ounces"])
        .kw(&["gold", "silver", "bullion"]),
    u("DWT", "pennyweight", "英钱", "dwt", "Mass", 1.555_173_84e-3, 1.0)
        .aliases(&["pennyweights"])
        .kw(&["jewellery", "troy", "old"]),
    u("SCRUPLE", "scruple", "英分", "℈", "Mass", 1.295_978_2e-3, 0.5)
        .aliases(&["scruples"])
        .kw(&["apothecary", "pharmacy", "old"]),
    u("QUINTAL", "quintal", "公担", "q", "DryMass", 100.0, 4.0)
        .aliases(&["quintals", "centner"])
        .kw(&["grain", "agriculture", "market"]),
    u("PLANCK-M", "planck mass", "普朗克质量", "mP", "Mass", 2.176_434e-8, 0.5)
        .kw(&["planck", "quantum", "gravity"]),
    // ---- time: physics & whimsy ----------------------------------------------
    u("SHAKE", "shake", "息", "shake", "Delay", 1e-8, 0.5)
        .aliases(&["shakes"])
        .kw(&["nuclear", "fast", "physics"]),
    u("JIFFY", "jiffy", "一瞬", "jiffy", "ResponseTime", 1.0 / 60.0, 1.0)
        .aliases(&["jiffies"])
        .kw(&["frame", "tick", "informal"]),
    u("SIDEREAL-DAY", "sidereal day", "恒星日", "d★", "Period", 86_164.090_5, 1.0)
        .aliases(&["sidereal days"])
        .kw(&["astronomy", "rotation", "star"]),
    u("PLANCK-T", "planck time", "普朗克时间", "tP", "Time", 5.391_247e-44, 0.5)
        .kw(&["planck", "quantum", "gravity"]),
    // ---- volume: dry, cask & timber ---------------------------------------------
    u("PECK", "peck", "配克", "pk", "Volume", 8.809_767_541_72e-3, 1.5)
        .aliases(&["pecks"])
        .kw(&["dry", "apples", "harvest"]),
    u("CORD", "cord", "考得", "cd.", "Volume", 3.624_556_363_776, 1.5)
        .aliases(&["cords"])
        .kw(&["firewood", "timber", "stack"]),
    u("BOARD-FT", "board foot", "板英尺", "FBM", "Volume", 2.359_737_216e-3, 1.5)
        .aliases(&["board feet"])
        .kw(&["lumber", "timber", "sawmill"]),
    u("ACRE-FT", "acre-foot", "英亩英尺", "ac⋅ft", "Volume", 1_233.481_837_547_52, 2.0)
        .aliases(&["acre-feet", "acre foot"])
        .kw(&["reservoir", "irrigation", "water"]),
    u("HOGSHEAD", "hogshead", "豪格海", "hhd", "Volume", 0.238_480_942_392, 0.5)
        .aliases(&["hogsheads"])
        .kw(&["cask", "wine", "old"]),
    u("FIRKIN", "firkin", "弗金", "fir", "Volume", 0.040_914_81, 0.5)
        .aliases(&["firkins"])
        .kw(&["beer", "cask", "old"]),
    u("DRY-QT", "US dry quart", "干量夸脱", "dry qt", "Volume", 1.101_220_942_715e-3, 0.5)
        .aliases(&["dry quart"])
        .kw(&["dry", "berries", "produce"]),
    // ---- pressure long tail --------------------------------------------------------
    u("PIEZE", "pieze", "皮兹", "pz", "Pressure", 1000.0, 0.5)
        .aliases(&["pièze"])
        .kw(&["metric", "historical", "mts"]),
    u("AT-TECH", "technical atmosphere", "工程大气压", "at", "Pressure", 98_066.5, 2.0)
        .aliases(&["technical atmospheres"])
        .kw(&["gauge", "engineering", "boiler"]),
    u("CMH2O", "centimetre of water", "厘米水柱", "cmH₂O", "Pressure", 98.0665, 3.0)
        .aliases(&["centimeter of water", "cmH2O"])
        .kw(&["medical", "ventilator", "breathing"]),
    // ---- energy & power long tail ------------------------------------------------------
    u("RYDBERG", "rydberg", "里德伯", "Ry", "Energy", 2.179_872_361e-18, 1.0)
        .aliases(&["rydbergs"])
        .kw(&["atomic", "spectroscopy", "hydrogen"]),
    u("HARTREE", "hartree", "哈特里", "Eh", "Energy", 4.359_744_722e-18, 1.0)
        .aliases(&["hartrees"])
        .kw(&["atomic", "quantum", "chemistry"]),
    u("QUAD", "quad", "千兆英热单位", "quad", "Energy", 1.055_055_852_62e18, 1.0)
        .aliases(&["quads"])
        .kw(&["national", "energy", "statistics"]),
    u("TOE", "tonne of oil equivalent", "吨油当量", "toe", "Energy", 4.186_8e10, 3.0)
        .aliases(&["tonnes of oil equivalent"])
        .kw(&["oil", "energy", "statistics"]),
    u("BOE", "barrel of oil equivalent", "桶油当量", "BOE", "Energy", 6.118_7e9, 2.0)
        .aliases(&["barrels of oil equivalent"])
        .kw(&["oil", "gas", "reserves"]),
    u("LANGLEY", "langley", "兰利", "Ly", "SurfaceEnergy", 41_840.0, 0.5)
        .aliases(&["langleys"])
        .kw(&["solar", "radiation", "meteorology"]),
    u("TON-REFRIG", "ton of refrigeration", "冷吨", "TR", "Power", 3_516.852_842_067, 2.0)
        .aliases(&["tons of refrigeration", "refrigeration ton"])
        .kw(&["cooling", "hvac", "chiller"]),
    u("BHP-BOILER", "boiler horsepower", "锅炉马力", "bhp", "Power", 9809.5, 0.5)
        .aliases(&["boiler horsepowers"])
        .kw(&["boiler", "steam", "rating"]),
    // ---- flow, permeability, insulation ---------------------------------------------------
    u("SVERDRUP", "sverdrup", "斯韦德鲁普", "Sv.", "VolumeFlowRate", 1e6, 0.5)
        .aliases(&["sverdrups"])
        .kw(&["ocean", "current", "transport"]),
    u("DARCY", "darcy", "达西", "D.", "IntrinsicPermeability", 9.869_233e-13, 0.5)
        .aliases(&["darcys", "darcies"])
        .kw(&["permeability", "rock", "petroleum"]),
    u("CLO", "clo", "克罗", "clo", "ThermalInsulance", 0.155, 0.5)
        .aliases(&["clos"])
        .kw(&["clothing", "insulation", "comfort"]),
    u("REYN", "reyn", "雷恩", "reyn", "DynamicViscosity", 6_894.757_293_168, 0.5)
        .aliases(&["reyns"])
        .kw(&["lubrication", "imperial", "viscosity"]),
    // ---- photometry & magnetism long tail ---------------------------------------------------
    u("PHOT", "phot", "辐透", "ph", "Illuminance", 10_000.0, 0.5)
        .aliases(&["phots"])
        .kw(&["cgs", "illumination", "old"]),
    u("STILB", "stilb", "熙提", "sb", "Luminance", 10_000.0, 0.5)
        .aliases(&["stilbs"])
        .kw(&["cgs", "luminance", "old"]),
    u("LAMBERT", "lambert", "朗伯", "Lb", "Luminance", 3_183.098_861_837_907, 0.5)
        .aliases(&["lamberts"])
        .kw(&["cgs", "diffuse", "luminance"]),
    u("FOOT-LAMBERT", "foot-lambert", "英尺朗伯", "fL", "Luminance", 3.426_259_099, 1.0)
        .aliases(&["footlambert", "foot lamberts"])
        .kw(&["cinema", "projector", "screen"]),
    u("GAMMA-MAG", "gamma", "伽马", "γ", "MagneticFluxDensity", 1e-9, 0.5)
        .aliases(&["gammas"])
        .kw(&["geomagnetic", "survey", "nanotesla"]),
    u("RUTHERFORD", "rutherford", "卢瑟福", "Rd", "Radioactivity", 1e6, 0.5)
        .aliases(&["rutherfords"])
        .kw(&["decay", "historical", "mega"]),
    // ---- angles & navigation long tail -----------------------------------------------
    u("MIL-ANGLE", "angular mil", "密位", "mil (angle)", "PlaneAngle", 2.0 * std::f64::consts::PI / 6400.0, 1.5)
        .aliases(&["mils"])
        .kw(&["artillery", "military", "sight"]),
    u("QUADRANT-ANGLE", "quadrant", "象限角", "quad.", "PlaneAngle", std::f64::consts::FRAC_PI_2, 0.5)
        .aliases(&["quadrants"])
        .kw(&["quarter", "turn", "navigation"]),
    u("COMPASS-POINT", "compass point", "罗经点", "pt-compass", "PlaneAngle", 2.0 * std::f64::consts::PI / 32.0, 0.5)
        .aliases(&["points of the compass"])
        .kw(&["navigation", "wind", "rose"]),
    // ---- Chinese market long tail -------------------------------------------------------
    u("YIN-ZH", "yin", "引", "引", "Length", 100.0 / 3.0, 1.0)
        .aliases(&["市引"])
        .kw(&["chinese", "traditional", "survey"]),
    u("HAO-ZH", "hao (length)", "毫(长度)", "毫", "Length", 1.0 / 30_000.0, 1.0)
        .kw(&["chinese", "tiny", "traditional"]),
    u("ZHU-ZH", "zhu", "铢", "铢", "Mass", 0.05 / 24.0, 0.5)
        .aliases(&["市铢"])
        .kw(&["chinese", "ancient", "coin"]),
    u("JUN-ZH", "jun", "钧", "钧", "Mass", 15.0, 0.5)
        .aliases(&["市钧"])
        .kw(&["chinese", "ancient", "thirty-catties"]),
    u("GE-ZH", "ge", "合", "合", "Volume", 1e-4, 1.0)
        .aliases(&["市合"])
        .kw(&["chinese", "grain", "measure"]),
    u("SHAO-ZH", "shao", "勺", "勺", "Volume", 1e-5, 1.5)
        .aliases(&["市勺"])
        .kw(&["chinese", "spoon", "tiny"]),
    u("LI-MASS-ZH", "li (mass)", "厘(质量)", "市厘", "Mass", 0.0005, 0.5)
        .kw(&["chinese", "medicine", "tiny"]),
    // ---- counting & typography long tail -------------------------------------------------
    u("REAM", "ream", "令", "rm", "Count", 500.0, 3.0)
        .aliases(&["reams"])
        .kw(&["paper", "sheets", "office"]),
    u("SCORE-COUNT", "score", "二十", "score", "Count", 20.0, 1.0)
        .aliases(&["scores"])
        .kw(&["twenty", "archaic", "counting"]),
    u("MOL-RATIO-PPT", "part per trillion", "万亿分比", "ppt", "Ratio", 1e-12, 2.0)
        .aliases(&["parts per trillion"])
        .kw(&["trace", "contaminant", "ultra"]),
    u("KARAT-PURITY", "karat", "开金", "kt", "Ratio", 1.0 / 24.0, 4.0)
        .aliases(&["karats", "carat (purity)"])
        .kw(&["gold", "purity", "alloy"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn troy_ounce_heavier_than_avoirdupois() {
        let ozt = UNITS.iter().find(|s| s.code == "OZT").unwrap();
        assert!(ozt.factor > 0.028_349, "troy ounce > avoirdupois ounce");
    }

    #[test]
    fn technical_atmosphere_is_kgf_per_cm2() {
        let at = UNITS.iter().find(|s| s.code == "AT-TECH").unwrap();
        assert!((at.factor - 9.806_65 / 1e-4).abs() < 1e-6);
    }

    #[test]
    fn compass_has_32_points() {
        let pt = UNITS.iter().find(|s| s.code == "COMPASS-POINT").unwrap();
        assert!((pt.factor * 32.0 - 2.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn jun_is_thirty_jin() {
        let jun = UNITS.iter().find(|s| s.code == "JUN-ZH").unwrap();
        assert!((jun.factor / 0.5 - 30.0).abs() < 1e-12);
    }
}
