//! Length (non-metric), area, volume, and angle units.

use crate::spec::{u, UnitSpec};

/// Geometry-related units.
pub const UNITS: &[UnitSpec] = &[
    // ---- imperial & other lengths --------------------------------------
    u("IN", "inch", "英寸", "in", "Length", 0.0254, 80.0)
        .aliases(&["inches", "吋"])
        .kw(&["imperial", "screen", "short"]),
    u("FT", "foot", "英尺", "ft", "Length", 0.3048, 78.0)
        .aliases(&["feet", "呎"])
        .kw(&["imperial", "tall", "height"]),
    u("YD", "yard", "码", "yd", "Length", 0.9144, 55.0)
        .aliases(&["yards"])
        .kw(&["imperial", "field", "fabric"]),
    u("MI", "mile", "英里", "mi", "Length", 1609.344, 75.0)
        .aliases(&["miles", "statute mile", "哩"])
        .kw(&["imperial", "road", "far"]),
    u("NMI", "nautical mile", "海里", "nmi", "Distance", 1852.0, 30.0)
        .aliases(&["nautical miles", "浬"])
        .kw(&["sea", "navigation", "ship"]),
    u("MIL", "mil", "密尔", "mil", "Length", 2.54e-5, 8.0)
        .aliases(&["thou"])
        .kw(&["machining", "thin", "wire"]),
    u("FUR", "furlong", "弗隆", "fur", "Distance", 201.168, 3.0)
        .aliases(&["furlongs"])
        .kw(&["horse", "racing", "old"]),
    u("FATHOM", "fathom", "英寻", "ftm", "Depth", 1.8288, 4.0)
        .aliases(&["fathoms"])
        .kw(&["sea", "depth", "sounding"]),
    u("ANGSTROM", "angstrom", "埃", "Å", "Wavelength", 1e-10, 15.0)
        .aliases(&["ångström", "angstroms"])
        .kw(&["atomic", "crystal", "x-ray"]),
    u("AU", "astronomical unit", "天文单位", "au", "Distance", 1.495_978_707e11, 18.0)
        .aliases(&["astronomical units", "AU"])
        .kw(&["astronomy", "orbit", "sun"]),
    u("LY", "light year", "光年", "ly", "Distance", 9.460_730_472_580_8e15, 28.0)
        .aliases(&["light-year", "light years", "lightyear"])
        .kw(&["astronomy", "star", "galaxy"]),
    u("PARSEC", "parsec", "秒差距", "pc", "Distance", 3.085_677_581_49e16, 10.0)
        .aliases(&["parsecs"])
        .kw(&["astronomy", "galaxy", "parallax"])
        .prefixable(),
    u("POINT", "point", "磅因", "pt.", "Length", 3.527_777_78e-4, 12.0)
        .aliases(&["typographic point"])
        .kw(&["font", "typography", "print"]),
    u("PICA", "pica", "派卡", "pica", "Length", 4.233_333_33e-3, 3.0)
        .kw(&["typography", "print", "column"]),
    u("CUBIT", "cubit", "腕尺", "cbt", "Length", 0.4572, 1.0)
        .aliases(&["cubits"])
        .kw(&["ancient", "bible", "historical"]),
    u("HAND", "hand", "一手之宽", "hh", "Height", 0.1016, 2.0)
        .aliases(&["hands"])
        .kw(&["horse", "height", "equine"]),
    // ---- area -----------------------------------------------------------
    u("M2", "square metre", "平方米", "m²", "Area", 1.0, 92.0)
        .aliases(&["square meter", "square metres", "square meters", "sq m", "m^2", "m2", "平米", "平方公尺"])
        .kw(&["floor", "surface", "room"]),
    u("KM2", "square kilometre", "平方千米", "km²", "Area", 1e6, 80.0)
        .aliases(&["square kilometer", "sq km", "km^2", "km2", "平方公里"])
        .kw(&["land", "city", "territory"]),
    u("CM2", "square centimetre", "平方厘米", "cm²", "Area", 1e-4, 70.0)
        .aliases(&["square centimeter", "sq cm", "cm^2", "cm2"])
        .kw(&["small", "surface", "paper"]),
    u("MM2", "square millimetre", "平方毫米", "mm²", "Area", 1e-6, 45.0)
        .aliases(&["square millimeter", "sq mm", "mm^2", "mm2"])
        .kw(&["wire", "cross", "section"]),
    u("DM2", "square decimetre", "平方分米", "dm²", "Area", 1e-2, 20.0)
        .aliases(&["square decimeter", "dm^2", "dm2"])
        .kw(&["school", "textbook"]),
    u("HA", "hectare", "公顷", "ha", "Area", 1e4, 65.0)
        .aliases(&["hectares"])
        .kw(&["land", "farm", "field"]),
    u("ARE", "are", "公亩", "a", "Area", 100.0, 6.0)
        .aliases(&["ares"])
        .kw(&["land", "metric", "plot"]),
    u("ACRE", "acre", "英亩", "ac", "LandArea", 4_046.856_422_4, 55.0)
        .aliases(&["acres"])
        .kw(&["land", "farm", "imperial"]),
    u("FT2", "square foot", "平方英尺", "ft²", "Area", 0.092_903_04, 58.0)
        .aliases(&["square feet", "sq ft", "ft^2", "ft2"])
        .kw(&["floor", "house", "imperial"]),
    u("IN2", "square inch", "平方英寸", "in²", "Area", 6.4516e-4, 25.0)
        .aliases(&["square inches", "sq in", "in^2", "in2"])
        .kw(&["imperial", "small", "surface"]),
    u("MI2", "square mile", "平方英里", "mi²", "Area", 2.589_988_110_336e6, 35.0)
        .aliases(&["square miles", "sq mi", "mi^2", "mi2"])
        .kw(&["land", "imperial", "territory"]),
    u("YD2", "square yard", "平方码", "yd²", "Area", 0.836_127_36, 12.0)
        .aliases(&["square yards", "sq yd", "yd^2", "yd2"])
        .kw(&["imperial", "fabric", "carpet"]),
    u("BARN", "barn", "靶恩", "b", "CrossSection", 1e-28, 2.0)
        .aliases(&["barns"])
        .kw(&["nuclear", "cross", "section"]),
    // ---- volume ----------------------------------------------------------
    u("M3", "cubic metre", "立方米", "m³", "Volume", 1.0, 85.0)
        .aliases(&["cubic meter", "cubic metres", "cu m", "m^3", "m3", "立方", "方"])
        .kw(&["water", "tank", "concrete"]),
    u("CM3", "cubic centimetre", "立方厘米", "cm³", "Volume", 1e-6, 62.0)
        .aliases(&["cubic centimeter", "cc", "cm^3", "cm3"])
        .kw(&["engine", "small", "medical"]),
    u("DM3", "cubic decimetre", "立方分米", "dm³", "Volume", 1e-3, 18.0)
        .aliases(&["cubic decimeter", "dm^3", "dm3"])
        .kw(&["school", "litre", "textbook"]),
    u("MM3", "cubic millimetre", "立方毫米", "mm³", "Volume", 1e-9, 15.0)
        .aliases(&["cubic millimeter", "mm^3", "mm3"])
        .kw(&["tiny", "droplet"]),
    u("KM3", "cubic kilometre", "立方千米", "km³", "Volume", 1e9, 10.0)
        .aliases(&["cubic kilometer", "km^3", "km3"])
        .kw(&["lake", "reservoir", "geology"]),
    u("L", "litre", "升", "L", "Volume", 1e-3, 95.0)
        .aliases(&["liter", "litres", "liters", "l", "公升"])
        .kw(&["water", "bottle", "drink"])
        .prefixable(),
    u("GAL-US", "US gallon", "美制加仑", "gal", "Volume", 3.785_411_784e-3, 48.0)
        .aliases(&["gallon", "gallons", "加仑"])
        .kw(&["fuel", "gas", "american"]),
    u("GAL-UK", "imperial gallon", "英制加仑", "gal (imp)", "Volume", 4.546_09e-3, 15.0)
        .aliases(&["imperial gallons", "UK gallon"])
        .kw(&["fuel", "british", "imperial"]),
    u("QT", "US quart", "夸脱", "qt", "Volume", 9.463_529_46e-4, 20.0)
        .aliases(&["quart", "quarts"])
        .kw(&["cooking", "milk", "american"]),
    u("PT-US", "US pint", "品脱", "pt", "Volume", 4.731_764_73e-4, 22.0)
        .aliases(&["pint", "pints"])
        .kw(&["beer", "milk", "pub"]),
    u("CUP", "US cup", "量杯", "cup", "Volume", 2.365_882_365e-4, 30.0)
        .aliases(&["cups"])
        .kw(&["cooking", "recipe", "baking"]),
    u("FLOZ-US", "US fluid ounce", "液量盎司", "fl oz", "LiquidVolume", 2.957_352_956e-5, 25.0)
        .aliases(&["fluid ounce", "fluid ounces"])
        .kw(&["drink", "cosmetics", "bottle"]),
    u("TBSP", "tablespoon", "汤匙", "tbsp", "Volume", 1.478_676_478e-5, 28.0)
        .aliases(&["tablespoons", "大勺"])
        .kw(&["cooking", "recipe", "kitchen"]),
    u("TSP", "teaspoon", "茶匙", "tsp", "Volume", 4.928_921_59e-6, 28.0)
        .aliases(&["teaspoons", "小勺"])
        .kw(&["cooking", "recipe", "kitchen"]),
    u("BBL", "oil barrel", "桶", "bbl", "Capacity", 0.158_987_294_928, 40.0)
        .aliases(&["barrel", "barrels"])
        .kw(&["oil", "petroleum", "crude"]),
    u("BU-US", "US bushel", "蒲式耳", "bu", "Volume", 3.523_907_016_688e-2, 8.0)
        .aliases(&["bushel", "bushels"])
        .kw(&["grain", "harvest", "farm"]),
    u("GILL-US", "US gill", "及耳", "gi", "Volume", 1.182_941_183e-4, 2.0)
        .aliases(&["gill", "gills"])
        .kw(&["spirits", "old", "measure"]),
    u("IN3", "cubic inch", "立方英寸", "in³", "Volume", 1.638_706_4e-5, 12.0)
        .aliases(&["cubic inches", "cu in", "in^3", "in3"])
        .kw(&["engine", "imperial"]),
    u("FT3", "cubic foot", "立方英尺", "ft³", "Volume", 2.831_684_659_2e-2, 20.0)
        .aliases(&["cubic feet", "cu ft", "ft^3", "ft3"])
        .kw(&["imperial", "shipping", "gas"]),
    u("YD3", "cubic yard", "立方码", "yd³", "Volume", 0.764_554_857_984, 8.0)
        .aliases(&["cubic yards", "cu yd", "yd^3", "yd3"])
        .kw(&["imperial", "concrete", "soil"]),
    // ---- plane & solid angle ---------------------------------------------
    u("RAD-ANGLE", "radian", "弧度", "rad", "PlaneAngle", 1.0, 45.0)
        .aliases(&["radians"])
        .kw(&["angle", "mathematics", "arc"]),
    u("DEG-ANGLE", "degree of arc", "角度", "°", "PlaneAngle", 0.017_453_292_519_943_295, 85.0)
        .aliases(&["degree", "degrees", "arc degree", "deg"])
        .kw(&["angle", "rotation", "geometry", "compass"]),
    u("ARCMIN", "arcminute", "角分", "′", "PlaneAngle", 2.908_882_086_657_216e-4, 10.0)
        .aliases(&["arc minute", "arcminutes", "minute of arc"])
        .kw(&["angle", "astronomy", "telescope"]),
    u("ARCSEC", "arcsecond", "角秒", "″", "PlaneAngle", 4.848_136_811_095_36e-6, 9.0)
        .aliases(&["arc second", "arcseconds", "second of arc"])
        .kw(&["angle", "astronomy", "parallax"]),
    u("GRADIAN", "gradian", "百分度", "gon", "PlaneAngle", 0.015_707_963_267_948_967, 4.0)
        .aliases(&["gon", "grade", "gradians"])
        .kw(&["angle", "survey", "metric"]),
    u("REV", "revolution", "转", "rev", "PlaneAngle", std::f64::consts::TAU, 35.0)
        .aliases(&["revolutions", "turn", "圈"])
        .kw(&["rotation", "wheel", "full"]),
    u("SR", "steradian", "球面度", "sr", "SolidAngle", 1.0, 8.0)
        .aliases(&["steradians"])
        .kw(&["solid", "angle", "sphere"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mile_is_1760_yards() {
        let mi = UNITS.iter().find(|s| s.code == "MI").unwrap();
        let yd = UNITS.iter().find(|s| s.code == "YD").unwrap();
        assert!((mi.factor / yd.factor - 1760.0).abs() < 1e-9);
    }

    #[test]
    fn acre_is_43560_square_feet() {
        let acre = UNITS.iter().find(|s| s.code == "ACRE").unwrap();
        let ft2 = UNITS.iter().find(|s| s.code == "FT2").unwrap();
        assert!((acre.factor / ft2.factor - 43_560.0).abs() < 1e-6);
    }

    #[test]
    fn us_gallon_is_four_quarts() {
        let gal = UNITS.iter().find(|s| s.code == "GAL-US").unwrap();
        let qt = UNITS.iter().find(|s| s.code == "QT").unwrap();
        assert!((gal.factor / qt.factor - 4.0).abs() < 1e-9);
    }

    #[test]
    fn revolution_is_360_degrees() {
        let rev = UNITS.iter().find(|s| s.code == "REV").unwrap();
        let deg = UNITS.iter().find(|s| s.code == "DEG-ANGLE").unwrap();
        assert!((rev.factor / deg.factor - 360.0).abs() < 1e-9);
    }
}
