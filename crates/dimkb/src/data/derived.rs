//! Specialist derived units: engineering, physics, textiles, printing,
//! meteorology, electrochemistry. These broaden the dimension-vector
//! inventory the way QUDT's long tail does.

use crate::spec::{u, UnitSpec};

/// Specialist derived units.
pub const UNITS: &[UnitSpec] = &[
    // ---- kinematics long tail ------------------------------------------
    u("M-PER-SEC3", "metre per second cubed", "米每三次方秒", "m/s³", "Jerk", 1.0, 1.0)
        .aliases(&["meter per second cubed", "m/s^3", "m/s3"])
        .kw(&["jerk", "ride", "comfort"]),
    u("KM-PER-SEC", "kilometre per second", "千米每秒", "km/s", "OrbitalVelocity", 1000.0, 8.0)
        .aliases(&["kilometer per second"])
        .kw(&["orbital", "rocket", "escape"]),
    u("MM-PER-HR", "millimetre per hour", "毫米每小时", "mm/h", "RainfallRate", 1e-3 / 3600.0, 10.0)
        .aliases(&["millimeter per hour", "mm/hr"])
        .kw(&["rainfall", "precipitation", "weather"]),
    u("M-PER-MIN", "metre per minute", "米每分钟", "m/min", "Velocity", 1.0 / 60.0, 5.0)
        .aliases(&["meter per minute"])
        .kw(&["conveyor", "walking", "feed"]),
    u("RAD-PER-SEC2", "radian per second squared", "弧度每二次方秒", "rad/s²", "AngularAcceleration", 1.0, 1.5)
        .aliases(&["rad/s^2", "rad/s2"])
        .kw(&["angular", "spin", "rotor"]),
    // ---- mechanics long tail ----------------------------------------------
    u("N-SEC", "newton second", "牛秒", "N·s", "Momentum", 1.0, 3.0)
        .aliases(&["newton-second", "N s", "N*s"])
        .kw(&["impulse", "thrust", "collision"]),
    u("N-PER-SEC", "newton per second", "牛每秒", "N/s", "ForceRate", 1.0, 1.0)
        .aliases(&["N/s"])
        .kw(&["loading", "rate", "testing"]),
    u("J-SEC", "joule second", "焦秒", "J·s", "Action", 1.0, 2.0)
        .aliases(&["joule-second", "J s"])
        .kw(&["planck", "action", "quantum"]),
    u("KSI", "kip per square inch", "千磅每平方英寸", "ksi", "Stress", 6.894_757_293_168e6, 5.0)
        .aliases(&["kilopound per square inch"])
        .kw(&["steel", "strength", "imperial"]),
    u("G-PER-M2", "gram per square metre", "克每平方米", "g/m²", "SurfaceDensity", 1e-3, 12.0)
        .aliases(&["gram per square meter", "gsm", "g/m2"])
        .kw(&["paper", "fabric", "weight"]),
    u("KG-PER-HA", "kilogram per hectare", "千克每公顷", "kg/ha", "SurfaceDensity", 1e-4, 4.0)
        .aliases(&["kg/ha"])
        .kw(&["yield", "fertilizer", "farm"]),
    u("TEX", "tex", "特克斯", "tex", "LinearDensity", 1e-6, 2.0)
        .aliases(&["texes"])
        .kw(&["yarn", "fibre", "textile"])
        .prefixable(),
    u("DENIER", "denier", "旦尼尔", "den", "LinearDensity", 1e-6 / 9.0, 3.0)
        .aliases(&["deniers"])
        .kw(&["stocking", "fibre", "textile"]),
    u("J-PER-M2", "joule per square metre", "焦耳每平方米", "J/m²", "SurfaceEnergy", 1.0, 2.0)
        .aliases(&["joule per square meter", "J/m2"])
        .kw(&["surface", "energy", "fracture"]),
    u("W-PER-M3", "watt per cubic metre", "瓦特每立方米", "W/m³", "PowerDensity", 1.0, 1.0)
        .aliases(&["watt per cubic meter", "W/m3"])
        .kw(&["reactor", "power", "density"]),
    u("M2-PER-KG", "square metre per kilogram", "平方米每千克", "m²/kg", "MassAttenuation", 1.0, 1.0)
        .aliases(&["square meter per kilogram", "m2/kg"])
        .kw(&["attenuation", "absorber", "shielding"]),
    u("M3-PER-HR", "cubic metre per hour", "立方米每小时", "m³/h", "VolumeFlowRate", 1.0 / 3600.0, 12.0)
        .aliases(&["cubic meter per hour", "m3/h"])
        .kw(&["ventilation", "pump", "gas"]),
    u("ML-PER-MIN", "millilitre per minute", "毫升每分钟", "mL/min", "VolumeFlowRate", 1e-6 / 60.0, 8.0)
        .aliases(&["milliliter per minute", "ml/min"])
        .kw(&["infusion", "drip", "medical"]),
    u("CFM", "cubic foot per minute", "立方英尺每分钟", "cfm", "VolumeFlowRate", 2.831_684_659_2e-2 / 60.0, 6.0)
        .aliases(&["cubic feet per minute", "ft3/min"])
        .kw(&["fan", "hvac", "airflow"]),
    u("G-PER-SEC", "gram per second", "克每秒", "g/s", "MassFlowRate", 1e-3, 3.0)
        .aliases(&["g/s"])
        .kw(&["injector", "flow", "fuel"]),
    // ---- thermal long tail ----------------------------------------------------
    u("J-PER-M3-K", "joule per cubic metre kelvin", "焦耳每立方米开尔文", "J/(m³·K)", "VolumetricHeatCapacity", 1.0, 1.0)
        .aliases(&["J/(m3 K)", "J/m3/K"])
        .kw(&["volumetric", "heat", "storage"]),
    u("W-PER-M2-K", "watt per square metre kelvin", "瓦特每平方米开尔文", "W/(m²·K)", "HeatTransferCoefficient", 1.0, 3.0)
        .aliases(&["W/(m2 K)", "W/m2/K", "u-value"])
        .kw(&["insulation", "window", "transfer"]),
    u("M2-K-PER-W", "square metre kelvin per watt", "平方米开尔文每瓦特", "m²·K/W", "ThermalInsulance", 1.0, 2.0)
        .aliases(&["r-value (SI)", "m2K/W"])
        .kw(&["insulation", "building", "r-value"]),
    u("GY-PER-SEC", "gray per second", "戈瑞每秒", "Gy/s", "AbsorbedDoseRate", 1.0, 1.0)
        .aliases(&["Gy/s"])
        .kw(&["dose", "rate", "radiotherapy"]),
    u("SV-PER-HR", "sievert per hour", "希沃特每小时", "Sv/h", "DoseRate", 1.0 / 3600.0, 4.0)
        .aliases(&["Sv/h", "Sv/hr"])
        .kw(&["radiation", "survey", "safety"]),
    // ---- electromagnetism long tail ----------------------------------------------
    u("C-PER-KG", "coulomb per kilogram", "库仑每千克", "C/kg", "RadiationExposure", 1.0, 1.0)
        .aliases(&["C/kg"])
        .kw(&["exposure", "ionizing", "si"]),
    u("A-M2", "ampere square metre", "安培二次方米", "A·m²", "MagneticMoment", 1.0, 1.0)
        .aliases(&["ampere square meter", "A m2"])
        .kw(&["magnetic", "moment", "dipole"]),
    u("C-M", "coulomb metre", "库仑米", "C·m", "ElectricDipoleMoment", 1.0, 1.0)
        .aliases(&["coulomb meter", "C m"])
        .kw(&["dipole", "molecule", "polar"]),
    u("DEBYE", "debye", "德拜", "D", "ElectricDipoleMoment", 3.335_64e-30, 2.0)
        .aliases(&["debyes"])
        .kw(&["dipole", "chemistry", "molecular"]),
    u("V-SEC-PER-M", "volt second per metre", "伏秒每米", "V·s/m", "MagneticVectorPotential", 1.0, 0.5)
        .aliases(&["V s/m", "Wb/m"])
        .kw(&["vector", "potential", "field"]),
    u("C-PER-M2", "coulomb per square metre", "库仑每平方米", "C/m²", "SurfaceChargeDensity", 1.0, 1.0)
        .aliases(&["C/m2"])
        .kw(&["charge", "surface", "capacitor"]),
    u("M2-PER-V-SEC", "square metre per volt second", "平方米每伏秒", "m²/(V·s)", "ElectronMobility", 1.0, 1.0)
        .aliases(&["m2/(V s)", "m2/V/s"])
        .kw(&["mobility", "semiconductor", "carrier"]),
    u("S-M2-PER-MOL", "siemens square metre per mole", "西门子二次方米每摩尔", "S·m²/mol", "MolarConductivity", 1.0, 0.5)
        .aliases(&["S m2/mol"])
        .kw(&["electrolyte", "conductivity", "molar"]),
    u("V-PER-K", "volt per kelvin", "伏特每开尔文", "V/K", "SeebeckCoefficient", 1.0, 0.5)
        .aliases(&["V/K"])
        .kw(&["thermoelectric", "seebeck", "thermocouple"]),
    // ---- photometry / radiometry long tail -------------------------------------------
    u("LM-SEC", "lumen second", "流明秒", "lm·s", "LuminousEnergy", 1.0, 0.5)
        .aliases(&["lumen-second", "talbot"])
        .kw(&["luminous", "energy", "flash"]),
    u("LM-PER-W", "lumen per watt", "流明每瓦特", "lm/W", "LuminousEfficacy", 1.0, 6.0)
        .aliases(&["lm/W"])
        .kw(&["efficacy", "led", "lighting"]),
    u("W-PER-M2-SR", "watt per square metre steradian", "瓦特每平方米球面度", "W/(m²·sr)", "Radiance", 1.0, 1.0)
        .aliases(&["W/(m2 sr)"])
        .kw(&["radiance", "remote", "sensing"]),
    u("W-PER-M2-NM", "watt per square metre nanometre", "瓦特每平方米纳米", "W/(m²·nm)", "SpectralIrradiance", 1e9, 0.5)
        .aliases(&["W/(m2 nm)"])
        .kw(&["spectral", "solar", "spectrum"]),
    u("JY", "jansky", "央斯基", "Jy", "SpectralFluxDensity", 1e-26, 1.0)
        .aliases(&["janskys"])
        .kw(&["radio", "astronomy", "flux"]),
    // ---- chemistry long tail ----------------------------------------------------------
    u("KAT-PER-L", "katal per litre", "开特每升", "kat/L", "CatalyticConcentration", 1000.0, 0.5)
        .aliases(&["kat/l"])
        .kw(&["enzyme", "concentration", "assay"]),
    u("MOL-PER-SEC", "mole per second", "摩尔每秒", "mol/s", "CatalyticActivity", 1.0, 1.0)
        .aliases(&["mol/s"])
        .kw(&["reaction", "rate", "turnover"]),
    u("PH-UNIT", "pH unit", "pH值", "pH", "Acidity", 1.0, 30.0)
        .aliases(&["ph"])
        .kw(&["acid", "alkaline", "chemistry"]),
    u("MOL-PER-M2-SEC", "mole per square metre second", "摩尔每平方米秒", "mol/(m²·s)", "MolarFlux", 1.0, 0.5)
        .aliases(&["mol/(m2 s)"])
        .kw(&["flux", "diffusion", "membrane"]),
    // ---- printing / imaging / misc -------------------------------------------------------
    u("DPI", "dot per inch", "点每英寸", "dpi", "Resolution", 1.0 / 0.0254, 15.0)
        .aliases(&["dots per inch"])
        .kw(&["printer", "scanner", "image"]),
    u("PPI", "pixel per inch", "像素每英寸", "ppi", "Resolution", 1.0 / 0.0254, 10.0)
        .aliases(&["pixels per inch"])
        .kw(&["screen", "display", "density"]),
    u("LPM-PRINT", "line per minute", "行每分钟", "lpm", "Frequency", 1.0 / 60.0, 1.0)
        .aliases(&["lines per minute"])
        .kw(&["printer", "throughput", "output"]),
    u("FPS-FRAME", "frame per second", "帧每秒", "fps", "FrameRate", 1.0, 25.0)
        .aliases(&["frames per second"])
        .kw(&["video", "game", "camera"]),
    u("KM-PER-L-GAS", "kilometre per litre (gas)", "公里每升", "km/L", "FuelEconomy", 1e6, 1.0)
        .aliases(&["kilometers per liter"])
        .kw(&["mileage", "economy", "fuel"]),
    u("PER-SEC-DECAY", "decay per second", "衰变每秒", "dps", "Radioactivity", 1.0, 1.0)
        .aliases(&["decays per second", "disintegrations per second"])
        .kw(&["decay", "activity", "count"]),
    u("CPM-COUNT", "count per minute", "计数每分钟", "cpm", "Radioactivity", 1.0 / 60.0, 2.0)
        .aliases(&["counts per minute"])
        .kw(&["geiger", "counter", "survey"]),
    // ---- gravitational / geophysics -----------------------------------------------------
    u("MGAL", "milligal", "毫伽", "mGal", "Acceleration", 1e-5, 1.0)
        .aliases(&["milligals"])
        .kw(&["gravimetry", "survey", "anomaly"]),
    u("EOTVOS", "eotvos", "厄缶", "E", "GravityGradient", 1e-9, 0.5)
        .aliases(&["eötvös"])
        .kw(&["gravity", "gradient", "geophysics"]),
    // ---- acoustics -------------------------------------------------------------------------
    u("PA-SEC-PER-M", "pascal second per metre", "帕秒每米", "Pa·s/m", "AcousticImpedance", 1.0, 0.5)
        .aliases(&["rayl", "Pa s/m"])
        .kw(&["acoustic", "impedance", "sound"]),
    u("SONE", "sone", "宋", "sone", "Loudness", 1.0, 1.0)
        .aliases(&["sones"])
        .kw(&["loudness", "perception", "noise"]),
    u("PHON", "phon", "方", "phon", "SoundLevel", 1.0, 1.0)
        .aliases(&["phons"])
        .kw(&["loudness", "level", "hearing"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dpi_equals_reciprocal_inch() {
        let dpi = UNITS.iter().find(|s| s.code == "DPI").unwrap();
        assert!((dpi.factor * 0.0254 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn denier_is_ninth_of_tex() {
        let den = UNITS.iter().find(|s| s.code == "DENIER").unwrap();
        let tex = UNITS.iter().find(|s| s.code == "TEX").unwrap();
        assert!((tex.factor / den.factor - 9.0).abs() < 1e-9);
    }

    #[test]
    fn ksi_is_1000_psi() {
        let ksi = UNITS.iter().find(|s| s.code == "KSI").unwrap();
        assert!((ksi.factor / 6_894.757_293_168 - 1000.0).abs() < 1e-6);
    }
}
