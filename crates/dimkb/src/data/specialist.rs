//! Canonical units for the specialist (QUDT long-tail) quantity kinds.
//!
//! Each new kind introduced by the paper-scale growth carries at least one
//! real compound-SI or domain unit here, so `stats::statistics` counts the
//! kind as used and the linker has a concrete surface form to anchor on.

use crate::spec::{u, UnitSpec};

/// Specialist-kind curated units.
pub const UNITS: &[UnitSpec] = &[
    // ---- time-derivative kinds -----------------------------------------
    u("PA-PER-SEC", "pascal per second", "帕每秒", "Pa/s", "PressureRate", 1.0, 1.0)
        .kw(&["pressurization", "ramp", "control"]),
    u("K-PER-SEC", "kelvin per second", "开每秒", "K/s", "TemperatureRate", 1.0, 1.5)
        .kw(&["heating", "ramp", "thermal"]),
    u("K-PER-MIN", "kelvin per minute", "开每分", "K/min", "TemperatureRate", 1.0 / 60.0, 2.0)
        .aliases(&["degrees per minute"])
        .kw(&["furnace", "ramp", "laboratory"]),
    u("A-PER-SEC", "ampere per second", "安每秒", "A/s", "CurrentRate", 1.0, 0.8)
        .kw(&["inrush", "ramp", "inverter"]),
    u("V-PER-USEC", "volt per microsecond", "伏每微秒", "V/µs", "VoltageSlewRate", 1e6, 1.0)
        .aliases(&["volts per microsecond"])
        .kw(&["slew", "amplifier", "opamp"]),
    u("HZ-PER-SEC", "hertz per second", "赫兹每秒", "Hz/s", "FrequencyDrift", 1.0, 0.8)
        .kw(&["drift", "oscillator", "grid"]),
    u("RAD-PER-SEC3", "radian per second cubed", "弧度每三次方秒", "rad/s³", "AngularJerk", 1.0, 0.3)
        .kw(&["robotics", "trajectory", "motion"]),
    // ---- per-mass (specific) kinds -------------------------------------
    u("KJ-PER-KG", "kilojoule per kilogram", "千焦每千克", "kJ/kg", "SpecificEnthalpy", 1000.0, 3.0)
        .kw(&["enthalpy", "steam", "refrigerant"]),
    u("KJ-PER-KG-K", "kilojoule per kilogram kelvin", "千焦每千克开", "kJ/(kg·K)", "SpecificEntropy", 1000.0, 1.5)
        .kw(&["entropy", "steam", "table"]),
    u("W-PER-KG", "watt per kilogram", "瓦每千克", "W/kg", "SpecificPower", 1.0, 2.0)
        .kw(&["battery", "specific", "power"]),
    u("ISP-SEC", "second of specific impulse", "比冲秒", "s(sp)", "SpecificImpulse", 1.0, 1.0)
        .aliases(&["seconds of specific impulse"])
        .kw(&["rocket", "propellant", "thruster"]),
    u("MJ-PER-KG", "megajoule per kilogram", "兆焦每千克", "MJ/kg", "CalorificValue", 1e6, 2.5)
        .aliases(&["megajoules per kilogram"])
        .kw(&["fuel", "heating", "value"]),
    u("BQ-PER-KG", "becquerel per kilogram", "贝克每千克", "Bq/kg", "SpecificActivity", 1.0, 1.5)
        .kw(&["contamination", "food", "radioactivity"]),
    // ---- per-area flux kinds -------------------------------------------
    u("J-PER-CM2", "joule per square centimetre", "焦每平方厘米", "J/cm²", "RadiantExposure", 1e4, 1.5)
        .aliases(&["joule per square centimeter"])
        .kw(&["fluence", "laser", "exposure"]),
    u("KG-PER-M2-SEC", "kilogram per square metre second", "千克每平方米秒", "kg/(m²·s)", "MassFlux", 1.0, 0.8)
        .kw(&["flux", "evaporation", "transport"]),
    u("PER-M2-SEC", "per square metre second", "每平方米秒", "m⁻²·s⁻¹", "PhotonFlux", 1.0, 0.5)
        .kw(&["photon", "detector", "astronomy"]),
    u("LM-PER-M2", "lumen per square metre", "流明每平方米", "lm/m²", "LuminousExitance", 1.0, 1.0)
        .aliases(&["lumen per square meter"])
        .kw(&["exitance", "surface", "lighting"]),
    // ---- electromagnetic long tail -------------------------------------
    u("AMPERE-TURN", "ampere-turn", "安匝", "At", "MagnetomotiveForce", 1.0, 1.0)
        .aliases(&["ampere turns"])
        .kw(&["coil", "winding", "magnetic"]),
    u("AT-PER-WB", "ampere-turn per weber", "安匝每韦伯", "At/Wb", "MagneticReluctance", 1.0, 0.4)
        .kw(&["reluctance", "magnetic", "circuit"]),
    u("V-M", "volt metre", "伏特米", "V·m", "ElectricFlux", 1.0, 0.4)
        .aliases(&["volt meter"])
        .kw(&["flux", "field", "gauss law"]),
    u("DARAF", "daraf", "达拉夫", "F⁻¹", "ElectricElastance", 1.0, 0.3)
        .aliases(&["darafs"])
        .kw(&["elastance", "reciprocal", "farad"]),
    u("KA-PER-M", "kiloampere per metre", "千安每米", "kA/m", "Magnetization", 1000.0, 0.8)
        .aliases(&["kiloampere per meter"])
        .kw(&["magnetization", "coercivity", "magnet"]),
    u("M3-PER-C", "cubic metre per coulomb", "立方米每库", "m³/C", "HallCoefficient", 1.0, 0.3)
        .kw(&["hall", "semiconductor", "carrier"]),
    u("C-PER-G", "coulomb per gram", "库每克", "C/g", "ChargeToMassRatio", 1000.0, 0.4)
        .kw(&["electron", "ratio", "spectrometer"]),
    u("C-PER-M", "coulomb per metre", "库每米", "C/m", "LinearChargeDensity", 1.0, 0.4)
        .aliases(&["coulomb per meter"])
        .kw(&["charge", "line", "electrostatics"]),
    u("OHM-PER-SQ", "ohm per square", "欧姆每方", "Ω/sq", "SheetResistance", 1.0, 1.0)
        .aliases(&["ohms per square"])
        .kw(&["sheet", "thin", "film"]),
    u("VA", "volt-ampere", "伏安", "VA", "ApparentPower", 1.0, 12.0)
        .aliases(&["volt-amperes", "volt ampere"])
        .kw(&["apparent", "transformer", "ups"])
        .prefixable(),
    u("VAR", "volt-ampere reactive", "乏", "var", "ReactivePower", 1.0, 5.0)
        .aliases(&["vars", "reactive volt-ampere"])
        .kw(&["reactive", "grid", "compensation"])
        .prefixable(),
    // ---- mechanics long tail -------------------------------------------
    u("PER-PA", "reciprocal pascal", "每帕斯卡", "Pa⁻¹", "Compressibility", 1.0, 0.3)
        .kw(&["compressibility", "fluid", "bulk"]),
    u("NM-PER-RAD", "newton metre per radian", "牛米每弧度", "N·m/rad", "TorsionalStiffness", 1.0, 0.5)
        .kw(&["torsion", "spring", "shaft"]),
    u("N-SEC-PER-M", "newton second per metre", "牛秒每米", "N·s/m", "DampingCoefficient", 1.0, 0.5)
        .kw(&["damper", "suspension", "vibration"]),
    u("CM4", "centimetre to the fourth", "四次方厘米", "cm⁴", "AreaMomentOfInertia", 1e-8, 0.8)
        .aliases(&["centimeter to the fourth"])
        .kw(&["beam", "section", "bending"]),
    u("HV-HARDNESS", "Vickers hardness number", "维氏硬度", "HV", "Hardness", 9.806_65e6, 2.0)
        .aliases(&["Vickers pyramid number"])
        .kw(&["vickers", "indentation", "metal"]),
    u("KJ-PER-M2", "kilojoule per square metre", "千焦每平方米", "kJ/m²", "ImpactStrength", 1000.0, 0.8)
        .kw(&["charpy", "impact", "toughness"]),
    // ---- fluid & thermal long tail -------------------------------------
    u("MM2-PER-SEC", "square millimetre per second", "平方毫米每秒", "mm²/s", "ThermalDiffusivity", 1e-6, 1.0)
        .aliases(&["square millimeter per second"])
        .kw(&["diffusivity", "thermal", "conduction"]),
    u("LMH", "litre per square metre hour", "升每平方米时", "LMH", "VolumetricFlux", 0.001 / 3600.0, 0.5)
        .aliases(&["liters per square meter per hour"])
        .kw(&["membrane", "filtration", "permeate"]),
    u("BTU-HR-FT2-F", "BTU per hour square foot Fahrenheit", "英热单位每时平方英尺华氏度", "BTU/(h·ft²·°F)", "ThermalTransmittance", 5.678_263, 0.8)
        .aliases(&["U-factor"])
        .kw(&["u-value", "window", "insulation"]),
    u("CAL-PER-G", "calorie per gram", "卡每克", "cal/g", "LatentHeat", 4184.0, 1.5)
        .kw(&["latent", "fusion", "vaporization"]),
    u("DEG-DH", "German degree of hardness", "德国硬度", "°dH", "WaterHardness", 0.017_83, 1.0)
        .aliases(&["degrees German hardness", "deutsche Härte"])
        .kw(&["water", "hardness", "aquarium"]),
    u("NTU", "nephelometric turbidity unit", "散射浊度单位", "NTU", "Turbidity", 1.0, 2.0)
        .aliases(&["nephelometric turbidity units"])
        .kw(&["turbidity", "water", "quality"]),
    u("SABIN", "sabin", "赛宾", "sab", "SoundAbsorption", 0.092_903_04, 0.3)
        .aliases(&["sabins"])
        .kw(&["absorption", "acoustics", "room"]),
    u("PW-PER-M2", "picowatt per square metre", "皮瓦每平方米", "pW/m²", "SoundIntensity", 1e-12, 0.3)
        .kw(&["reference", "intensity", "hearing"]),
    // ---- optics & photometry -------------------------------------------
    u("DIOPTRE", "dioptre", "屈光度", "dpt", "OpticalPower", 1.0, 8.0)
        .aliases(&["diopter", "diopters", "dioptres"])
        .kw(&["lens", "eyeglasses", "vision"]),
    u("LUX-SEC", "lux second", "勒克斯秒", "lx·s", "LuminousExposure", 1.0, 0.4)
        .kw(&["exposure", "photometry", "film"]),
    // ---- chemistry & biochemistry --------------------------------------
    u("MOLAR-PER-SEC", "molar per second", "摩尔浓度每秒", "M/s", "ReactionRate", 1000.0, 0.8)
        .kw(&["kinetics", "rate", "reaction"]),
    u("OSM-PER-L", "osmole per litre", "渗透摩尔每升", "Osm/L", "Osmolarity", 1000.0, 1.0)
        .aliases(&["osmole per liter", "osmolar"])
        .kw(&["osmolarity", "saline", "clinical"]),
    u("OSM-PER-KG", "osmole per kilogram", "渗透摩尔每千克", "Osm/kg", "Osmolality", 1.0, 1.0)
        .aliases(&["osmolal"])
        .kw(&["osmolality", "serum", "clinical"]),
    u("EU-ENTROPY", "entropy unit", "熵单位", "eu", "MolarEntropy", 4.184, 0.3)
        .aliases(&["entropy units"])
        .kw(&["entropy", "molar", "thermochemistry"]),
    u("CM2-PER-SEC", "square centimetre per second", "平方厘米每秒", "cm²/s", "DiffusionCoefficient", 1e-4, 0.8)
        .aliases(&["square centimeter per second"])
        .kw(&["diffusion", "solution", "transport"]),
    u("SVEDBERG", "svedberg", "斯维德伯格", "Sv(sed)", "SedimentationCoefficient", 1e-13, 0.5)
        .aliases(&["svedbergs"])
        .kw(&["centrifuge", "ribosome", "sedimentation"]),
    u("G-PER-100ML", "gram per 100 millilitres", "克每百毫升", "g/100mL", "Solubility", 10.0, 1.0)
        .aliases(&["grams per 100 milliliters"])
        .kw(&["solubility", "saturated", "solution"]),
    // ---- radiation protection ------------------------------------------
    u("R-PER-HR", "roentgen per hour", "伦琴每小时", "R/h", "ExposureRate", 2.58e-4 / 3600.0, 0.5)
        .aliases(&["roentgens per hour"])
        .kw(&["survey", "meter", "radiation"]),
    u("BQ-PER-M3", "becquerel per cubic metre", "贝克每立方米", "Bq/m³", "ActivityConcentration", 1.0, 1.0)
        .aliases(&["becquerel per cubic meter"])
        .kw(&["radon", "indoor", "air"]),
    u("BQ-PER-CM2", "becquerel per square centimetre", "贝克每平方厘米", "Bq/cm²", "SurfaceActivity", 1e4, 0.5)
        .aliases(&["becquerel per square centimeter"])
        .kw(&["contamination", "surface", "swipe"]),
    u("USV-PER-HR", "microsievert per hour", "微希每小时", "µSv/h", "EquivalentDoseRate", 1e-6 / 3600.0, 2.0)
        .aliases(&["microsieverts per hour"])
        .kw(&["dosimeter", "background", "radiation"]),
    // ---- agriculture & environment -------------------------------------
    u("T-PER-HA", "tonne per hectare", "吨每公顷", "t/ha", "CropYield", 0.1, 2.0)
        .aliases(&["tonnes per hectare"])
        .kw(&["yield", "harvest", "field"]),
    u("HEAD-PER-HA", "head per hectare", "头每公顷", "头/ha", "StockingDensity", 1e-4, 0.5)
        .kw(&["livestock", "grazing", "pasture"]),
    u("L-PER-HA", "litre per hectare", "升每公顷", "L/ha", "ApplicationRate", 1e-7, 0.8)
        .aliases(&["liters per hectare"])
        .kw(&["pesticide", "spray", "field"]),
    u("MM-RAIN", "millimetre of rainfall", "降水毫米", "mm(rain)", "Rainfall", 0.001, 8.0)
        .aliases(&["millimeters of rain"])
        .kw(&["rainfall", "precipitation", "weather"]),
    u("G-PER-KM", "gram per kilometre", "克每千米", "g/km", "EmissionIntensity", 1e-6, 3.0)
        .aliases(&["grams per kilometer"])
        .kw(&["co2", "emission", "vehicle"]),
    u("KG-PER-KWH", "kilogram per kilowatt hour", "千克每千瓦时", "kg/kWh", "CarbonIntensity", 1.0 / 3.6e6, 1.0)
        .kw(&["carbon", "grid", "intensity"]),
    u("UG-PER-M3", "microgram per cubic metre", "微克每立方米", "µg/m³", "ParticulateConcentration", 1e-9, 5.0)
        .aliases(&["micrograms per cubic meter"])
        .kw(&["pm2.5", "air", "pollution"]),
    u("PSU", "practical salinity unit", "实用盐度单位", "PSU", "Salinity", 0.001, 1.0)
        .aliases(&["practical salinity units"])
        .kw(&["seawater", "ocean", "salinity"]),
    u("BRIX", "degree Brix", "白利糖度", "°Bx", "SugarContent", 0.01, 1.5)
        .aliases(&["degrees Brix"])
        .kw(&["sugar", "juice", "wine"]),
    // ---- medicine & physiology -----------------------------------------
    u("MG-PER-KG-BW", "milligram per kilogram of body weight", "毫克每千克体重", "mg/kg(bw)", "DrugDose", 1e-6, 2.0)
        .kw(&["dose", "pharmacology", "toxicity"]),
    u("ML-PER-HR", "millilitre per hour", "毫升每小时", "mL/h", "InfusionRate", 1e-6 / 3600.0, 2.0)
        .aliases(&["milliliters per hour"])
        .kw(&["infusion", "iv", "pump"]),
    u("BR-PER-MIN", "breath per minute", "次呼吸每分", "br/min", "RespiratoryRate", 1.0 / 60.0, 2.0)
        .aliases(&["breaths per minute"])
        .kw(&["respiration", "vital", "sign"]),
    u("G-PER-CM2", "gram per square centimetre", "克每平方厘米", "g/cm²", "BoneDensity", 10.0, 1.0)
        .aliases(&["gram per square centimeter"])
        .kw(&["bone", "dxa", "density"]),
    u("KG-PER-M2-BMI", "kilogram per square metre", "千克每平方米", "kg/m²", "BodyMassIndex", 1.0, 6.0)
        .aliases(&["kilogram per square meter"])
        .kw(&["bmi", "body", "mass"]),
    u("BAC-PCT", "percent blood alcohol", "血醇百分比", "% BAC", "BloodAlcohol", 10.0, 1.5)
        .aliases(&["percent BAC"])
        .kw(&["alcohol", "blood", "driving"]),
    u("G-PER-DL", "gram per decilitre", "克每分升", "g/dL", "HemoglobinLevel", 10.0, 2.0)
        .aliases(&["gram per deciliter"])
        .kw(&["hemoglobin", "blood", "anemia"]),
    u("PER-100K", "case per hundred thousand", "每十万人病例", "/100k", "Prevalence", 1e-5, 2.0)
        .aliases(&["cases per 100000"])
        .kw(&["incidence", "epidemiology", "population"]),
    // ---- computing & information ---------------------------------------
    u("MIPS", "million instructions per second", "百万指令每秒", "MIPS", "InstructionRate", 1e6, 2.0)
        .kw(&["cpu", "benchmark", "instructions"]),
    u("BAUD", "baud", "波特", "Bd", "SymbolRate", 1.0, 3.0)
        .aliases(&["bauds"])
        .kw(&["modem", "serial", "symbol"])
        .prefixable(),
    u("GB-PER-IN2", "gigabyte per square inch", "吉字节每平方英寸", "GB/in²", "ArealDataDensity", 8e9 / 6.4516e-4, 0.5)
        .kw(&["areal", "density", "platter"]),
    u("SHANNON", "shannon", "香农", "Sh", "InformationEntropy", 1.0, 0.5)
        .aliases(&["shannons"])
        .kw(&["entropy", "information", "theory"]),
    // ---- astronomy & geoscience ----------------------------------------
    u("MAS-PER-YR", "milliarcsecond per year", "毫角秒每年", "mas/yr", "ProperMotion", 4.848_136_811e-9 / 3.155_76e7, 0.3)
        .aliases(&["milliarcseconds per year"])
        .kw(&["proper", "motion", "star"]),
    u("PER-CM2", "per square centimetre", "每平方厘米", "cm⁻²", "ColumnDensity", 1e4, 0.4)
        .kw(&["column", "density", "absorption"]),
    u("K-PER-KM", "kelvin per kilometre", "开每千米", "K/km", "GeothermalGradient", 0.001, 0.5)
        .aliases(&["kelvin per kilometer"])
        .kw(&["geothermal", "borehole", "gradient"]),
    u("PER-CM2-SEC", "per square centimetre second", "每平方厘米秒", "cm⁻²·s⁻¹", "NeutronFlux", 1e4, 0.3)
        .kw(&["neutron", "reactor", "flux"]),
    // ---- built environment & society ------------------------------------
    u("M-HEAD", "metre of head", "扬程米", "m(head)", "PumpHead", 1.0, 1.5)
        .aliases(&["meters of head"])
        .kw(&["pump", "head", "lift"]),
    u("KM-VIS", "kilometre of visibility", "能见度千米", "km(vis)", "Visibility", 1000.0, 2.0)
        .aliases(&["kilometers of visibility"])
        .kw(&["visibility", "fog", "aviation"]),
    u("OKTA", "okta", "八分云量", "okta", "CloudCover", 0.125, 0.8)
        .aliases(&["oktas"])
        .kw(&["cloud", "cover", "meteorology"]),
    u("ACH", "air change per hour", "每小时换气次数", "ACH", "AirChangeRate", 1.0 / 3600.0, 1.0)
        .aliases(&["air changes per hour"])
        .kw(&["ventilation", "hvac", "room"]),
    u("PERSON-PER-M2", "person per square metre", "人每平方米", "人/m²", "CrowdDensity", 1.0, 1.5)
        .aliases(&["people per square meter"])
        .kw(&["crowd", "density", "safety"]),
    u("VEH-PER-HR", "vehicle per hour", "辆每小时", "veh/h", "TrafficFlow", 1.0 / 3600.0, 1.5)
        .aliases(&["vehicles per hour"])
        .kw(&["traffic", "flow", "road"]),
    u("VEH-PER-KM", "vehicle per kilometre", "辆每千米", "veh/km", "TrafficDensity", 0.001, 0.8)
        .aliases(&["vehicles per kilometer"])
        .kw(&["traffic", "density", "congestion"]),
    u("PERSON-PER-KM2", "person per square kilometre", "人每平方千米", "人/km²", "PopulationDensity", 1e-6, 4.0)
        .aliases(&["people per square kilometer"])
        .kw(&["population", "density", "census"]),
    u("PERMILLE-PER-YR", "per mille per year", "千分之每年", "‰/yr", "BirthRate", 0.001 / 3.155_76e7, 0.8)
        .kw(&["birth", "rate", "demography"]),
    u("C-RATE", "C-rate", "充放电倍率", "C", "ChargeRate", 1.0 / 3600.0, 2.0)
        .aliases(&["C rates"])
        .kw(&["battery", "charge", "discharge"]),
    u("PER-M-CURV", "reciprocal metre of curvature", "每米曲率", "m⁻¹(curv)", "Curvature", 1.0, 0.3)
        .kw(&["curvature", "bend", "geometry"]),
    u("PER-SEC-STRAIN", "strain per second", "每秒应变", "s⁻¹(ε̇)", "StrainRate", 1.0, 0.4)
        .kw(&["strain", "rate", "deformation"]),
    u("PER-SEC-SHEAR", "shear per second", "每秒剪切", "s⁻¹(γ̇)", "ShearRate", 1.0, 0.4)
        .kw(&["shear", "rheology", "viscometer"]),
    u("PER-CM-ABS", "per centimetre of absorption", "每厘米吸收", "cm⁻¹(abs)", "AbsorptionCoefficient", 100.0, 0.4)
        .kw(&["absorption", "spectroscopy", "attenuation"]),
    u("KARAT", "karat", "开金", "kt", "Fineness", 1.0 / 24.0, 3.0)
        .aliases(&["karats", "carat gold"])
        .kw(&["gold", "purity", "jewelry"]),
    // ---- everyday & applied kinds ---------------------------------------
    u("MIN-PER-KM", "minute per kilometre", "分钟每千米", "min/km", "Pace", 0.06, 5.0)
        .aliases(&["minutes per kilometer"])
        .kw(&["running", "pace", "marathon"]),
    u("G-PER-KWH", "gram per kilowatt hour", "克每千瓦时", "g/kWh", "SpecificFuelConsumption", 1e-3 / 3.6e6, 0.8)
        .kw(&["bsfc", "engine", "consumption"]),
    u("UMOL-PER-M2-SEC", "micromole per square metre second", "微摩尔每平方米秒", "µmol/(m²·s)", "PhotonFluxDensity", 1e-6, 0.5)
        .aliases(&["PPFD"])
        .kw(&["ppfd", "grow", "light"]),
    u("G-PER-M2-DAY", "gram per square metre day", "克每平方米天", "g/(m²·d)", "VapourTransmissionRate", 1e-3 / 86_400.0, 0.4)
        .kw(&["vapor", "membrane", "breathability"]),
    u("M2-PER-G", "square metre per gram", "平方米每克", "m²/g", "SpecificSurfaceArea", 1000.0, 0.5)
        .aliases(&["square meters per gram"])
        .kw(&["bet", "surface", "catalyst"]),
    u("CMOL-PER-KG", "centimole per kilogram", "厘摩尔每千克", "cmol/kg", "CationExchange", 0.01, 0.4)
        .aliases(&["cmol(+)/kg"])
        .kw(&["soil", "cation", "exchange"]),
    u("HP-PER-TONNE", "horsepower per tonne", "马力每吨", "hp/t", "PowerToWeight", 0.745_699_871_582_270_2, 1.5)
        .aliases(&["horsepower per ton"])
        .kw(&["power", "weight", "performance"]),
    u("M2-PER-PERSON", "square metre per person", "人均平方米", "m²/人", "PerCapitaArea", 1.0, 2.0)
        .aliases(&["square meters per person"])
        .kw(&["housing", "floor", "capita"]),
    u("MG-PER-DAY", "milligram per day", "毫克每天", "mg/d", "DailyDose", 1e-6 / 86_400.0, 2.0)
        .aliases(&["milligrams per day"])
        .kw(&["dose", "daily", "supplement"]),
    u("MM-PER-YR", "millimetre per year", "毫米每年", "mm/yr", "CorrosionRate", 0.001 / 3.155_76e7, 0.8)
        .aliases(&["millimeters per year"])
        .kw(&["corrosion", "erosion", "rate"]),
    u("T-PER-DAY", "tonne per day", "吨每天", "t/d", "SedimentTransport", 1000.0 / 86_400.0, 0.8)
        .aliases(&["tonnes per day"])
        .kw(&["sediment", "river", "load"]),
    u("MM-PER-DAY", "millimetre per day", "毫米每天", "mm/d", "Evapotranspiration", 0.001 / 86_400.0, 0.8)
        .aliases(&["millimeters per day"])
        .kw(&["evapotranspiration", "irrigation", "crop"]),
    u("ML-PER-KG-MIN", "millilitre per kilogram minute", "毫升每千克分钟", "mL/(kg·min)", "OxygenUptake", 1e-6 / 60.0, 1.0)
        .aliases(&["VO2"])
        .kw(&["vo2max", "fitness", "aerobic"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apparent_and_reactive_power_are_coherent_watts() {
        for code in ["VA", "VAR"] {
            let unit = UNITS.iter().find(|s| s.code == code).unwrap();
            assert_eq!(unit.factor, 1.0, "{code} should be SI-coherent");
            assert!(unit.prefixable, "{code} carries the kVA/kvar grid");
        }
    }

    #[test]
    fn c_rate_is_per_hour() {
        let c = UNITS.iter().find(|s| s.code == "C-RATE").unwrap();
        assert!((c.factor * 3600.0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pace_inverts_speed() {
        // 6 min/km pace = 10 km/h: 6 * 0.06 s/m = 0.36 s/m = 1 / (2.7778 m/s).
        let pace = UNITS.iter().find(|s| s.code == "MIN-PER-KM").unwrap();
        assert!((6.0 * pace.factor - 1.0 / (10_000.0 / 3600.0)).abs() < 1e-9);
    }

    #[test]
    fn vickers_hardness_is_kgf_per_mm2() {
        let hv = UNITS.iter().find(|s| s.code == "HV-HARDNESS").unwrap();
        assert!((hv.factor - 9.806_65 / 1e-6).abs() < 1e-3);
    }
}
