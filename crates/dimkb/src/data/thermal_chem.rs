//! Thermal, chemical, photometric and radiological units, plus frequency.

use crate::spec::{u, UnitSpec};

/// Thermal / chemistry / light / radiation / frequency units.
pub const UNITS: &[UnitSpec] = &[
    // ---- frequency --------------------------------------------------------
    u("HZ", "hertz", "赫兹", "Hz", "Frequency", 1.0, 75.0)
        .aliases(&["赫"])
        .kw(&["frequency", "wave", "signal", "si"])
        .prefixable(),
    u("RPM", "revolution per minute", "转每分钟", "rpm", "RotationalSpeed", 1.0 / 60.0, 40.0)
        .aliases(&["revolutions per minute", "rev/min", "r/min"])
        .kw(&["engine", "motor", "rotation"]),
    u("BPM", "beat per minute", "次每分钟", "bpm", "HeartRate", 1.0 / 60.0, 35.0)
        .aliases(&["beats per minute"])
        .kw(&["heart", "music", "tempo"]),
    u("RAD-PER-SEC", "radian per second", "弧度每秒", "rad/s", "AngularVelocity", 1.0, 8.0)
        .aliases(&["radians per second"])
        .kw(&["angular", "rotation", "physics"]),
    u("DEG-PER-SEC", "degree per second", "度每秒", "°/s", "AngularVelocity", 0.017_453_292_519_943_295, 4.0)
        .aliases(&["degrees per second", "deg/s"])
        .kw(&["gyroscope", "rotation", "turret"]),
    u("PER-M", "reciprocal metre", "每米", "m⁻¹", "Wavenumber", 1.0, 2.0)
        .aliases(&["reciprocal meter", "1/m", "m-1"])
        .kw(&["wavenumber", "optics"]),
    u("PER-CM", "reciprocal centimetre", "每厘米", "cm⁻¹", "Wavenumber", 100.0, 4.0)
        .aliases(&["reciprocal centimeter", "1/cm", "kayser"])
        .kw(&["spectroscopy", "infrared", "wavenumber"]),
    // ---- thermal -----------------------------------------------------------
    u("J-PER-K", "joule per kelvin", "焦耳每开尔文", "J/K", "HeatCapacity", 1.0, 5.0)
        .aliases(&["J/K"])
        .kw(&["heat", "capacity", "entropy"]),
    u("J-PER-KG-K", "joule per kilogram kelvin", "焦耳每千克开尔文", "J/(kg·K)", "SpecificHeatCapacity", 1.0, 8.0)
        .aliases(&["J/(kg K)", "J/kg/K", "J/kg·K"])
        .kw(&["specific", "heat", "water"]),
    u("CAL-PER-G-C", "calorie per gram degree Celsius", "卡每克摄氏度", "cal/(g·°C)", "SpecificHeatCapacity", 4184.0, 4.0)
        .aliases(&["cal/g/°C", "cal/(g C)"])
        .kw(&["specific", "heat", "classical"]),
    u("W-PER-M-K", "watt per metre kelvin", "瓦特每米开尔文", "W/(m·K)", "ThermalConductivity", 1.0, 6.0)
        .aliases(&["watt per meter kelvin", "W/m/K", "W/m·K"])
        .kw(&["thermal", "conductivity", "insulation"]),
    u("W-PER-M2", "watt per square metre", "瓦特每平方米", "W/m²", "Irradiance", 1.0, 10.0)
        .aliases(&["watt per square meter", "W/m2"])
        .kw(&["solar", "radiation", "flux"]),
    u("K-PER-W", "kelvin per watt", "开尔文每瓦特", "K/W", "ThermalResistance", 1.0, 3.0)
        .aliases(&["K/W", "°C/W"])
        .kw(&["thermal", "resistance", "heatsink"]),
    u("K-PER-M", "kelvin per metre", "开尔文每米", "K/m", "TemperatureGradient", 1.0, 1.0)
        .aliases(&["kelvin per meter", "K/m"])
        .kw(&["gradient", "geothermal", "lapse"]),
    u("PER-K", "reciprocal kelvin", "每开尔文", "K⁻¹", "ThermalExpansion", 1.0, 1.0)
        .aliases(&["1/K", "K-1"])
        .kw(&["expansion", "coefficient", "thermal"]),
    // ---- chemistry ------------------------------------------------------------
    u("MOL-PER-L", "mole per litre", "摩尔每升", "mol/L", "Concentration", 1000.0, 30.0)
        .aliases(&["mole per liter", "molar", "mol/l"])
        .kw(&["solution", "molarity", "laboratory"]),
    u("MOL-PER-M3", "mole per cubic metre", "摩尔每立方米", "mol/m³", "Concentration", 1.0, 3.0)
        .aliases(&["mole per cubic meter", "mol/m3"])
        .kw(&["concentration", "si", "gas"]),
    u("MMOL-PER-L", "millimole per litre", "毫摩尔每升", "mmol/L", "BloodGlucose", 1.0, 18.0)
        .aliases(&["millimole per liter", "mmol/l"])
        .kw(&["blood", "glucose", "medical"]),
    u("G-PER-L", "gram per litre", "克每升", "g/L", "MassConcentration", 1.0, 12.0)
        .aliases(&["gram per liter", "g/l"])
        .kw(&["solution", "concentration", "brewing"]),
    u("MG-PER-DL", "milligram per decilitre", "毫克每分升", "mg/dL", "MassConcentration", 0.01, 10.0)
        .aliases(&["milligram per deciliter", "mg/dl"])
        .kw(&["blood", "cholesterol", "medical"]),
    u("G-PER-MOL", "gram per mole", "克每摩尔", "g/mol", "MolarMass", 1e-3, 20.0)
        .aliases(&["grams per mole"])
        .kw(&["molar", "mass", "molecule"]),
    u("L-PER-MOL", "litre per mole", "升每摩尔", "L/mol", "MolarVolume", 1e-3, 4.0)
        .aliases(&["liter per mole", "l/mol"])
        .kw(&["molar", "volume", "gas"]),
    u("J-PER-MOL", "joule per mole", "焦耳每摩尔", "J/mol", "MolarEnergy", 1.0, 8.0)
        .aliases(&["J/mol"])
        .kw(&["molar", "energy", "reaction"])
        .prefixable(),
    u("J-PER-MOL-K", "joule per mole kelvin", "焦耳每摩尔开尔文", "J/(mol·K)", "MolarHeatCapacity", 1.0, 3.0)
        .aliases(&["J/(mol K)", "J/mol/K"])
        .kw(&["molar", "heat", "gas", "constant"]),
    u("KAT", "katal", "开特", "kat", "CatalyticActivity", 1.0, 1.0)
        .aliases(&["katals"])
        .kw(&["enzyme", "catalysis", "si"])
        .prefixable(),
    u("ENZ-U", "enzyme unit", "酶活力单位", "U", "EnzymeActivity", 1.0 / 60.0 * 1e-6, 3.0)
        .aliases(&["enzyme units", "IU"])
        .kw(&["enzyme", "assay", "biochemistry"]),
    u("MOL-PER-KG", "mole per kilogram", "摩尔每千克", "mol/kg", "Molality", 1.0, 2.0)
        .aliases(&["molal"])
        .kw(&["molality", "solution", "solvent"]),
    // ---- photometry -------------------------------------------------------------
    u("LM", "lumen", "流明", "lm", "LuminousFlux", 1.0, 32.0)
        .aliases(&["lumens"])
        .kw(&["light", "bulb", "brightness"])
        .prefixable(),
    u("LX", "lux", "勒克斯", "lx", "Illuminance", 1.0, 22.0)
        .aliases(&["luxes"])
        .kw(&["illumination", "light", "office"])
        .prefixable(),
    u("FC", "foot-candle", "英尺烛光", "fc", "Illuminance", 10.763_910_416_709_722, 3.0)
        .aliases(&["foot candle", "footcandle"])
        .kw(&["illumination", "imperial", "photography"]),
    u("CD-PER-M2", "candela per square metre", "坎德拉每平方米", "cd/m²", "Luminance", 1.0, 10.0)
        .aliases(&["candela per square meter", "nit", "nits", "cd/m2"])
        .kw(&["display", "screen", "brightness"]),
    // ---- radiation ----------------------------------------------------------------
    u("BQ", "becquerel", "贝可勒尔", "Bq", "Radioactivity", 1.0, 10.0)
        .aliases(&["becquerels", "贝可"])
        .kw(&["radioactive", "decay", "si"])
        .prefixable(),
    u("CI", "curie", "居里", "Ci", "Radioactivity", 3.7e10, 6.0)
        .aliases(&["curies"])
        .kw(&["radioactive", "radium", "historical"]),
    u("GY", "gray", "戈瑞", "Gy", "AbsorbedDose", 1.0, 6.0)
        .aliases(&["grays", "戈"])
        .kw(&["radiation", "dose", "therapy"])
        .prefixable(),
    u("RAD-DOSE", "rad", "拉德", "rd", "AbsorbedDose", 0.01, 2.0)
        .kw(&["radiation", "dose", "historical"]),
    u("SV", "sievert", "希沃特", "Sv", "DoseEquivalent", 1.0, 15.0)
        .aliases(&["sieverts", "希"])
        .kw(&["radiation", "protection", "exposure"])
        .prefixable(),
    u("REM", "rem", "雷姆", "rem", "DoseEquivalent", 0.01, 3.0)
        .aliases(&["rems"])
        .kw(&["radiation", "dose", "historical"]),
    u("R-ROENTGEN", "roentgen", "伦琴", "R", "RadiationExposure", 2.58e-4, 3.0)
        .aliases(&["röntgen", "roentgens"])
        .kw(&["x-ray", "exposure", "historical"]),
    u("W-PER-SR", "watt per steradian", "瓦特每球面度", "W/sr", "RadiantIntensity", 1.0, 1.0)
        .aliases(&["W/sr"])
        .kw(&["radiant", "intensity", "beam"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpm_is_one_sixtieth_hertz() {
        let rpm = UNITS.iter().find(|s| s.code == "RPM").unwrap();
        assert!((rpm.factor - 1.0 / 60.0).abs() < 1e-15);
    }

    #[test]
    fn molar_is_1000_si() {
        let m = UNITS.iter().find(|s| s.code == "MOL-PER-L").unwrap();
        assert_eq!(m.factor, 1000.0, "1 mol/L = 1000 mol/m³");
    }

    #[test]
    fn curie_in_becquerels() {
        let ci = UNITS.iter().find(|s| s.code == "CI").unwrap();
        assert_eq!(ci.factor, 3.7e10);
    }

    #[test]
    fn rem_is_hundredth_sievert() {
        let rem = UNITS.iter().find(|s| s.code == "REM").unwrap();
        assert_eq!(rem.factor, 0.01);
    }
}
