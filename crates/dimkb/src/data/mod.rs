//! Curated source data for `DimUnitKB`.
//!
//! The paper builds DimUnitKB from QUDT plus manual bilingual curation; this
//! module is the equivalent curated corpus, organised by domain. The tables
//! here are *specifications*; [`crate::DimUnitKb::standard`] expands them
//! (SI prefixes, derived keywords, Eq. 1–2 frequency scoring) into the full
//! knowledge base.

pub mod base_si;
pub mod chinese;
pub mod currency;
pub mod derived;
pub mod electromagnetic;
pub mod extended;
pub mod geometry;
pub mod imperial;
pub mod information;
pub mod kinds;
pub mod mechanics;
pub mod narrow;
pub mod specialist;
pub mod thermal_chem;

use crate::spec::{KindSpec, UnitSpec};

/// All quantity-kind specifications.
pub fn all_kinds() -> &'static [KindSpec] {
    kinds::KINDS
}

/// All curated unit specifications across every domain table.
pub fn all_units() -> Vec<&'static UnitSpec> {
    let tables: [&[UnitSpec]; 13] = [
        base_si::UNITS,
        geometry::UNITS,
        mechanics::UNITS,
        electromagnetic::UNITS,
        thermal_chem::UNITS,
        chinese::UNITS,
        information::UNITS,
        derived::UNITS,
        extended::UNITS,
        narrow::UNITS,
        specialist::UNITS,
        imperial::UNITS,
        currency::UNITS,
    ];
    tables.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn unit_codes_are_globally_unique() {
        let mut seen = HashSet::new();
        for spec in all_units() {
            assert!(seen.insert(spec.code), "duplicate unit code {}", spec.code);
        }
    }

    #[test]
    fn every_unit_references_a_known_kind() {
        let kinds: HashSet<&str> = all_kinds()
            .iter()
            .flat_map(|k| std::iter::once(k.name_en).chain(k.narrow.iter().map(|(n, _)| *n)))
            .collect();
        for spec in all_units() {
            assert!(kinds.contains(spec.kind), "unit {} has unknown kind {}", spec.code, spec.kind);
        }
    }

    #[test]
    fn factors_are_positive_and_finite() {
        for spec in all_units() {
            assert!(spec.factor.is_finite() && spec.factor > 0.0, "unit {}", spec.code);
            assert!(spec.offset.is_finite(), "unit {}", spec.code);
        }
    }

    #[test]
    fn popularity_is_in_range() {
        for spec in all_units() {
            assert!(spec.pop > 0.0 && spec.pop <= 100.0, "unit {} pop {}", spec.code, spec.pop);
        }
    }

    #[test]
    fn curated_count_is_substantial() {
        assert!(all_units().len() >= 200, "got {}", all_units().len());
    }

    #[test]
    fn labels_are_nonempty_and_bilingual() {
        for spec in all_units() {
            assert!(!spec.en.is_empty(), "unit {} missing english label", spec.code);
            assert!(!spec.zh.is_empty(), "unit {} missing chinese label", spec.code);
            assert!(!spec.sym.is_empty(), "unit {} missing symbol", spec.code);
        }
    }

    #[test]
    fn units_of_same_kind_have_distinct_factors_or_offsets() {
        // Units of one kind should mostly differ in scale; exact duplicates
        // (same factor AND offset) within one kind are suspicious unless
        // they are genuinely synonymous records, which we forbid.
        let mut by_kind: HashMap<(&str, u64, u64), Vec<&str>> = HashMap::new();
        for spec in all_units() {
            by_kind
                .entry((spec.kind, spec.factor.to_bits(), spec.offset.to_bits()))
                .or_default()
                .push(spec.code);
        }
        for ((kind, _, _), codes) in by_kind {
            // Genuinely synonymous scales are allowed in small numbers:
            // 公斤 = kg, and g/cm³ = g/mL = kg/L are the known families.
            assert!(
                codes.len() <= 3,
                "kind {kind} has {} identical-scale units: {codes:?}",
                codes.len()
            );
        }
    }
}
