//! Imperial and US-customary long-tail units.
//!
//! The seed KB already carries the everyday imperial core (inch/foot/mile,
//! pound/ounce, US gallon, acre). This module adds the long tail the paper's
//! 1778-unit KB covers: UK/US split volumes, survey measures, apothecary and
//! wool weights, and legacy engineering units. All factors are exact where
//! the defining statute is exact (1959 international yard and pound).

use crate::spec::{u, UnitSpec};

/// Imperial/US-customary curated units.
pub const UNITS: &[UnitSpec] = &[
    // ---- UK (imperial) volumes -----------------------------------------
    u("PT-UK", "imperial pint", "英制品脱", "pt(imp)", "Volume", 5.682_612_5e-4, 6.0)
        .aliases(&["imperial pints", "UK pint"])
        .kw(&["beer", "milk", "britain"]),
    u("QT-UK", "imperial quart", "英制夸脱", "qt(imp)", "Volume", 1.136_522_5e-3, 2.0)
        .aliases(&["UK quart"])
        .kw(&["imperial", "volume", "britain"]),
    u("FLOZ-UK", "imperial fluid ounce", "英制液盎司", "fl oz(imp)", "Volume", 2.841_306_25e-5, 3.0)
        .aliases(&["UK fluid ounce"])
        .kw(&["imperial", "fluid", "recipe"]),
    u("GILL-UK", "imperial gill", "英制及耳", "gi(imp)", "Volume", 1.420_653_125e-4, 0.8)
        .aliases(&["UK gill"])
        .kw(&["spirits", "pub", "measure"]),
    u("BUSHEL-UK", "imperial bushel", "英制蒲式耳", "bu(imp)", "Volume", 0.036_368_72, 1.0)
        .aliases(&["UK bushel"])
        .kw(&["grain", "imperial", "harvest"]),
    u("POTTLE", "pottle", "半加仑壶", "pottle", "Volume", 2.273_045e-3, 0.3)
        .aliases(&["pottles"])
        .kw(&["half", "gallon", "archaic"]),
    u("PIN-CASK", "pin cask", "小桶品", "pin", "Volume", 0.020_456_603_4, 0.3)
        .aliases(&["pin of ale"])
        .kw(&["cask", "ale", "brewing"]),
    u("KILDERKIN", "kilderkin", "半桶", "kil", "Volume", 0.081_826_413_6, 0.3)
        .aliases(&["kilderkins"])
        .kw(&["cask", "ale", "brewing"]),
    u("TUN-VOL", "tun", "大桶", "tun", "Volume", 0.953_923_769_568, 0.4)
        .aliases(&["tuns"])
        .kw(&["wine", "cask", "cellar"]),
    u("CRAN", "cran", "鲱鱼桶", "cran", "Volume", 0.170_478_675, 0.2)
        .aliases(&["crans"])
        .kw(&["herring", "fishing", "scotland"]),
    u("MINIM-UK", "imperial minim", "英制量滴", "min(imp)", "Volume", 5.919_388_020_833e-8, 0.2)
        .aliases(&["minims"])
        .kw(&["apothecary", "drop", "pharmacy"]),
    // ---- US dry & apothecary volumes -----------------------------------
    u("PT-US-DRY", "US dry pint", "美制干品脱", "pt(dry)", "Volume", 5.506_104_713_575e-4, 1.0)
        .aliases(&["dry pints"])
        .kw(&["berries", "produce", "dry"]),
    u("QT-US-DRY", "US dry quart", "美制干夸脱", "qt(dry)", "Volume", 1.101_220_942_715e-3, 0.8)
        .aliases(&["dry quarts"])
        .kw(&["produce", "dry", "market"]),
    u("DRY-BBL-US", "US dry barrel", "美制干桶", "bbl(dry)", "Volume", 0.115_628_198_985_075, 0.5)
        .aliases(&["dry barrels"])
        .kw(&["cranberry", "dry", "commodity"]),
    u("FLDR-US", "US fluid dram", "美制液打兰", "fl dr", "Volume", 3.696_691_195_312_5e-6, 0.3)
        .aliases(&["fluid drams"])
        .kw(&["apothecary", "medicine", "dose"]),
    // ---- hundredweights, troy & wool weights ---------------------------
    u("CWT-UK", "long hundredweight", "英担", "cwt(UK)", "Mass", 50.802_345_44, 1.0)
        .aliases(&["imperial hundredweight"])
        .kw(&["hundredweight", "imperial", "freight"]),
    u("CWT-US", "short hundredweight", "美担", "cwt(US)", "Mass", 45.359_237, 1.0)
        .aliases(&["cental"])
        .kw(&["hundredweight", "commodity", "livestock"]),
    u("TROY-LB", "troy pound", "金衡磅", "lb t", "Mass", 0.373_241_721_6, 0.8)
        .aliases(&["troy pounds"])
        .kw(&["troy", "bullion", "precious"]),
    u("TROY-OZ", "troy ounce", "金衡盎司", "oz t", "Mass", 0.031_103_476_8, 5.0)
        .aliases(&["troy ounces"])
        .kw(&["gold", "silver", "bullion"]),
    u("CLOVE", "clove", "羊毛克洛夫", "clove", "Mass", 3.628_738_96, 0.2)
        .aliases(&["cloves of wool"])
        .kw(&["wool", "archaic", "trade"]),
    u("TOD", "tod", "羊毛托德", "tod", "Mass", 12.700_586_36, 0.2)
        .aliases(&["tods"])
        .kw(&["wool", "archaic", "trade"]),
    u("SACK-WOOL", "woolsack", "羊毛袋", "sack", "Mass", 165.107_626_68, 0.2)
        .aliases(&["sacks of wool"])
        .kw(&["wool", "sack", "trade"]),
    // ---- survey measures ------------------------------------------------
    u("LINK-SURVEY", "surveyor's link", "测链节", "li", "Length", 0.201_168_4, 0.5)
        .aliases(&["links"])
        .kw(&["survey", "gunter", "chain"]),
    u("FT-SURVEY", "US survey foot", "美国测量英尺", "ft(US)", "Length", 0.304_800_609_601, 0.8)
        .aliases(&["survey feet"])
        .kw(&["survey", "geodesy", "legacy"]),
    u("MI-SURVEY", "US survey mile", "美国测量英里", "mi(US)", "Length", 1_609.347_218_694_4, 0.5)
        .aliases(&["survey miles"])
        .kw(&["survey", "township", "legacy"]),
    u("SQ-ROD", "square rod", "平方杆", "rd²", "Area", 25.292_852_64, 0.4)
        .aliases(&["square rods", "square perch"])
        .kw(&["survey", "plot", "land"]),
    u("SQ-CHAIN", "square chain", "平方测链", "ch²", "Area", 404.685_642_24, 0.4)
        .aliases(&["square chains"])
        .kw(&["survey", "gunter", "land"]),
    u("ROOD", "rood", "路得", "rood", "Area", 1_011.714_105_6, 0.3)
        .aliases(&["roods"])
        .kw(&["quarter", "acre", "land"]),
    u("SECTION", "section of land", "土地段", "sec(land)", "Area", 2.589_988_110_336e6, 0.5)
        .aliases(&["sections"])
        .kw(&["township", "survey", "square mile"]),
    u("TOWNSHIP", "survey township", "镇区", "twp", "Area", 9.323_957_197_209_6e7, 0.3)
        .aliases(&["townships"])
        .kw(&["survey", "public land", "grid"]),
    // ---- legacy lengths -------------------------------------------------
    u("CABLE", "cable length", "链长", "cb", "Length", 185.2, 0.5)
        .aliases(&["cable lengths"])
        .kw(&["nautical", "anchor", "tenth mile"]),
    u("BARLEYCORN", "barleycorn", "大麦粒", "Bc", "Length", 8.466_666_666_667e-3, 0.3)
        .aliases(&["barleycorns"])
        .kw(&["shoe", "size", "third inch"]),
    u("ELL", "ell", "厄尔", "ell", "Length", 1.143, 0.3)
        .aliases(&["ells"])
        .kw(&["cloth", "textile", "archaic"]),
    u("NAIL-CLOTH", "cloth nail", "布纳尔", "nail", "Length", 0.057_15, 0.2)
        .aliases(&["nails of cloth"])
        .kw(&["cloth", "sixteenth", "yard"]),
    u("SPAN-IMP", "hand span", "一拃", "span", "Span", 0.228_6, 0.4)
        .aliases(&["spans"])
        .kw(&["hand", "nine inches", "body"]),
    u("SHAFTMENT", "shaftment", "拳幅", "sft", "Length", 0.152_4, 0.2)
        .aliases(&["shaftments"])
        .kw(&["fist", "thumb", "archaic"]),
    u("MIL-THOU", "thou", "密尔", "mil", "Thickness", 2.54e-5, 2.0)
        .aliases(&["mils", "thousandth of an inch"])
        .kw(&["machining", "pcb", "tolerance"]),
    u("CIRCULAR-MIL", "circular mil", "圆密尔", "cmil", "CrossSection", 5.067_074_790_975e-10, 0.5)
        .aliases(&["circular mils"])
        .kw(&["wire", "gauge", "conductor"]),
    // ---- legacy engineering ---------------------------------------------
    u("HP-BOILER", "boiler horsepower", "锅炉马力", "hp(S)", "Power", 9809.5, 0.5)
        .aliases(&["boiler horsepowers"])
        .kw(&["boiler", "steam", "rating"]),
    u("HP-ELECTRIC", "electrical horsepower", "电工马力", "hp(E)", "Power", 746.0, 0.8)
        .aliases(&["electric horsepower"])
        .kw(&["motor", "nameplate", "rating"]),
    u("IN-H2O", "inch of water column", "英寸水柱", "inH₂O", "Pressure", 249.088_9, 1.0)
        .aliases(&["inches of water"])
        .kw(&["duct", "hvac", "draft"]),
    u("FT-H2O", "foot of water column", "英尺水柱", "ftH₂O", "Pressure", 2_989.066_9, 0.5)
        .aliases(&["feet of water"])
        .kw(&["head", "hydraulic", "column"]),
    u("POUNDAL", "poundal", "磅达", "pdl", "Force", 0.138_254_954_376, 0.5)
        .aliases(&["poundals"])
        .kw(&["fps", "absolute", "force"]),
    u("FUR-PER-FTN", "furlong per fortnight", "弗隆每两周", "fur/ftn", "Velocity", 201.168 / 1_209_600.0, 0.2)
        .aliases(&["furlongs per fortnight"])
        .kw(&["whimsical", "slow", "physics joke"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imperial_pint_is_an_eighth_of_the_imperial_gallon() {
        let pt = UNITS.iter().find(|s| s.code == "PT-UK").unwrap();
        assert!((pt.factor * 8.0 - 4.546_09e-3).abs() < 1e-12);
    }

    #[test]
    fn hundredweights_differ_uk_vs_us() {
        let uk = UNITS.iter().find(|s| s.code == "CWT-UK").unwrap();
        let us = UNITS.iter().find(|s| s.code == "CWT-US").unwrap();
        assert!((uk.factor / 50.802_345_44 - 1.0).abs() < 1e-12);
        assert!((us.factor / 45.359_237 - 1.0).abs() < 1e-12);
        assert!(uk.factor > us.factor, "long cwt is 112 lb, short is 100 lb");
    }

    #[test]
    fn survey_foot_exceeds_international_foot() {
        let sf = UNITS.iter().find(|s| s.code == "FT-SURVEY").unwrap();
        assert!(sf.factor > 0.3048 && sf.factor < 0.304_801);
    }
}
