//! Units whose primary sense is a *narrow* quantity kind.
//!
//! QUDT distinguishes e.g. `Altitude` from `Length`; natural text does the
//! same ("cruising at flight level 350", "a 42-inch screen"). These curated
//! records give every narrow kind in the taxonomy at least one unit whose
//! everyday usage names that kind specifically, so dimension prediction can
//! rank the narrow sense above the broad one.

use crate::spec::{u, UnitSpec};

/// Narrow-kind curated units.
pub const UNITS: &[UnitSpec] = &[
    // ---- length narrows ------------------------------------------------
    u("FL", "flight level", "飞行高度层", "FL", "Altitude", 30.48, 6.0)
        .aliases(&["flight levels"])
        .kw(&["aviation", "altitude", "airspace"]),
    u("MASL", "metre above sea level", "海拔米", "m a.s.l.", "Elevation", 1.0, 10.0)
        .aliases(&["meter above sea level", "masl"])
        .kw(&["elevation", "terrain", "map"]),
    u("LIGNE", "ligne", "巴黎分", "ligne", "Diameter", 2.255_8e-3, 1.0)
        .aliases(&["lignes", "paris line"])
        .kw(&["watch", "movement", "horology"]),
    u("FRENCH-GAUGE", "french gauge", "法制规格", "Fr", "Diameter", 1.0 / 3000.0, 2.0)
        .aliases(&["french scale", "charriere"])
        .kw(&["catheter", "medical", "tube"]),
    u("DIGIT", "digit", "指宽", "digit", "Width", 0.019, 0.5)
        .aliases(&["fingerbreadth"])
        .kw(&["ancient", "anthropic", "hand"]),
    u("PALM", "palm", "掌宽", "plm", "Breadth", 0.0762, 0.5)
        .aliases(&["palms", "handbreadth"])
        .kw(&["ancient", "anthropic", "hand"]),
    u("IN-SCREEN", "screen inch", "屏幕英寸", "吋", "ScreenSize", 0.0254, 15.0)
        .aliases(&["inch diagonal", "英吋"])
        .kw(&["display", "television", "diagonal"]),
    u("WAN-KM", "ten thousand kilometres", "万公里", "万km", "Mileage", 1e7, 6.0)
        .aliases(&["ten thousand kilometers"])
        .kw(&["odometer", "vehicle", "service"]),
    u("POINT-TYPE", "typographic point", "磅值", "pt", "TypographicSize", 0.352_777_8e-3, 8.0)
        .aliases(&["points", "desktop publishing point"])
        .kw(&["font", "print", "typesetting"]),
    // ---- time narrows ---------------------------------------------------
    u("SUI-ZH", "sui", "岁", "岁", "Age", 3.155_76e7, 30.0)
        .aliases(&["years of age"])
        .kw(&["age", "person", "birthday"]),
    u("MYR", "megayear", "百万年", "Myr", "Lifetime", 3.155_76e13, 3.0)
        .aliases(&["million years", "megaannum"])
        .kw(&["geology", "stratum", "era"]),
    u("GYR", "gigayear", "十亿年", "Gyr", "HalfLife", 3.155_76e16, 2.0)
        .aliases(&["billion years", "gigaannum"])
        .kw(&["isotope", "decay", "cosmology"]),
    // ---- mass narrows ---------------------------------------------------
    u("DWTON", "deadweight tonne", "载重吨", "DWT", "Payload", 1000.0, 5.0)
        .aliases(&["deadweight ton", "deadweight tonnage"])
        .kw(&["ship", "cargo", "shipping"]),
    // ---- temperature narrows -------------------------------------------
    u("DEG-N", "degree Newton", "牛顿度", "°N", "BoilingPoint", 100.0 / 33.0, 0.3)
        .offset(273.15)
        .aliases(&["degrees Newton", "Newton scale"])
        .kw(&["historic", "scale", "boiling"]),
    // ---- current & voltage narrows -------------------------------------
    u("ABAMP", "abampere", "绝对安培", "abA", "RatedCurrent", 10.0, 0.5)
        .aliases(&["abamperes", "biot"])
        .kw(&["cgs", "electromagnetic", "rating"]),
    u("STATAMP", "statampere", "静电安培", "statA", "LeakageCurrent", 3.335_641e-10, 0.3)
        .aliases(&["statamperes"])
        .kw(&["cgs", "electrostatic", "leakage"]),
    u("ABVOLT", "abvolt", "绝对伏特", "abV", "RatedVoltage", 1e-8, 0.3)
        .aliases(&["abvolts"])
        .kw(&["cgs", "electromagnetic", "rating"]),
    // ---- dimensionless narrows -----------------------------------------
    u("RIU", "refractive index unit", "折射率单位", "RIU", "RefractiveIndex", 1.0, 1.0)
        .aliases(&["refractive index units"])
        .kw(&["optics", "sensor", "refraction"]),
    u("MICROSTRAIN", "microstrain", "微应变", "µε", "StrainValue", 1e-6, 4.0)
        .aliases(&["microstrains", "ue"])
        .kw(&["gauge", "deformation", "structural"]),
    // ---- area & volume narrows -----------------------------------------
    u("SQUARE-ROOF", "roofing square", "屋面平方", "sq.", "SurfaceArea", 9.290_304, 1.0)
        .aliases(&["squares"])
        .kw(&["roof", "construction", "shingle"]),
    u("CC", "cubic capacity", "排量毫升", "cc", "EngineDisplacement", 1e-6, 30.0)
        .aliases(&["ccs"])
        .kw(&["engine", "motorcycle", "displacement"]),
    u("REG-TON", "register ton", "登记吨", "RT", "StorageVolume", 2.831_684_659_2, 2.0)
        .aliases(&["register tons", "registered tonnage"])
        .kw(&["ship", "hold", "tonnage"]),
    // ---- angle narrows --------------------------------------------------
    u("DEG-LAT", "degree of latitude", "纬度度", "°lat", "Latitude", 0.017_453_292_519_943_295, 12.0)
        .aliases(&["degrees of latitude", "degrees north"])
        .kw(&["geography", "map", "coordinate"]),
    u("DEG-LON", "degree of longitude", "经度度", "°lon", "Longitude", 0.017_453_292_519_943_295, 12.0)
        .aliases(&["degrees of longitude", "degrees east"])
        .kw(&["geography", "map", "coordinate"]),
    u("GON", "gradian", "百分度", "gon", "Inclination", 0.015_707_963_267_948_967, 1.0)
        .aliases(&["gradians", "grade", "grads"])
        .kw(&["surveying", "slope", "theodolite"]),
    // ---- speed narrows --------------------------------------------------
    u("MPH", "mile per hour", "英里每小时", "mph", "Speed", 0.447_04, 40.0)
        .aliases(&["miles per hour", "mi/h"])
        .kw(&["car", "road", "speedometer"]),
    u("KMH", "kilometre per hour", "公里每小时", "kph", "TopSpeed", 1000.0 / 3600.0, 42.0)
        .aliases(&["kilometers per hour colloquial"])
        .kw(&["car", "top", "speed"]),
    u("FT-PER-MIN", "foot per minute", "英尺每分钟", "ft/min", "FlowVelocity", 0.3048 / 60.0, 3.0)
        .aliases(&["feet per minute", "fpm"])
        .kw(&["duct", "flow", "hvac"]),
    u("GEE", "standard gravity", "标准重力加速度", "g₀", "GravitationalAcceleration", 9.806_65, 8.0)
        .aliases(&["gee", "g-force", "gn"])
        .kw(&["gravity", "acceleration", "rocket"]),
    // ---- frequency narrows ----------------------------------------------
    u("CPS-CLOCK", "cycle per second", "周每秒", "cps", "ClockRate", 1.0, 3.0)
        .aliases(&["cycles per second"])
        .kw(&["clock", "processor", "oscillator"]),
    u("SPS", "sample per second", "采样每秒", "S/s", "SamplingRate", 1.0, 3.0)
        .aliases(&["samples per second"])
        .kw(&["adc", "audio", "sampling"]),
    // ---- flow narrows ---------------------------------------------------
    u("CUSEC", "cusec", "秒立方英尺", "cusec", "WaterDischarge", 0.028_316_846_592, 2.0)
        .aliases(&["cusecs", "cubic foot per second"])
        .kw(&["river", "discharge", "irrigation"]),
    u("ML-PER-DAY-FLOW", "megalitre per day", "兆升每天", "ML/d", "WaterDischarge", 1000.0 / 86_400.0, 1.5)
        .aliases(&["megaliters per day", "MLD"])
        .kw(&["reservoir", "treatment", "hydrology"]),
    // ---- force narrows --------------------------------------------------
    u("KIP", "kip", "千磅力", "kip", "Load", 4_448.221_615_260_5, 3.0)
        .aliases(&["kips", "kilopound"])
        .kw(&["structural", "engineering", "beam"]),
    // ---- density & material narrows ------------------------------------
    u("T-PER-M3", "tonne per cubic metre", "吨每立方米", "t/m³", "BulkDensity", 1000.0, 5.0)
        .aliases(&["tonne per cubic meter", "t/m3"])
        .kw(&["soil", "bulk", "aggregate"]),
    u("CLAUSIUS", "clausius", "克劳修斯", "Cl", "Entropy", 4.184, 0.3)
        .aliases(&["clausius unit"])
        .kw(&["thermodynamics", "historic", "entropy"]),
    // ---- irradiance narrows --------------------------------------------
    u("SOLAR-CONST", "solar constant", "太阳常数", "S₀", "SolarIrradiance", 1361.0, 2.0)
        .aliases(&["solar constants"])
        .kw(&["sun", "irradiance", "satellite"]),
    // ---- power narrows --------------------------------------------------
    u("MWE", "megawatt electrical", "兆瓦电功率", "MWe", "ElectricPower", 1e6, 4.0)
        .aliases(&["megawatts electric", "MW(e)"])
        .kw(&["plant", "grid", "generation"]),
    u("MWT", "megawatt thermal", "兆瓦热功率", "MWt", "RatedPower", 1e6, 3.0)
        .aliases(&["megawatts thermal", "MW(th)"])
        .kw(&["reactor", "thermal", "rating"]),
    u("L-SOL", "solar luminosity", "太阳光度", "L☉", "RadiantPower", 3.828e26, 2.0)
        .aliases(&["solar luminosities"])
        .kw(&["star", "astronomy", "luminosity"]),
    // ---- information narrows -------------------------------------------
    u("TIB", "tebibyte", "二进制太字节", "TiB", "StorageCapacity", 8.0 * 1_099_511_627_776.0, 8.0)
        .aliases(&["tebibytes"])
        .kw(&["storage", "disk", "binary"]),
    u("SECTOR", "disk sector", "扇区", "sect", "StorageCapacity", 4096.0, 2.0)
        .aliases(&["sectors"])
        .kw(&["disk", "block", "filesystem"]),
    u("MBPS", "megabit per second", "兆比特每秒", "Mbps", "Bandwidth", 1e6, 25.0)
        .aliases(&["megabits per second", "Mbit/s"])
        .kw(&["broadband", "network", "bandwidth"]),
    u("MB-PER-SEC", "megabyte per second", "兆字节每秒", "MB/s", "DownloadSpeed", 8e6, 20.0)
        .aliases(&["megabytes per second"])
        .kw(&["download", "transfer", "disk"]),
    // ---- ratio narrows --------------------------------------------------
    u("PCT-POINT", "percentage point", "百分点", "pp", "Efficiency", 0.01, 12.0)
        .aliases(&["percentage points"])
        .kw(&["efficiency", "statistics", "change"]),
    u("PCT-RH", "percent relative humidity", "相对湿度百分比", "%RH", "Humidity", 0.01, 15.0)
        .aliases(&["percent RH"])
        .kw(&["humidity", "weather", "hygrometer"]),
    u("ABV", "percent alcohol by volume", "酒精体积分数", "% abv", "AlcoholContent", 0.01, 10.0)
        .aliases(&["ABV", "alcohol by volume"])
        .kw(&["beer", "wine", "spirits"]),
    u("PROOF-US", "US proof", "酒度", "proof", "AlcoholContent", 0.005, 3.0)
        .aliases(&["proof"])
        .kw(&["spirits", "liquor", "distilled"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_level_is_hundreds_of_feet() {
        let fl = UNITS.iter().find(|s| s.code == "FL").unwrap();
        assert!((fl.factor / 0.3048 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn us_proof_is_half_abv() {
        let proof = UNITS.iter().find(|s| s.code == "PROOF-US").unwrap();
        let abv = UNITS.iter().find(|s| s.code == "ABV").unwrap();
        assert!((abv.factor / proof.factor - 2.0).abs() < 1e-12);
    }

    #[test]
    fn kmh_matches_si_speed() {
        let kmh = UNITS.iter().find(|s| s.code == "KMH").unwrap();
        assert!((kmh.factor * 3.6 - 1.0).abs() < 1e-12);
    }
}
