//! Error types for `DimUnitKB` operations.

use crate::dim::DimVec;
use std::fmt;

/// Errors raised by knowledge-base queries and conversions.
#[derive(Debug, Clone, PartialEq)]
pub enum KbError {
    /// No unit with the given surface form or code exists.
    UnknownUnit(String),
    /// No quantity kind with the given name exists.
    UnknownKind(String),
    /// Conversion between units of different dimensions (violates the
    /// dimension law).
    DimensionMismatch {
        /// Dimension of the source unit.
        from: DimVec,
        /// Dimension of the target unit.
        to: DimVec,
    },
    /// An affine unit (e.g. °C) was used inside a compound expression,
    /// where only multiplicative conversions are meaningful.
    AffineInCompound(String),
    /// A unit expression could not be parsed.
    ExprParse(String),
    /// A duplicate unit code was inserted while building the KB.
    DuplicateCode(String),
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::UnknownUnit(s) => write!(f, "unknown unit: {s:?}"),
            KbError::UnknownKind(s) => write!(f, "unknown quantity kind: {s:?}"),
            KbError::DimensionMismatch { from, to } => {
                write!(f, "dimension mismatch: cannot convert {from} to {to}")
            }
            KbError::AffineInCompound(s) => {
                write!(f, "affine unit {s:?} is not allowed in compound expressions")
            }
            KbError::ExprParse(s) => write!(f, "cannot parse unit expression: {s}"),
            KbError::DuplicateCode(s) => write!(f, "duplicate unit code: {s:?}"),
        }
    }
}

impl std::error::Error for KbError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::{Base, DimVec};

    #[test]
    fn display_messages_are_informative() {
        let e = KbError::DimensionMismatch {
            from: DimVec::from_exponents(&[(Base::Length, 1), (Base::Mass, 1), (Base::Time, -2)]),
            to: DimVec::from_exponents(&[(Base::Mass, 1), (Base::Time, -2)]),
        };
        assert_eq!(e.to_string(), "dimension mismatch: cannot convert LMT⁻² to MT⁻²");
        assert!(KbError::UnknownUnit("frob".into()).to_string().contains("frob"));
    }
}
