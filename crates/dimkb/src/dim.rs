//! Dimension vectors: the fundamental attribute of quantities.
//!
//! Following §II-A of the paper, every quantity `q` has a dimensional formula
//!
//! ```text
//! dim(q) = L^α M^β H^γ E^σ T^ε A^ζ I^η
//! ```
//!
//! over the seven base quantities of the SI (Table III of the paper): amount
//! of substance (A), electric current (E), length (L), luminous intensity
//! (I), mass (M), thermodynamic temperature (H) and time (T). A quantity
//! whose seven exponents are all zero is *dimensionless* (symbol D).
//!
//! [`DimVec`] stores the seven integer exponents and implements the
//! *dimension laws*: only quantities with identical dimensions may be added,
//! subtracted or compared, while multiplication/division of quantities adds/
//! subtracts their exponent vectors.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Div, Mul};
use std::str::FromStr;

/// The seven dimension bases, in the fixed order used by the paper's
/// `DimensionVec` feature (`A0E0L0I0M1H0T-2D0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Base {
    /// Amount of substance (mole).
    Amount,
    /// Electric current (ampere).
    Current,
    /// Length (metre).
    Length,
    /// Luminous intensity (candela).
    Luminous,
    /// Mass (kilogram).
    Mass,
    /// Thermodynamic temperature (kelvin).
    Temperature,
    /// Time (second).
    Time,
}

impl Base {
    /// All seven bases in `DimensionVec` order.
    pub const ALL: [Base; 7] = [
        Base::Amount,
        Base::Current,
        Base::Length,
        Base::Luminous,
        Base::Mass,
        Base::Temperature,
        Base::Time,
    ];

    /// One-letter dimension symbol used in dimensional formulas (Table III).
    pub fn symbol(self) -> char {
        match self {
            Base::Amount => 'A',
            Base::Current => 'E',
            Base::Length => 'L',
            Base::Luminous => 'I',
            Base::Mass => 'M',
            Base::Temperature => 'H',
            Base::Time => 'T',
        }
    }

    /// The SI base unit measuring this dimension.
    pub fn base_unit(self) -> &'static str {
        match self {
            Base::Amount => "mole",
            Base::Current => "ampere",
            Base::Length => "metre",
            Base::Luminous => "candela",
            Base::Mass => "kilogram",
            Base::Temperature => "kelvin",
            Base::Time => "second",
        }
    }

    /// The SI base unit symbol.
    pub fn base_unit_symbol(self) -> &'static str {
        match self {
            Base::Amount => "mol",
            Base::Current => "A",
            Base::Length => "m",
            Base::Luminous => "cd",
            Base::Mass => "kg",
            Base::Temperature => "K",
            Base::Time => "s",
        }
    }

    /// The fundamental quantity name (Table III).
    pub fn fundamental_quantity(self) -> &'static str {
        match self {
            Base::Amount => "Amount of Substance",
            Base::Current => "Electric Current",
            Base::Length => "Length",
            Base::Luminous => "Luminous Intensity",
            Base::Mass => "Mass",
            Base::Temperature => "Thermodynamic Temperature",
            Base::Time => "Time",
        }
    }
}

/// A dimension vector: the seven integer exponents of a dimensional formula.
///
/// `DimVec` is the value of the `DimensionVec` feature in `DimUnitKB`
/// (Table II). Two quantities are *comparable* iff their `DimVec`s are equal
/// (the dimension law).
///
/// # Examples
///
/// ```
/// use dimkb::{DimVec, Base};
///
/// let force = DimVec::from_exponents(&[(Base::Length, 1), (Base::Mass, 1), (Base::Time, -2)]);
/// assert_eq!(force.formula(), "LMT⁻²");
/// assert_eq!(force.vector_form(), "A0E0L1I0M1H0T-2D0");
///
/// let length = DimVec::base(Base::Length);
/// let surface_tension = force / length; // MT⁻², the "dyn/cm" trap of Fig. 1
/// assert_eq!(surface_tension.formula(), "MT⁻²");
/// assert!(!surface_tension.comparable(force));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DimVec {
    exps: [i8; 7],
}

impl DimVec {
    /// The dimensionless vector (all exponents zero; symbol D).
    pub const DIMENSIONLESS: DimVec = DimVec { exps: [0; 7] };

    /// Builds a vector with a single base exponent of 1.
    pub fn base(base: Base) -> Self {
        let mut v = DimVec::DIMENSIONLESS;
        v.exps[base as usize] = 1;
        v
    }

    /// Builds a vector from `(base, exponent)` pairs. Later pairs for the
    /// same base accumulate.
    pub fn from_exponents(pairs: &[(Base, i8)]) -> Self {
        let mut v = DimVec::DIMENSIONLESS;
        for &(b, e) in pairs {
            v.exps[b as usize] = v.exps[b as usize].saturating_add(e);
        }
        v
    }

    /// The exponent of `base` in this vector.
    pub fn exponent(&self, base: Base) -> i8 {
        self.exps[base as usize]
    }

    /// All seven exponents in `DimensionVec` order (A, E, L, I, M, H, T).
    pub fn exponents(&self) -> [i8; 7] {
        self.exps
    }

    /// True iff every exponent is zero.
    pub fn is_dimensionless(&self) -> bool {
        self.exps.iter().all(|&e| e == 0)
    }

    /// The dimension law: two quantities may be added, subtracted or
    /// compared iff their dimensions are identical.
    pub fn comparable(&self, other: DimVec) -> bool {
        *self == other
    }

    /// Raises the dimension to an integer power (e.g. `L.powi(3)` is volume).
    pub fn powi(&self, n: i8) -> Self {
        let mut v = *self;
        for e in &mut v.exps {
            *e = e.saturating_mul(n);
        }
        v
    }

    /// The multiplicative inverse (all exponents negated).
    pub fn recip(&self) -> Self {
        self.powi(-1)
    }

    /// The paper's canonical vector form, e.g. `A0E0L1I0M1H0T-2D0`.
    /// The trailing `D` flag is 1 for dimensionless vectors and 0 otherwise.
    pub fn vector_form(&self) -> String {
        let mut s = String::with_capacity(24);
        for b in Base::ALL {
            s.push(b.symbol());
            let e = self.exponent(b);
            s.push_str(&e.to_string());
        }
        s.push('D');
        s.push(if self.is_dimensionless() { '1' } else { '0' });
        s
    }

    /// The conventional dimensional formula, e.g. `LMT⁻²`; `D` when
    /// dimensionless. Positive exponents come first, then negatives.
    pub fn formula(&self) -> String {
        if self.is_dimensionless() {
            return "D".to_string();
        }
        let mut pos = String::new();
        let mut neg = String::new();
        for b in Base::ALL {
            let e = self.exponent(b);
            if e == 0 {
                continue;
            }
            let target = if e > 0 { &mut pos } else { &mut neg };
            target.push(b.symbol());
            if e != 1 {
                target.push_str(&superscript(e));
            }
        }
        pos + &neg
    }

    /// Parses a whitespace-separated exponent list such as `"L3 T-1"` or a
    /// canonical vector form such as `"A0E0L3I0M0H0T-1D0"`.
    pub fn parse(s: &str) -> Result<Self, DimParseError> {
        let s = s.trim();
        if s.is_empty() || s == "D" || s == "1" {
            return Ok(DimVec::DIMENSIONLESS);
        }
        let mut v = DimVec::DIMENSIONLESS;
        let mut chars = s.chars().peekable();
        let mut saw_any = false;
        while let Some(c) = chars.next() {
            if c.is_whitespace() {
                continue;
            }
            let base = match c {
                'A' => Some(Base::Amount),
                'E' => Some(Base::Current),
                'L' => Some(Base::Length),
                'I' => Some(Base::Luminous),
                'M' => Some(Base::Mass),
                'H' => Some(Base::Temperature),
                'T' => Some(Base::Time),
                'D' => None, // trailing dimensionless flag; consume its digit
                _ => return Err(DimParseError::UnknownBase(c)),
            };
            let mut num = String::new();
            if let Some(sign) = chars.next_if(|c| matches!(c, '-' | '+')) {
                num.push(sign);
            }
            while let Some(d) = chars.next_if(char::is_ascii_digit) {
                num.push(d);
            }
            let exp: i8 = if num.is_empty() {
                1
            } else {
                num.parse().map_err(|_| DimParseError::BadExponent(num.clone()))?
            };
            if let Some(b) = base {
                v.exps[b as usize] = v.exps[b as usize].saturating_add(exp);
                saw_any = true;
            }
        }
        if !saw_any && !s.contains('D') {
            return Err(DimParseError::Empty);
        }
        Ok(v)
    }
}

/// Error parsing a dimensional formula string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimParseError {
    /// A character that is not one of the seven base symbols (or D).
    UnknownBase(char),
    /// An exponent that does not fit in `i8`.
    BadExponent(String),
    /// The input contained no base symbols.
    Empty,
}

impl fmt::Display for DimParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimParseError::UnknownBase(c) => write!(f, "unknown dimension base symbol {c:?}"),
            DimParseError::BadExponent(s) => write!(f, "exponent {s:?} out of range"),
            DimParseError::Empty => write!(f, "empty dimensional formula"),
        }
    }
}

impl std::error::Error for DimParseError {}

impl FromStr for DimVec {
    type Err = DimParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DimVec::parse(s)
    }
}

impl Mul for DimVec {
    type Output = DimVec;

    fn mul(self, rhs: DimVec) -> DimVec {
        let mut v = self;
        for (e, r) in v.exps.iter_mut().zip(rhs.exps) {
            *e = e.saturating_add(r);
        }
        v
    }
}

impl Div for DimVec {
    type Output = DimVec;

    fn div(self, rhs: DimVec) -> DimVec {
        let mut v = self;
        for (e, r) in v.exps.iter_mut().zip(rhs.exps) {
            *e = e.saturating_sub(r);
        }
        v
    }
}

impl fmt::Display for DimVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.formula())
    }
}

fn superscript(e: i8) -> String {
    let digits = e.abs().to_string();
    let mut s = String::new();
    if e < 0 {
        s.push('⁻');
    }
    for d in digits.chars() {
        s.push(match d {
            '0' => '⁰',
            '1' => '¹',
            '2' => '²',
            '3' => '³',
            '4' => '⁴',
            '5' => '⁵',
            '6' => '⁶',
            '7' => '⁷',
            '8' => '⁸',
            '9' => '⁹',
            _ => unreachable!("digits of an integer"),
        });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dim(s: &str) -> DimVec {
        DimVec::parse(s).expect("valid dim")
    }

    #[test]
    fn dimensionless_roundtrip() {
        let d = DimVec::DIMENSIONLESS;
        assert!(d.is_dimensionless());
        assert_eq!(d.vector_form(), "A0E0L0I0M0H0T0D1");
        assert_eq!(d.formula(), "D");
        assert_eq!(DimVec::parse(&d.vector_form()).unwrap(), d);
    }

    #[test]
    fn force_formula_matches_paper_example() {
        // dim(poundal) = LMT⁻² (Fig. 1 of the paper)
        let force = dim("L M T-2");
        assert_eq!(force.formula(), "LMT⁻²");
        assert_eq!(force.vector_form(), "A0E0L1I0M1H0T-2D0");
    }

    #[test]
    fn surface_tension_differs_from_force() {
        // dim(dyn/cm) = MT⁻², the unit trap of Fig. 1.
        let force = dim("L M T-2");
        let tension = force / DimVec::base(Base::Length);
        assert_eq!(tension, dim("M T-2"));
        assert!(!tension.comparable(force));
    }

    #[test]
    fn mul_div_are_inverse() {
        let a = dim("L2 T-3");
        let b = dim("M H-1");
        assert_eq!(a * b / b, a);
        assert_eq!(a / a, DimVec::DIMENSIONLESS);
    }

    #[test]
    fn powi_and_recip() {
        let l = DimVec::base(Base::Length);
        assert_eq!(l.powi(3), dim("L3"));
        assert_eq!(l.powi(3).recip(), dim("L-3"));
        assert_eq!(l.powi(0), DimVec::DIMENSIONLESS);
    }

    #[test]
    fn parse_vector_form_with_negatives() {
        let v = dim("A0E0L1I0M1H0T-2D0");
        assert_eq!(v.exponent(Base::Length), 1);
        assert_eq!(v.exponent(Base::Mass), 1);
        assert_eq!(v.exponent(Base::Time), -2);
        assert_eq!(v.exponent(Base::Current), 0);
    }

    #[test]
    fn parse_implicit_exponent_one() {
        assert_eq!(dim("L"), DimVec::base(Base::Length));
        assert_eq!(dim("LT-1"), dim("L1 T-1"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(DimVec::parse("X2"), Err(DimParseError::UnknownBase('X')));
        assert!(DimVec::parse("L999").is_err());
    }

    #[test]
    fn formula_orders_positive_before_negative() {
        assert_eq!(dim("T-1 L3").formula(), "L³T⁻¹");
    }

    #[test]
    fn display_uses_formula() {
        assert_eq!(dim("M T-2").to_string(), "MT⁻²");
    }

    #[test]
    fn vector_form_roundtrips_for_all_bases() {
        for b in Base::ALL {
            let v = DimVec::base(b);
            assert_eq!(DimVec::parse(&v.vector_form()).unwrap(), v, "base {b:?}");
        }
    }

    #[test]
    fn base_metadata_is_consistent() {
        assert_eq!(Base::Mass.base_unit(), "kilogram");
        assert_eq!(Base::Mass.base_unit_symbol(), "kg");
        assert_eq!(Base::Temperature.symbol(), 'H');
        assert_eq!(Base::ALL.len(), 7);
    }
}
