//! Free-text unit search over labels, aliases, keywords and descriptions —
//! the "find me the unit for X" entry point a downstream user reaches for
//! before they know any code or symbol.

use crate::kb::DimUnitKb;
use crate::unit::UnitId;
use dim_embed::tokenize::words;

/// A scored search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// The matched unit.
    pub unit: UnitId,
    /// Relevance score (higher is better).
    pub score: f64,
}

/// Searches units by free text. Scoring blends field matches (label >
/// alias > keyword > description token) with the unit's frequency so that
/// "flow" surfaces litre-per-minute before gill-per-hour.
pub fn search(kb: &DimUnitKb, query: &str, limit: usize) -> Vec<SearchHit> {
    let terms = words(query);
    if terms.is_empty() {
        return Vec::new();
    }
    let mut hits: Vec<SearchHit> = kb
        .units()
        .iter()
        .filter_map(|u| {
            let mut score = 0.0;
            let label_words = words(&u.label_en);
            let zh_chars = words(&u.label_zh);
            for term in &terms {
                if label_words.iter().any(|w| w == term) || zh_chars.iter().any(|w| w == term) {
                    score += 3.0;
                } else if label_words.iter().any(|w| w.contains(term.as_str()))
                    && term.chars().count() >= 3
                {
                    score += 1.5;
                }
                if u.aliases.iter().any(|a| words(a).iter().any(|w| w == term)) {
                    score += 2.0;
                }
                if u.keywords.iter().any(|k| k == term) {
                    score += 1.5;
                }
                if words(&u.description).iter().any(|w| w == term) {
                    score += 0.5;
                }
                if crate::kb::normalize(&u.symbol) == *term {
                    score += 3.0;
                }
            }
            if score == 0.0 {
                return None;
            }
            // Prefer tight matches: "newton" should rank the newton above
            // the newton-metre, whose longer label matched only partially.
            let full_label = crate::kb::normalize(&u.label_en) == crate::kb::normalize(query)
                || u.label_zh == query.trim();
            if full_label {
                score += 6.0;
            }
            score /= 1.0 + 0.35 * (label_words.len().saturating_sub(1)) as f64;
            Some(SearchHit { unit: u.id, score: score * (0.5 + u.frequency) })
        })
        .collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.unit.cmp(&b.unit))
    });
    hits.truncate(limit);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_label_word_ranks_first() {
        let kb = DimUnitKb::shared();
        let hits = search(&kb, "newton", 5);
        assert!(!hits.is_empty());
        assert_eq!(kb.unit(hits[0].unit).code, "N");
    }

    #[test]
    fn keyword_search_finds_domain_units() {
        let kb = DimUnitKb::shared();
        let hits = search(&kb, "blood pressure medical", 10);
        let codes: Vec<&str> = hits.iter().map(|h| kb.unit(h.unit).code.as_str()).collect();
        assert!(codes.contains(&"MMHG"), "mmHg should surface for blood pressure: {codes:?}");
    }

    #[test]
    fn frequency_breaks_ties_toward_common_units() {
        let kb = DimUnitKb::shared();
        let hits = search(&kb, "surface tension", 10);
        assert!(!hits.is_empty());
        // N/m and dyn/cm both carry the keywords; results are ranked.
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn chinese_query_works() {
        let kb = DimUnitKb::shared();
        let hits = search(&kb, "千克", 5);
        assert!(!hits.is_empty());
        let top = kb.unit(hits[0].unit);
        assert!(top.label_zh.contains('克'), "{}", top.label_zh);
    }

    #[test]
    fn empty_and_garbage_queries() {
        let kb = DimUnitKb::shared();
        assert!(search(&kb, "", 5).is_empty());
        assert!(search(&kb, "zzqqxx", 5).is_empty());
    }
}
