//! Free-text unit search over labels, aliases, keywords and descriptions —
//! the "find me the unit for X" entry point a downstream user reaches for
//! before they know any code or symbol.
//!
//! [`search`] retrieves candidates through an inverted token→unit index
//! ([`SearchIndex`], built lazily per KB) and then scores only those
//! candidates; [`search_scan`] is the reference implementation that scores
//! every unit. Both return identical ranked hits — the index can only
//! change *which units get scored*, never a score — and an equivalence
//! test pins that.

use crate::kb::DimUnitKb;
use crate::unit::{Unit, UnitId};
use dim_embed::tokenize::words;
use std::collections::HashMap;

// Observability (no-ops unless `dim_obs::enable()` was called). The
// candidate counters quantify exactly what the inverted index buys: scored
// candidates per query vs the full-scan unit count.
static SEARCH_SPAN: dim_obs::Histogram = dim_obs::Histogram::new("kb.search");
static SEARCH_QUERIES: dim_obs::Counter = dim_obs::Counter::new("kb.search.queries");
static SEARCH_CANDIDATES: dim_obs::Counter = dim_obs::Counter::new("kb.search.candidates");
static SEARCH_HITS: dim_obs::Counter = dim_obs::Counter::new("kb.search.hits");

/// A scored search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// The matched unit.
    pub unit: UnitId,
    /// Relevance score (higher is better).
    pub score: f64,
}

/// Inverted index over every token that can contribute to a unit's search
/// score. Exact-match terms resolve through [`Self::token_units`] posting
/// lists; substring terms (≥3 chars against label words) scan the distinct
/// label-word vocabulary, which is ~an order of magnitude smaller than the
/// unit list and shrinks further after dedup.
#[derive(Debug, Clone, Default)]
pub struct SearchIndex {
    /// Exact token (label/zh/alias/keyword/description word, normalized
    /// symbol) → units containing it in a scored field.
    token_units: HashMap<String, Vec<UnitId>>,
    /// Distinct English label words → units, for substring-match terms.
    label_vocab: Vec<(String, Vec<UnitId>)>,
}

impl SearchIndex {
    /// Builds the index by tokenizing every scored field of every unit.
    pub fn build(kb: &DimUnitKb) -> SearchIndex {
        fn push(map: &mut HashMap<String, Vec<UnitId>>, tok: String, id: UnitId) {
            let entry = map.entry(tok).or_default();
            // Units are visited in id order, so a last-element check dedups.
            if entry.last() != Some(&id) {
                entry.push(id);
            }
        }
        let mut token_units: HashMap<String, Vec<UnitId>> = HashMap::new();
        let mut label_vocab: HashMap<String, Vec<UnitId>> = HashMap::new();
        for u in kb.units() {
            for w in words(&u.label_en) {
                push(&mut token_units, w.clone(), u.id);
                push(&mut label_vocab, w, u.id);
            }
            for w in words(&u.label_zh) {
                push(&mut token_units, w, u.id);
            }
            for alias in &u.aliases {
                for w in words(alias) {
                    push(&mut token_units, w, u.id);
                }
            }
            for kw in &u.keywords {
                push(&mut token_units, kw.clone(), u.id);
            }
            for w in words(&u.description) {
                push(&mut token_units, w, u.id);
            }
            push(&mut token_units, crate::kb::normalize(&u.symbol), u.id);
        }
        let mut label_vocab: Vec<(String, Vec<UnitId>)> = label_vocab.into_iter().collect();
        label_vocab.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        SearchIndex { token_units, label_vocab }
    }

    /// Every unit that could score nonzero for the query terms, in unit-id
    /// order (the same order the full scan visits).
    fn candidates(&self, terms: &[String]) -> Vec<UnitId> {
        let mut out: Vec<UnitId> = Vec::new();
        for term in terms {
            if let Some(ids) = self.token_units.get(term) {
                out.extend_from_slice(ids);
            }
            if term.chars().count() >= 3 {
                for (word, ids) in &self.label_vocab {
                    if word.contains(term.as_str()) {
                        out.extend_from_slice(ids);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Scores one unit against the query; `None` when nothing matches.
fn score_unit(u: &Unit, terms: &[String], query: &str) -> Option<f64> {
    let mut score = 0.0;
    let label_words = words(&u.label_en);
    let zh_chars = words(&u.label_zh);
    for term in terms {
        if label_words.iter().any(|w| w == term) || zh_chars.iter().any(|w| w == term) {
            score += 3.0;
        } else if label_words.iter().any(|w| w.contains(term.as_str()))
            && term.chars().count() >= 3
        {
            score += 1.5;
        }
        if u.aliases.iter().any(|a| words(a).iter().any(|w| w == term)) {
            score += 2.0;
        }
        if u.keywords.iter().any(|k| k == term) {
            score += 1.5;
        }
        if words(&u.description).iter().any(|w| w == term) {
            score += 0.5;
        }
        if crate::kb::normalize(&u.symbol) == *term {
            score += 3.0;
        }
    }
    if score == 0.0 {
        return None;
    }
    // Prefer tight matches: "newton" should rank the newton above
    // the newton-metre, whose longer label matched only partially.
    let full_label = crate::kb::normalize(&u.label_en) == crate::kb::normalize(query)
        || u.label_zh == query.trim();
    if full_label {
        score += 6.0;
    }
    score /= 1.0 + 0.35 * (label_words.len().saturating_sub(1)) as f64;
    Some(score * (0.5 + u.frequency))
}

fn rank(mut hits: Vec<SearchHit>, limit: usize) -> Vec<SearchHit> {
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.unit.cmp(&b.unit))
    });
    hits.truncate(limit);
    hits
}

/// Searches units by free text. Scoring blends field matches (label >
/// alias > keyword > description token) with the unit's frequency so that
/// "flow" surfaces litre-per-minute before gill-per-hour. Candidates come
/// from the KB's inverted [`SearchIndex`]; only they are scored.
pub fn search(kb: &DimUnitKb, query: &str, limit: usize) -> Vec<SearchHit> {
    let _span = SEARCH_SPAN.span();
    SEARCH_QUERIES.inc();
    let terms = words(query);
    if terms.is_empty() {
        return Vec::new();
    }
    let candidates = kb.search_index().candidates(&terms);
    SEARCH_CANDIDATES.add(candidates.len() as u64);
    let hits: Vec<SearchHit> = candidates
        .into_iter()
        .filter_map(|id| {
            score_unit(kb.unit(id), &terms, query).map(|score| SearchHit { unit: id, score })
        })
        .collect();
    SEARCH_HITS.add(hits.len() as u64);
    rank(hits, limit)
}

/// Reference implementation of [`search`]: scores every unit in the KB.
/// Kept for the index-equivalence test and the indexed-vs-scan benchmark.
pub fn search_scan(kb: &DimUnitKb, query: &str, limit: usize) -> Vec<SearchHit> {
    let terms = words(query);
    if terms.is_empty() {
        return Vec::new();
    }
    let hits = kb
        .units()
        .iter()
        .filter_map(|u| score_unit(u, &terms, query).map(|score| SearchHit { unit: u.id, score }))
        .collect();
    rank(hits, limit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_label_word_ranks_first() {
        let kb = DimUnitKb::shared();
        let hits = search(&kb, "newton", 5);
        assert!(!hits.is_empty());
        assert_eq!(kb.unit(hits[0].unit).code, "N");
    }

    #[test]
    fn keyword_search_finds_domain_units() {
        let kb = DimUnitKb::shared();
        let hits = search(&kb, "blood pressure medical", 10);
        let codes: Vec<&str> = hits.iter().map(|h| kb.unit(h.unit).code.as_str()).collect();
        assert!(codes.contains(&"MMHG"), "mmHg should surface for blood pressure: {codes:?}");
    }

    #[test]
    fn frequency_breaks_ties_toward_common_units() {
        let kb = DimUnitKb::shared();
        let hits = search(&kb, "surface tension", 10);
        assert!(!hits.is_empty());
        // N/m and dyn/cm both carry the keywords; results are ranked.
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn chinese_query_works() {
        let kb = DimUnitKb::shared();
        let hits = search(&kb, "千克", 5);
        assert!(!hits.is_empty());
        let top = kb.unit(hits[0].unit);
        assert!(top.label_zh.contains('克'), "{}", top.label_zh);
    }

    #[test]
    fn empty_and_garbage_queries() {
        let kb = DimUnitKb::shared();
        assert!(search(&kb, "", 5).is_empty());
        assert!(search(&kb, "zzqqxx", 5).is_empty());
    }

    #[test]
    fn indexed_search_matches_scan() {
        // The index is a candidate pre-filter, never a scorer: for a query
        // corpus covering English labels, aliases, symbols, Chinese labels,
        // keywords, substrings, multiword and junk queries, ranked output
        // must be bit-identical to the full scan.
        let kb = DimUnitKb::shared();
        let queries = [
            "newton",
            "kilometre",
            "kilometer", // alias spelling
            "km",        // symbol
            "kg",
            "千克", // Chinese label
            "千米",
            "平方米",
            "blood pressure medical", // keywords
            "surface tension",
            "metre",   // substring of kilometre, centimetre, ...
            "second",  // label + description word
            "flow",    // keyword over rate units
            "degree celsius",
            "standard atmosphere", // multiword label
            "litre per minute",    // rate unit label
            "joule",
            "毫米",
            "volt",
            "zzqqxx", // garbage: both must return nothing
            "",
        ];
        for q in queries {
            for limit in [1, 5, 50, usize::MAX] {
                let indexed = search(&kb, q, limit);
                let scanned = search_scan(&kb, q, limit);
                assert_eq!(indexed, scanned, "query {q:?} limit {limit}");
            }
        }
    }

    #[test]
    fn index_works_on_subset_kbs() {
        // Subsets build their own lazy index; equivalence must hold there
        // too (fresh OnceLock, different unit ids).
        let kb = DimUnitKb::shared();
        let sub = kb.subset(|u| !u.prefixed);
        for q in ["metre", "newton", "克", "pressure"] {
            assert_eq!(search(&sub, q, 10), search_scan(&sub, q, 10), "query {q:?}");
        }
    }
}
