//! # dimkb — the Dimensional Unit Knowledge Base (DimUnitKB)
//!
//! Rust implementation of the DimUnitKB described in *Enhancing Quantitative
//! Reasoning Skills of Large Language Models through Dimension Perception*
//! (ICDE 2024), §III-A.
//!
//! The knowledge base stores, for every unit (Table II of the paper):
//! identifier, bilingual labels, symbol, aliases, description, keywords,
//! frequency, quantity kind, dimension vector and SI conversion value. On
//! top of the stored records it maintains the *naming dictionary* used by
//! unit linking, kind and dimension indexes, a conversion engine (including
//! affine temperature scales), and a unit-expression algebra for compound
//! expressions such as `J/(kg·K)`.
//!
//! ```
//! use dimkb::DimUnitKb;
//!
//! let kb = DimUnitKb::shared();
//! let m = kb.unit_by_code("M").unwrap().id;
//! let km = kb.unit_by_code("KiloM").unwrap().id;
//! assert_eq!(kb.convert(3.0, km, m).unwrap(), 3000.0);
//! ```

#![warn(missing_docs)]

pub mod data;
pub mod degrade;
mod dim;
mod error;
pub mod expr;
pub mod freq;
pub mod intern;
mod kb;
mod kind;
pub mod prefix;
pub mod search;
pub mod snap;
pub mod spec;
pub mod stats;
mod unit;

pub use degrade::{BudgetExceeded, Degraded, ErrorBudget, QuarantineEntry, RecordError};
pub use dim::{Base, DimParseError, DimVec};
pub use error::KbError;
pub use intern::{LinkIndex, Symbol, SymbolTable};
pub use kb::{normalize, normalize_cased, normalize_cased_into, normalize_into, DimUnitKb};
pub use kind::{KindId, QuantityKind};
pub use snap::{SnapError, SnapKb, Snapshot};
pub use unit::{Conversion, Unit, UnitId};
