//! Compile-time specification records from which `DimUnitKB` is built.
//!
//! The paper sources its unit data from QUDT plus manual bilingual curation;
//! here the curated data lives as `const` tables in [`crate::data`] and is
//! expanded (SI prefixes, derived keywords, frequency scoring) by
//! [`crate::kb::DimUnitKb::standard`].

/// Specification of a quantity kind.
#[derive(Debug, Clone, Copy)]
pub struct KindSpec {
    /// CamelCase English name (`VolumeFlowRate`).
    pub name_en: &'static str,
    /// Chinese name (`体积流量`).
    pub name_zh: &'static str,
    /// Dimension formula parseable by [`crate::DimVec::parse`], e.g. `"L3 T-1"`.
    pub dim: &'static str,
    /// Narrow sub-kinds sharing this dimension (QUDT-style fine-grained
    /// kinds, e.g. `Height`/`Width`/`Radius` under `Length`): `(en, zh)`.
    pub narrow: &'static [(&'static str, &'static str)],
}

/// Builds a [`KindSpec`] with no narrow sub-kinds.
pub const fn kind(name_en: &'static str, name_zh: &'static str, dim: &'static str) -> KindSpec {
    KindSpec { name_en, name_zh, dim, narrow: &[] }
}

impl KindSpec {
    /// Attaches narrow sub-kinds.
    pub const fn narrow(mut self, narrow: &'static [(&'static str, &'static str)]) -> Self {
        self.narrow = narrow;
        self
    }
}

/// Specification of a curated unit.
#[derive(Debug, Clone, Copy)]
pub struct UnitSpec {
    /// QUDT-style code; must be unique across the whole KB.
    pub code: &'static str,
    /// English label.
    pub en: &'static str,
    /// Chinese label.
    pub zh: &'static str,
    /// Symbol.
    pub sym: &'static str,
    /// Quantity kind (must match a [`KindSpec::name_en`]).
    pub kind: &'static str,
    /// Multiplicative conversion factor to the coherent SI unit.
    pub factor: f64,
    /// Additive conversion offset (temperature scales only).
    pub offset: f64,
    /// Curated base popularity in `(0, 100]`, fed to the Eq. 1 blend.
    pub pop: f64,
    /// Alternative surface forms.
    pub aliases: &'static [&'static str],
    /// Extra keywords beyond the kind-derived defaults.
    pub kw: &'static [&'static str],
    /// Description; auto-generated from kind + factor when empty.
    pub desc: &'static str,
    /// Whether SI-prefix expansion applies.
    pub prefixable: bool,
}

/// Builds a [`UnitSpec`] with defaults (no aliases/keywords/offset, not
/// prefixable); refine with the const builder methods.
pub const fn u(
    code: &'static str,
    en: &'static str,
    zh: &'static str,
    sym: &'static str,
    kind: &'static str,
    factor: f64,
    pop: f64,
) -> UnitSpec {
    UnitSpec {
        code,
        en,
        zh,
        sym,
        kind,
        factor,
        offset: 0.0,
        pop,
        aliases: &[],
        kw: &[],
        desc: "",
        prefixable: false,
    }
}

impl UnitSpec {
    /// Sets alternative surface forms.
    pub const fn aliases(mut self, aliases: &'static [&'static str]) -> Self {
        self.aliases = aliases;
        self
    }

    /// Sets extra keywords.
    pub const fn kw(mut self, kw: &'static [&'static str]) -> Self {
        self.kw = kw;
        self
    }

    /// Sets the description.
    pub const fn desc(mut self, desc: &'static str) -> Self {
        self.desc = desc;
        self
    }

    /// Sets a conversion offset (affine units such as °C).
    pub const fn offset(mut self, offset: f64) -> Self {
        self.offset = offset;
        self
    }

    /// Marks the unit as SI-prefixable.
    pub const fn prefixable(mut self) -> Self {
        self.prefixable = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_in_const_context() {
        const METRE: UnitSpec = u("M", "metre", "米", "m", "Length", 1.0, 100.0)
            .aliases(&["meter"])
            .kw(&["distance"])
            .prefixable();
        const { assert!(METRE.prefixable) };
        assert_eq!(METRE.aliases, &["meter"]);
        assert_eq!(METRE.offset, 0.0);
    }

    #[test]
    fn kind_builder_defaults() {
        const K: KindSpec = kind("Length", "长度", "L");
        assert!(K.narrow.is_empty());
    }
}
