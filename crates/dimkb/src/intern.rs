//! Symbol interning and the per-KB link index.
//!
//! The unit-linking hot path (`dimlink`) used to flow `String` clones of
//! unit names, aliases, and mention candidates through every stage:
//! candidate generation re-allocated the whole naming dictionary per
//! linker, every lookup allocated one or two normalized key `String`s, and
//! the Levenshtein prefilter carried `(String, u64)` pairs per key. This
//! module replaces all of that with a [`Symbol`]`(u32)` interner built
//! **once per KB** (beside the inverted search index) and a [`LinkIndex`]
//! holding struct-of-arrays candidate tables:
//!
//! * [`SymbolTable`] — FNV-1a-indexed open-addressing table mapping interned
//!   strings to dense `u32` ids. Ids are **deterministic**: they are the
//!   rank of the key in sorted order, independent of insertion order, hash
//!   seeds, or thread interleavings (the table is built single-threaded
//!   behind the KB's `OnceLock`).
//! * [`LinkIndex`] — per-symbol unit lists for the case-exact and
//!   case-insensitive naming dictionaries, plus length-bucketed
//!   `(Symbol, signature)` arrays for the Levenshtein lower-bound prefilter.
//!
//! Lookups never allocate: callers pass a reusable `String` scratch buffer
//! that the normalizers write into.

use crate::kb::{normalize_cased_into, normalize_into, DimUnitKb};
use crate::unit::UnitId;

/// FNV-1a over a byte string. Used for the symbol-table index and by
/// `dimlink` for memo keys, so both sides agree on one hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// 64-bit occupancy mask over hashed char values. For two strings with
/// masks `m` and `k`, every bit set in `m & !k` marks a char value present
/// only in the mention — each such distinct value needs at least one edit,
/// so `max(popcount(m & !k), popcount(k & !m))` lower-bounds the
/// Levenshtein distance. Hash collisions merge bits and can only weaken
/// the bound, never overstate it.
pub fn char_signature(s: &str) -> u64 {
    let mut mask = 0u64;
    for c in s.chars() {
        mask |= 1u64 << (((c as u64).wrapping_mul(0x9E3779B97F4A7C15)) >> 58);
    }
    mask
}

/// An interned string id. `Symbol(i)` resolves to the `i`-th key of its
/// [`SymbolTable`] in sorted order — ids are dense, deterministic, and
/// stable for a given key set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

/// Sentinel for an empty hash slot (`u32::MAX` can never be a symbol id:
/// tables are bounded far below four billion keys).
const EMPTY: u32 = u32::MAX;

/// An immutable string interner: dense ids over a fixed key set, indexed by
/// an FNV-1a open-addressing table (linear probing, ≤ 50% load).
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    /// Sorted, deduplicated keys; `Symbol(i)` is `strings[i]`.
    strings: Vec<String>,
    /// Probe table of symbol ids (or [`EMPTY`]); power-of-two length.
    slots: Vec<u32>,
    /// `slots.len() - 1`, for masking hashes.
    mask: usize,
}

impl SymbolTable {
    /// Builds a table over the given keys. Duplicates collapse; ids are the
    /// sorted rank of each key, so any insertion order (and any thread
    /// width on the caller's side) yields the identical table.
    pub fn build<I>(keys: I) -> SymbolTable
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let mut strings: Vec<String> = keys.into_iter().map(Into::into).collect();
        strings.sort_unstable();
        strings.dedup();
        let cap = (strings.len().max(1) * 2).next_power_of_two();
        let mut table = SymbolTable { strings, slots: vec![EMPTY; cap], mask: cap - 1 };
        for i in 0..table.strings.len() {
            let mut slot = (fnv1a(table.strings[i].as_bytes()) as usize) & table.mask;
            while table.slots[slot] != EMPTY {
                slot = (slot + 1) & table.mask;
            }
            table.slots[slot] = i as u32;
        }
        table
    }

    /// Looks a key up without allocating.
    pub fn get(&self, key: &str) -> Option<Symbol> {
        let mut slot = (fnv1a(key.as_bytes()) as usize) & self.mask;
        loop {
            let id = *self.slots.get(slot)?;
            if id == EMPTY {
                return None;
            }
            if self.strings.get(id as usize).map(String::as_str) == Some(key) {
                return Some(Symbol(id));
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// The string a symbol was interned from. Panics on a foreign symbol —
    /// symbols are only produced by this table's own `get`/iteration.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when no keys are interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// All keys in symbol-id (= sorted) order.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    /// The raw probe table (slot → symbol id or `u32::MAX`), power-of-two
    /// length. Exposed for the binary snapshot, which stores it verbatim so
    /// loading skips the hash-insert pass.
    pub fn slots(&self) -> &[u32] {
        &self.slots
    }

    /// Reassembles a table from parts produced by [`SymbolTable::strings`]
    /// and [`SymbolTable::slots`] (the `dimkb::snap` load path). Returns
    /// `None` unless `slots` has power-of-two length ≥ `strings.len() * 2`
    /// and every slot is `u32::MAX` or a valid string index — corrupted
    /// snapshots must degrade to a load error, not a bad table.
    pub(crate) fn from_parts(strings: Vec<String>, slots: Vec<u32>) -> Option<SymbolTable> {
        let cap = slots.len();
        if !cap.is_power_of_two() || cap < (strings.len().max(1) * 2).next_power_of_two() {
            return None;
        }
        if slots.iter().any(|&s| s != EMPTY && s as usize >= strings.len()) {
            return None;
        }
        Some(SymbolTable { strings, slots, mask: cap - 1 })
    }
}

/// One char-length bucket of the fuzzy-match prefilter, struct-of-arrays:
/// `syms[i]` and `sigs[i]` describe the same naming-dictionary key. Keys
/// are in sorted order (ascending symbol id).
#[derive(Debug, Clone, Default)]
pub struct LenBucket {
    /// Interned keys of this char length.
    pub syms: Vec<Symbol>,
    /// [`char_signature`] of each key, parallel to `syms`.
    pub sigs: Vec<u64>,
}

/// The per-KB link index: interned naming dictionaries plus the
/// length-bucketed prefilter tables. Built once per KB behind a `OnceLock`
/// (see [`DimUnitKb::link_index`]) — linkers share it instead of
/// re-deriving per-instance candidate tables.
#[derive(Debug, Clone, Default)]
pub struct LinkIndex {
    /// Interner over case-insensitive normalized surface forms.
    norm: SymbolTable,
    /// Interner over case-exact normalized surface forms.
    cased: SymbolTable,
    /// Candidate units per `norm` symbol (same contents and order as the
    /// KB's case-insensitive naming dictionary).
    norm_units: Vec<Vec<UnitId>>,
    /// Candidate units per `cased` symbol.
    cased_units: Vec<Vec<UnitId>>,
    /// Precomputed [`DimUnitKb::lookup`] result for each `norm` key string
    /// (a normalized key can still case-exact-match the cased dictionary,
    /// and that match must win — same precedence as `lookup`).
    fuzzy_units: Vec<Vec<UnitId>>,
    /// Prefilter buckets indexed by key char length.
    buckets: Vec<LenBucket>,
}

impl LinkIndex {
    /// Builds the index from a KB's naming dictionaries.
    pub(crate) fn build(kb: &DimUnitKb) -> LinkIndex {
        let norm = SymbolTable::build(kb.naming.keys().cloned());
        let cased = SymbolTable::build(kb.naming_cased.keys().cloned());
        let norm_units: Vec<Vec<UnitId>> = norm
            .strings()
            .iter()
            .map(|k| kb.naming.get(k).cloned().unwrap_or_default())
            .collect();
        let cased_units: Vec<Vec<UnitId>> = cased
            .strings()
            .iter()
            .map(|k| kb.naming_cased.get(k).cloned().unwrap_or_default())
            .collect();
        // The fuzzy pass scores *normalized* keys but resolves candidates
        // through the same case-precedence rule as `DimUnitKb::lookup`.
        let fuzzy_units: Vec<Vec<UnitId>> = norm
            .strings()
            .iter()
            .map(|k| kb.lookup(k).to_vec())
            .collect();
        let max_len = norm.strings().iter().map(|k| k.chars().count()).max().unwrap_or(0);
        let mut buckets = vec![LenBucket::default(); max_len + 1];
        // Symbol ids ascend in sorted-key order, so each bucket comes out
        // sorted by key string — the deterministic candidate order the
        // linker's fuzzy scan relies on.
        for (i, key) in norm.strings().iter().enumerate() {
            let len = key.chars().count();
            let bucket = &mut buckets[len];
            bucket.syms.push(Symbol(i as u32));
            bucket.sigs.push(char_signature(key));
        }
        LinkIndex { norm, cased, norm_units, cased_units, fuzzy_units, buckets }
    }

    /// Naming-dictionary lookup with [`DimUnitKb::lookup`] semantics
    /// (case-exact match wins, then case-insensitive) but zero allocation:
    /// `buf` is a reusable normalization buffer.
    pub fn lookup<'a>(&'a self, surface: &str, buf: &mut String) -> &'a [UnitId] {
        if let Some(sym) = self.cased.get(normalize_cased_into(surface, buf)) {
            return &self.cased_units[sym.0 as usize];
        }
        match self.norm.get(normalize_into(surface, buf)) {
            Some(sym) => &self.norm_units[sym.0 as usize],
            None => &[],
        }
    }

    /// The candidate units a fuzzy match on `sym` (a `norm` symbol from a
    /// prefilter bucket) resolves to — precomputed `lookup` of the key.
    pub fn fuzzy_units(&self, sym: Symbol) -> &[UnitId] {
        &self.fuzzy_units[sym.0 as usize]
    }

    /// Resolves a `norm` symbol back to its key string.
    pub fn key(&self, sym: Symbol) -> &str {
        self.norm.resolve(sym)
    }

    /// The prefilter bucket for keys of exactly `char_len` chars, if any.
    pub fn bucket(&self, char_len: usize) -> Option<&LenBucket> {
        self.buckets.get(char_len).filter(|b| !b.syms.is_empty())
    }

    /// The interner over case-insensitive normalized surface forms.
    pub fn norm_table(&self) -> &SymbolTable {
        &self.norm
    }

    /// The interner over case-exact normalized surface forms.
    pub fn cased_table(&self) -> &SymbolTable {
        &self.cased
    }

    /// Candidate-unit lists per `norm` symbol, in symbol-id order.
    /// Exposed for the binary snapshot.
    pub fn norm_unit_lists(&self) -> &[Vec<UnitId>] {
        &self.norm_units
    }

    /// Candidate-unit lists per `cased` symbol, in symbol-id order.
    pub fn cased_unit_lists(&self) -> &[Vec<UnitId>] {
        &self.cased_units
    }

    /// Precomputed fuzzy-resolution lists per `norm` symbol.
    pub fn fuzzy_unit_lists(&self) -> &[Vec<UnitId>] {
        &self.fuzzy_units
    }

    /// All prefilter buckets, indexed by key char length (possibly empty).
    pub fn all_buckets(&self) -> &[LenBucket] {
        &self.buckets
    }

    /// Reassembles a link index from snapshot-decoded parts. Validates the
    /// cross-references a corrupted snapshot could break: each per-symbol
    /// table must be exactly as long as its interner, and every bucket
    /// symbol must resolve (`sigs` parallel to `syms`). Unit ids are range-
    /// checked by the caller against the decoded unit arena.
    pub(crate) fn from_parts(
        norm: SymbolTable,
        cased: SymbolTable,
        norm_units: Vec<Vec<UnitId>>,
        cased_units: Vec<Vec<UnitId>>,
        fuzzy_units: Vec<Vec<UnitId>>,
        buckets: Vec<LenBucket>,
    ) -> Option<LinkIndex> {
        if norm_units.len() != norm.len()
            || fuzzy_units.len() != norm.len()
            || cased_units.len() != cased.len()
        {
            return None;
        }
        for bucket in &buckets {
            if bucket.syms.len() != bucket.sigs.len() {
                return None;
            }
            if bucket.syms.iter().any(|s| s.0 as usize >= norm.len()) {
                return None;
            }
        }
        Some(LinkIndex { norm, cased, norm_units, cased_units, fuzzy_units, buckets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sorted_rank_and_order_independent() {
        let a = SymbolTable::build(["metre", "km", "千克", "dyn/cm"]);
        let b = SymbolTable::build(["千克", "dyn/cm", "km", "metre", "km"]);
        assert_eq!(a.strings(), b.strings());
        for key in ["metre", "km", "千克", "dyn/cm"] {
            assert_eq!(a.get(key), b.get(key));
            let sym = a.get(key).expect("interned");
            assert_eq!(a.resolve(sym), key);
        }
        assert_eq!(a.len(), 4, "duplicate collapsed");
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn empty_table_rejects_everything() {
        let t = SymbolTable::build(Vec::<String>::new());
        assert!(t.is_empty());
        assert_eq!(t.get(""), None);
        assert_eq!(t.get("x"), None);
    }

    #[test]
    fn link_index_lookup_matches_kb_lookup() {
        let kb = DimUnitKb::shared();
        let idx = kb.link_index();
        let mut buf = String::new();
        for surface in ["km", "KM", " km ", "mW", "MW", "千克", "平方厘米", "nonsense", "", "°C"] {
            assert_eq!(idx.lookup(surface, &mut buf), kb.lookup(surface), "surface = {surface:?}");
        }
        // Every dictionary key resolves identically through both paths
        // (cased precedence included: e.g. "pt" case-exact-matches a
        // narrower unit set than its case-insensitive entry).
        for (key, _) in kb.naming_dictionary() {
            assert_eq!(idx.lookup(key, &mut buf), kb.lookup(key), "key = {key:?}");
            assert_eq!(idx.fuzzy_units(idx.norm_table().get(key).expect("interned")), kb.lookup(key));
        }
    }

    #[test]
    fn buckets_cover_every_norm_key_in_sorted_order() {
        let kb = DimUnitKb::shared();
        let idx = kb.link_index();
        let mut covered = 0usize;
        for len in 0..=64 {
            let Some(bucket) = idx.bucket(len) else { continue };
            assert_eq!(bucket.syms.len(), bucket.sigs.len());
            let mut prev: Option<&str> = None;
            for (i, &sym) in bucket.syms.iter().enumerate() {
                let key = idx.key(sym);
                assert_eq!(key.chars().count(), len);
                assert_eq!(bucket.sigs[i], char_signature(key));
                if let Some(p) = prev {
                    assert!(p < key, "bucket keys must ascend: {p:?} vs {key:?}");
                }
                prev = Some(key);
            }
            covered += bucket.syms.len();
        }
        assert_eq!(covered, idx.norm_table().len());
    }
}
