//! Quantity kinds: the `QuantityKind` feature of `DimUnitKB` (Table II).
//!
//! A quantity kind (e.g. `VolumeFlowRate`, `ForcePerLength`) names *what is
//! being measured*. Every kind has a single dimension vector, but several
//! kinds may share one dimension (e.g. `Energy` and `Torque` are both
//! `L²MT⁻²`) — which is exactly why kind and dimension are separate features.

use crate::dim::DimVec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a quantity kind inside a [`crate::DimUnitKb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KindId(pub u32);

impl fmt::Display for KindId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "K{}", self.0)
    }
}

/// A quantity kind record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantityKind {
    /// Stable index within the knowledge base.
    pub id: KindId,
    /// CamelCase English name, e.g. `VolumeFlowRate`.
    pub name_en: String,
    /// Chinese name, e.g. `体积流量`.
    pub name_zh: String,
    /// The dimension every unit of this kind shares.
    pub dim: DimVec,
}

impl QuantityKind {
    /// Splits the CamelCase English name into space-separated words
    /// (`VolumeFlowRate` → `volume flow rate`), used as default keywords.
    pub fn words(&self) -> Vec<String> {
        let mut words = Vec::new();
        let mut cur = String::new();
        for c in self.name_en.chars() {
            if c.is_uppercase() && !cur.is_empty() {
                words.push(std::mem::take(&mut cur));
            }
            cur.extend(c.to_lowercase());
        }
        if !cur.is_empty() {
            words.push(cur);
        }
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::Base;

    #[test]
    fn words_splits_camel_case() {
        let k = QuantityKind {
            id: KindId(0),
            name_en: "VolumeFlowRate".into(),
            name_zh: "体积流量".into(),
            dim: DimVec::from_exponents(&[(Base::Length, 3), (Base::Time, -1)]),
        };
        assert_eq!(k.words(), vec!["volume", "flow", "rate"]);
    }

    #[test]
    fn words_handles_single_word() {
        let k = QuantityKind {
            id: KindId(1),
            name_en: "Length".into(),
            name_zh: "长度".into(),
            dim: DimVec::base(Base::Length),
        };
        assert_eq!(k.words(), vec!["length"]);
    }

    #[test]
    fn kind_id_display() {
        assert_eq!(KindId(42).to_string(), "K42");
    }
}
