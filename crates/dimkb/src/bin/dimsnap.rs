//! `dimsnap` — emit, inspect, and verify DimUnitKB binary snapshots.
//!
//! ```text
//! cargo run --release --bin dimsnap -- emit <path>
//! cargo run --release --bin dimsnap -- inspect <path> [--code CODE]
//! cargo run --release --bin dimsnap -- verify <path>
//! ```
//!
//! `emit` serializes the standard KB (deterministic: the same KB always
//! produces byte-identical output). `inspect` prints the header, META
//! counts, and section table without decoding any record — O(1) reads off
//! the buffer — plus one unit record when `--code` is given. `verify`
//! validates the buffer, fully decodes it, and differentially checks the
//! result against a freshly built standard KB; exit status 0 means the
//! snapshot is byte-fresh and behaviorally identical.

use dimkb::snap::{Section, HEADER_LEN, SECTION_ENTRY_LEN, VERSION};
use dimkb::{DimUnitKb, SnapKb, Snapshot};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: dimsnap emit <path> | inspect <path> [--code CODE] | verify <path>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("emit") => match args.get(1) {
            Some(path) => emit(Path::new(path)),
            None => usage(),
        },
        Some("inspect") => match args.get(1) {
            Some(path) => {
                let code = args
                    .iter()
                    .position(|a| a == "--code")
                    .and_then(|i| args.get(i + 1))
                    .map(String::as_str);
                inspect(Path::new(path), code)
            }
            None => usage(),
        },
        Some("verify") => match args.get(1) {
            Some(path) => verify(Path::new(path)),
            None => usage(),
        },
        _ => usage(),
    }
}

fn emit(path: &Path) -> ExitCode {
    let bytes = DimUnitKb::shared().to_snapshot();
    match std::fs::write(path, &bytes) {
        Ok(()) => {
            println!("wrote {} bytes to {}", bytes.len(), path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dimsnap: cannot write {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn inspect(path: &Path, code: Option<&str>) -> ExitCode {
    let snap = match Snapshot::load_file(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dimsnap: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let bytes = snap.bytes();
    println!("snapshot  {}", path.display());
    println!("size      {} bytes", bytes.len());
    println!("version   {VERSION}");
    println!("checksum  {:#018x}", snap.stored_checksum());
    match snap.meta() {
        Ok(meta) => {
            println!(
                "meta      {} units, {} kinds, {} dims, {} norm keys, {} cased keys, {} buckets",
                meta.units, meta.kinds, meta.dims, meta.norm_keys, meta.cased_keys, meta.buckets
            );
        }
        Err(e) => {
            eprintln!("dimsnap: META unreadable: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("sections  ({} table bytes)", Section::ALL.len() * SECTION_ENTRY_LEN + HEADER_LEN);
    for section in Section::ALL {
        let len = snap.section(section).map(<[u8]>::len).unwrap_or(0);
        let tag = section.tag();
        println!("  {}  {len:>9} bytes", String::from_utf8_lossy(&tag));
    }
    if let Some(code) = code {
        match snap.unit_by_code(code) {
            Ok(Some(view)) => {
                println!("unit      {code}");
                println!("  label_en  {}", view.label_en);
                println!("  label_zh  {}", view.label_zh);
                println!("  symbol    {}", view.symbol);
                println!("  kind      #{}", view.kind);
                println!("  dim       {:?}", view.dim);
                println!("  factor    {}", view.factor);
                println!("  offset    {}", view.offset);
                println!("  frequency {:.4}", view.frequency);
                println!("  prefixed  {}", view.prefixed);
            }
            Ok(None) => {
                eprintln!("dimsnap: no unit with code {code:?}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("dimsnap: code lookup failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn verify(path: &Path) -> ExitCode {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("dimsnap: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let snap = match SnapKb::load(bytes.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dimsnap: validation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let loaded = match snap.kb() {
        Ok(kb) => kb,
        Err(e) => {
            eprintln!("dimsnap: decode failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let built = DimUnitKb::shared();
    if loaded.units() != built.units() || loaded.kinds() != built.kinds() {
        eprintln!("dimsnap: snapshot records differ from the standard KB (stale snapshot?)");
        return ExitCode::FAILURE;
    }
    let fresh = built.to_snapshot();
    if fresh != bytes {
        eprintln!(
            "dimsnap: snapshot bytes differ from a fresh emit ({} vs {} bytes)",
            bytes.len(),
            fresh.len()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "ok: {} units, {} kinds, {} bytes, checksum {:#018x}",
        loaded.units().len(),
        loaded.kinds().len(),
        bytes.len(),
        snap.snapshot().stored_checksum()
    );
    ExitCode::SUCCESS
}
