//! `dimkb::snap` — the zero-copy binary KB snapshot.
//!
//! [`DimUnitKb::standard`] pays ~10ms of eager construction: curated-table
//! expansion, SI-prefix and rate grids, frequency scoring, naming-dictionary
//! normalization, and (lazily) the interned [`LinkIndex`]. Every serving
//! process, test binary, and corpus run repays that cost. A snapshot freezes
//! the *finished* KB — records **and** every derived index — into one
//! versioned little-endian buffer that loads with validate-and-go cost:
//! [`SnapKb::load`] checks magic/version/bounds and a 4-lane checksum in
//! microseconds, and the full KB materializes lazily on first access by
//! *decoding* the stored tables, never re-deriving them.
//!
//! # Layout (version 1)
//!
//! ```text
//! [0..8)    magic  b"DIMKSNAP"
//! [8..12)   version u32          (= 1)
//! [12..16)  section count u32
//! [16..24)  total length u64     (must equal the buffer length)
//! [24..32)  checksum u64         (over buffer[32..], see `checksum`)
//! [32..)    section table: per section, tag [u8;4] + pad u32
//!           + absolute offset u64 + length u64   (24 bytes each)
//! ...       section payloads, in table order, contiguous
//! ```
//!
//! All integers are little-endian. Strings are `u32` byte length + UTF-8
//! bytes. Section tags and per-section layouts are documented on
//! [`Section`]. The format is append-only: readers reject unknown versions
//! but tolerate unknown *sections*, so future versions can add tables
//! without breaking old emitters' tests.
//!
//! Every read path is bounds-checked (`get`-based, no indexing) and every
//! decoded cross-reference (kind ids, unit ids, symbol ids, slot tables) is
//! range-validated, so a corrupted buffer yields a typed [`SnapError`],
//! never a panic or an over-read.

use crate::dim::{Base, DimVec};
use crate::intern::{fnv1a, LenBucket, LinkIndex, SymbolTable};
use crate::kb::DimUnitKb;
use crate::kind::{KindId, QuantityKind};
use crate::unit::{Conversion, Unit, UnitId};
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;
use std::sync::OnceLock;

/// The 8-byte magic at offset 0.
pub const MAGIC: [u8; 8] = *b"DIMKSNAP";

/// The current (and only) format version.
pub const VERSION: u32 = 1;

/// Header length in bytes (magic + version + section count + total length
/// + checksum).
pub const HEADER_LEN: usize = 32;

/// Bytes per section-table entry (tag + pad + offset + length).
pub const SECTION_ENTRY_LEN: usize = 24;

/// Section tags of format version 1, with their payload layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// `META` — six `u32` counts: units, kinds, norm keys, cased keys,
    /// fuzzy-prefilter buckets, distinct dimension vectors.
    Meta,
    /// `KIND` — kind records: `name_en` str, `name_zh` str, 7×`i8` dim.
    Kinds,
    /// `UOFF` — `u32` byte offset of each unit record inside `UNIT`.
    UnitOffsets,
    /// `UNIT` — unit records: code, label_en, label_zh, symbol, description
    /// strs; alias count + strs; keyword count + strs; frequency `f64`
    /// bits; kind `u32`; 7×`i8` dim; factor and offset `f64` bits;
    /// prefixed `u8`.
    Units,
    /// `CODE` — FNV-1a open-addressing table over unit codes: cap `u32`,
    /// then cap slots of `u32` unit index (`u32::MAX` = empty).
    Codes,
    /// `NSTR` — the case-insensitive interner's keys, in symbol-id
    /// (= sorted) order.
    NormStrings,
    /// `NSLT` — the case-insensitive interner's probe table, verbatim:
    /// cap `u32` + cap slots.
    NormSlots,
    /// `NUNT` — candidate-unit list per norm symbol: count `u32` + ids.
    NormUnits,
    /// `CSTR` — the case-exact interner's keys.
    CasedStrings,
    /// `CSLT` — the case-exact interner's probe table.
    CasedSlots,
    /// `CUNT` — candidate-unit list per cased symbol.
    CasedUnits,
    /// `FUZZ` — precomputed fuzzy-resolution list per norm symbol.
    FuzzyUnits,
    /// `BKTS` — per char-length prefilter bucket: count `u32`, syms, sigs.
    Buckets,
    /// `BKND` — kind index: entry count, then kind `u32` + count + ids.
    ByKind,
    /// `BDIM` — dimension index: entry count, then 7×`i8` + count + ids.
    ByDim,
}

impl Section {
    /// The 4-byte tag of this section.
    pub fn tag(self) -> [u8; 4] {
        match self {
            Section::Meta => *b"META",
            Section::Kinds => *b"KIND",
            Section::UnitOffsets => *b"UOFF",
            Section::Units => *b"UNIT",
            Section::Codes => *b"CODE",
            Section::NormStrings => *b"NSTR",
            Section::NormSlots => *b"NSLT",
            Section::NormUnits => *b"NUNT",
            Section::CasedStrings => *b"CSTR",
            Section::CasedSlots => *b"CSLT",
            Section::CasedUnits => *b"CUNT",
            Section::FuzzyUnits => *b"FUZZ",
            Section::Buckets => *b"BKTS",
            Section::ByKind => *b"BKND",
            Section::ByDim => *b"BDIM",
        }
    }

    /// Every section of format version 1, in emission order.
    pub const ALL: [Section; 15] = [
        Section::Meta,
        Section::Kinds,
        Section::UnitOffsets,
        Section::Units,
        Section::Codes,
        Section::NormStrings,
        Section::NormSlots,
        Section::NormUnits,
        Section::CasedStrings,
        Section::CasedSlots,
        Section::CasedUnits,
        Section::FuzzyUnits,
        Section::Buckets,
        Section::ByKind,
        Section::ByDim,
    ];
}

/// A typed snapshot failure. Every loader and decoder path returns one of
/// these; none panics, whatever the input bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer is shorter than the fixed header (or the section table).
    TooShort {
        /// Bytes required for the structure being read.
        need: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The first eight bytes are not [`MAGIC`].
    BadMagic,
    /// The version field names a format this reader does not know.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The header's total-length field disagrees with the buffer length.
    LengthMismatch {
        /// Length claimed by the header.
        header: u64,
        /// Actual buffer length.
        actual: u64,
    },
    /// The stored checksum does not match the buffer contents.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the buffer.
        computed: u64,
    },
    /// A section-table entry points outside the buffer.
    SectionBounds {
        /// Tag of the offending section.
        tag: [u8; 4],
    },
    /// The same tag appears twice in the section table.
    DuplicateSection {
        /// The repeated tag.
        tag: [u8; 4],
    },
    /// A section this version requires is absent.
    MissingSection {
        /// The absent tag.
        tag: [u8; 4],
    },
    /// A section's payload failed structural validation.
    Malformed {
        /// Tag of the malformed section.
        section: [u8; 4],
        /// What was wrong, for diagnostics.
        detail: &'static str,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn tag_str(tag: &[u8; 4]) -> std::borrow::Cow<'_, str> {
            String::from_utf8_lossy(tag)
        }
        match self {
            SnapError::TooShort { need, got } => {
                write!(f, "snapshot too short: need {need} bytes, got {got}")
            }
            SnapError::BadMagic => write!(f, "not a DimKB snapshot (bad magic)"),
            SnapError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found} (reader knows {VERSION})")
            }
            SnapError::LengthMismatch { header, actual } => {
                write!(f, "length mismatch: header claims {header} bytes, buffer has {actual}")
            }
            SnapError::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}")
            }
            SnapError::SectionBounds { tag } => {
                write!(f, "section {} points outside the buffer", tag_str(tag))
            }
            SnapError::DuplicateSection { tag } => {
                write!(f, "duplicate section {}", tag_str(tag))
            }
            SnapError::MissingSection { tag } => {
                write!(f, "missing required section {}", tag_str(tag))
            }
            SnapError::Malformed { section, detail } => {
                write!(f, "malformed section {}: {detail}", tag_str(section))
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// The snapshot checksum: four independent XOR-rotate lanes over 32-byte
/// chunks, tail bytes folded into the last lane, lanes mixed with an
/// FNV-style combine. One pass, ~word speed, and sensitive to both value
/// and position of every byte.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut a = 0x9E37_79B9_7F4A_7C15u64;
    let mut b = 0xC2B2_AE3D_27D4_EB4Fu64;
    let mut c = 0x1656_67B1_9E37_79F9u64;
    let mut d = 0x27D4_EB2F_1656_67C5u64;
    let word = |s: Option<&[u8]>| -> u64 {
        match s.and_then(|s| <[u8; 8]>::try_from(s).ok()) {
            Some(w) => u64::from_le_bytes(w),
            None => 0,
        }
    };
    let mut chunks = bytes.chunks_exact(32);
    for chunk in &mut chunks {
        a = (a ^ word(chunk.get(0..8))).rotate_left(29);
        b = (b ^ word(chunk.get(8..16))).rotate_left(29);
        c = (c ^ word(chunk.get(16..24))).rotate_left(29);
        d = (d ^ word(chunk.get(24..32))).rotate_left(29);
    }
    for (i, byte) in chunks.remainder().iter().enumerate() {
        d ^= u64::from(*byte) << ((i % 8) * 8);
        d = d.rotate_left(7);
    }
    let p = 0x1000_0000_01B3u64;
    ((((a.wrapping_mul(p) ^ b).wrapping_mul(p) ^ c).wrapping_mul(p)) ^ d).wrapping_mul(p)
}

/// Counts stored in the `META` section — O(1) snapshot statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meta {
    /// Number of unit records.
    pub units: u32,
    /// Number of quantity-kind records.
    pub kinds: u32,
    /// Keys in the case-insensitive naming interner.
    pub norm_keys: u32,
    /// Keys in the case-exact naming interner.
    pub cased_keys: u32,
    /// Fuzzy-prefilter length buckets (including empty ones).
    pub buckets: u32,
    /// Distinct dimension vectors.
    pub dims: u32,
}

/// A borrowed view of one unit record, parsed straight off the buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitView<'a> {
    /// QUDT-style identifier code.
    pub code: &'a str,
    /// English label.
    pub label_en: &'a str,
    /// Chinese label.
    pub label_zh: &'a str,
    /// Symbolic expression.
    pub symbol: &'a str,
    /// Descriptive text.
    pub description: &'a str,
    /// Alternative surface forms.
    pub aliases: Vec<&'a str>,
    /// Context keywords.
    pub keywords: Vec<&'a str>,
    /// Eq. 2 frequency.
    pub frequency: f64,
    /// Kind index.
    pub kind: u32,
    /// Dimension exponents in `A E L I M H T` order.
    pub dim: [i8; 7],
    /// SI conversion factor.
    pub factor: f64,
    /// SI conversion offset.
    pub offset: f64,
    /// Whether the record came from SI-prefix expansion.
    pub prefixed: bool,
}

// ---- byte cursor -------------------------------------------------------

/// A bounds-checked little-endian reader over a byte slice. Every failure
/// is a `None`; callers map it to a [`SnapError::Malformed`] with context.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).and_then(|s| s.first().copied())
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).and_then(|s| <[u8; 4]>::try_from(s).ok()).map(u32::from_le_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).and_then(|s| <[u8; 8]>::try_from(s).ok()).map(u64::from_le_bytes)
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn str(&mut self) -> Option<&'a str> {
        let len = self.u32()? as usize;
        self.take(len).and_then(|s| std::str::from_utf8(s).ok())
    }

    fn dim(&mut self) -> Option<[i8; 7]> {
        let s = self.take(7)?;
        let mut out = [0i8; 7];
        for (o, b) in out.iter_mut().zip(s) {
            *o = *b as i8;
        }
        Some(out)
    }

    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn dim_from_exps(exps: [i8; 7]) -> DimVec {
    let pairs: Vec<(Base, i8)> = Base::ALL.iter().copied().zip(exps).collect();
    DimVec::from_exponents(&pairs)
}

// ---- emitter -----------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_dim(out: &mut Vec<u8>, dim: DimVec) {
    for e in dim.exponents() {
        out.push(e as u8);
    }
}

fn put_unit_lists(out: &mut Vec<u8>, lists: &[Vec<UnitId>]) {
    for list in lists {
        put_u32(out, list.len() as u32);
        for id in list {
            put_u32(out, id.0);
        }
    }
}

fn put_symbol_table(strings_out: &mut Vec<u8>, slots_out: &mut Vec<u8>, table: &SymbolTable) {
    for s in table.strings() {
        put_str(strings_out, s);
    }
    put_u32(slots_out, table.slots().len() as u32);
    for slot in table.slots() {
        put_u32(slots_out, *slot);
    }
}

/// Builds the `CODE` FNV slot table over unit codes (open addressing,
/// linear probing, ≤ 50% load — the same shape as [`SymbolTable`]).
fn build_code_slots(units: &[Unit]) -> Vec<u32> {
    let cap = (units.len().max(1) * 2).next_power_of_two();
    let mask = cap - 1;
    let mut slots = vec![u32::MAX; cap];
    for (i, unit) in units.iter().enumerate() {
        let mut slot = (fnv1a(unit.code.as_bytes()) as usize) & mask;
        loop {
            match slots.get_mut(slot) {
                Some(s) if *s == u32::MAX => {
                    *s = i as u32;
                    break;
                }
                Some(_) => slot = (slot + 1) & mask,
                None => break,
            }
        }
    }
    slots
}

fn encode_unit(out: &mut Vec<u8>, unit: &Unit) {
    put_str(out, &unit.code);
    put_str(out, &unit.label_en);
    put_str(out, &unit.label_zh);
    put_str(out, &unit.symbol);
    put_str(out, &unit.description);
    put_u32(out, unit.aliases.len() as u32);
    for a in &unit.aliases {
        put_str(out, a);
    }
    put_u32(out, unit.keywords.len() as u32);
    for k in &unit.keywords {
        put_str(out, k);
    }
    put_u64(out, unit.frequency.to_bits());
    put_u32(out, unit.kind.0);
    put_dim(out, unit.dim);
    put_u64(out, unit.conversion.factor.to_bits());
    put_u64(out, unit.conversion.offset.to_bits());
    out.push(u8::from(unit.prefixed));
}

/// Serializes a KB into the version-1 snapshot format. Deterministic: the
/// emitted bytes depend only on KB contents (hash maps are walked in
/// sorted order), so the same KB always produces identical output.
pub(crate) fn emit(kb: &DimUnitKb) -> Vec<u8> {
    let link = kb.link_index();
    let units = kb.units();
    let kinds = kb.kinds();

    // META.
    let mut meta = Vec::with_capacity(24);
    put_u32(&mut meta, units.len() as u32);
    put_u32(&mut meta, kinds.len() as u32);
    put_u32(&mut meta, link.norm_table().len() as u32);
    put_u32(&mut meta, link.cased_table().len() as u32);
    put_u32(&mut meta, link.all_buckets().len() as u32);
    put_u32(&mut meta, kb.by_dim_map().len() as u32);

    // KIND.
    let mut kind_bytes = Vec::new();
    for kind in kinds {
        put_str(&mut kind_bytes, &kind.name_en);
        put_str(&mut kind_bytes, &kind.name_zh);
        put_dim(&mut kind_bytes, kind.dim);
    }

    // UNIT + UOFF.
    let mut unit_bytes = Vec::new();
    let mut unit_offsets = Vec::with_capacity(units.len() * 4);
    for unit in units {
        put_u32(&mut unit_offsets, unit_bytes.len() as u32);
        encode_unit(&mut unit_bytes, unit);
    }

    // CODE.
    let mut code_bytes = Vec::new();
    let code_slots = build_code_slots(units);
    put_u32(&mut code_bytes, code_slots.len() as u32);
    for slot in &code_slots {
        put_u32(&mut code_bytes, *slot);
    }

    // Interners and their per-symbol tables.
    let (mut nstr, mut nslt) = (Vec::new(), Vec::new());
    put_symbol_table(&mut nstr, &mut nslt, link.norm_table());
    let (mut cstr, mut cslt) = (Vec::new(), Vec::new());
    put_symbol_table(&mut cstr, &mut cslt, link.cased_table());
    let mut nunt = Vec::new();
    put_unit_lists(&mut nunt, link.norm_unit_lists());
    let mut cunt = Vec::new();
    put_unit_lists(&mut cunt, link.cased_unit_lists());
    let mut fuzz = Vec::new();
    put_unit_lists(&mut fuzz, link.fuzzy_unit_lists());

    // BKTS.
    let mut bkts = Vec::new();
    for bucket in link.all_buckets() {
        put_u32(&mut bkts, bucket.syms.len() as u32);
        for sym in &bucket.syms {
            put_u32(&mut bkts, sym.0);
        }
        for sig in &bucket.sigs {
            put_u64(&mut bkts, *sig);
        }
    }

    // BKND and BDIM, walked in sorted key order for determinism.
    let mut bknd = Vec::new();
    let mut kind_entries: Vec<_> = kb.by_kind_map().iter().collect();
    kind_entries.sort_by_key(|(k, _)| k.0);
    put_u32(&mut bknd, kind_entries.len() as u32);
    for (kind, ids) in kind_entries {
        put_u32(&mut bknd, kind.0);
        put_u32(&mut bknd, ids.len() as u32);
        for id in ids {
            put_u32(&mut bknd, id.0);
        }
    }
    let mut bdim = Vec::new();
    let mut dim_entries: Vec<_> = kb.by_dim_map().iter().collect();
    dim_entries.sort_by_key(|(d, _)| d.exponents());
    put_u32(&mut bdim, dim_entries.len() as u32);
    for (dim, ids) in dim_entries {
        put_dim(&mut bdim, *dim);
        put_u32(&mut bdim, ids.len() as u32);
        for id in ids {
            put_u32(&mut bdim, id.0);
        }
    }

    // Assemble: header, section table, payloads.
    let payloads: [(&[u8], Section); 15] = [
        (&meta, Section::Meta),
        (&kind_bytes, Section::Kinds),
        (&unit_offsets, Section::UnitOffsets),
        (&unit_bytes, Section::Units),
        (&code_bytes, Section::Codes),
        (&nstr, Section::NormStrings),
        (&nslt, Section::NormSlots),
        (&nunt, Section::NormUnits),
        (&cstr, Section::CasedStrings),
        (&cslt, Section::CasedSlots),
        (&cunt, Section::CasedUnits),
        (&fuzz, Section::FuzzyUnits),
        (&bkts, Section::Buckets),
        (&bknd, Section::ByKind),
        (&bdim, Section::ByDim),
    ];
    let table_len = payloads.len() * SECTION_ENTRY_LEN;
    let total: usize = HEADER_LEN
        + table_len
        + payloads.iter().map(|(p, _)| p.len()).sum::<usize>();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, VERSION);
    put_u32(&mut out, payloads.len() as u32);
    put_u64(&mut out, total as u64);
    put_u64(&mut out, 0); // checksum, stamped below
    let mut offset = HEADER_LEN + table_len;
    for (payload, section) in &payloads {
        out.extend_from_slice(&section.tag());
        put_u32(&mut out, 0);
        put_u64(&mut out, offset as u64);
        put_u64(&mut out, payload.len() as u64);
        offset += payload.len();
    }
    for (payload, _) in &payloads {
        out.extend_from_slice(payload);
    }
    let sum = checksum(out.get(HEADER_LEN..).unwrap_or(&[]));
    if let Some(field) = out.get_mut(24..32) {
        field.copy_from_slice(&sum.to_le_bytes());
    }
    out
}

// ---- loader ------------------------------------------------------------

/// A validated snapshot buffer. Construction ([`Snapshot::load`]) verifies
/// the header, section table, and checksum; it does **not** materialize any
/// record — use [`Snapshot::decode`] (or [`SnapKb`]) for that, and the
/// `unit_*`/`meta` accessors for O(1) reads straight off the buffer.
#[derive(Debug)]
pub struct Snapshot {
    buf: Vec<u8>,
    sections: Vec<([u8; 4], Range<usize>)>,
}

impl Snapshot {
    /// Validates and adopts a snapshot buffer.
    pub fn load(buf: Vec<u8>) -> Result<Snapshot, SnapError> {
        let header = buf.get(..HEADER_LEN).ok_or(SnapError::TooShort {
            need: HEADER_LEN,
            got: buf.len(),
        })?;
        if header.get(..8) != Some(&MAGIC) {
            return Err(SnapError::BadMagic);
        }
        let mut cur = Cur::new(header);
        let _ = cur.take(8);
        let version = cur.u32().unwrap_or(0);
        if version != VERSION {
            return Err(SnapError::UnsupportedVersion { found: version });
        }
        let section_count = cur.u32().unwrap_or(0) as usize;
        let total_len = cur.u64().unwrap_or(0);
        if total_len != buf.len() as u64 {
            return Err(SnapError::LengthMismatch {
                header: total_len,
                actual: buf.len() as u64,
            });
        }
        let stored = cur.u64().unwrap_or(0);
        let computed = checksum(buf.get(HEADER_LEN..).unwrap_or(&[]));
        if stored != computed {
            return Err(SnapError::ChecksumMismatch { stored, computed });
        }
        let table_len = section_count
            .checked_mul(SECTION_ENTRY_LEN)
            .ok_or(SnapError::TooShort { need: usize::MAX, got: buf.len() })?;
        let table_end = HEADER_LEN
            .checked_add(table_len)
            .ok_or(SnapError::TooShort { need: usize::MAX, got: buf.len() })?;
        let table = buf.get(HEADER_LEN..table_end).ok_or(SnapError::TooShort {
            need: table_end,
            got: buf.len(),
        })?;
        let mut sections: Vec<([u8; 4], Range<usize>)> = Vec::with_capacity(section_count);
        let mut cur = Cur::new(table);
        // Payloads must tile [table end, buffer end] contiguously in table
        // order. Emission guarantees this; enforcing it at load makes the
        // section count and every offset/length structurally verifiable,
        // so header fields outside the checksummed region cannot be forged.
        let mut expected = table_end;
        for _ in 0..section_count {
            let tag: [u8; 4] = cur
                .take(4)
                .and_then(|s| <[u8; 4]>::try_from(s).ok())
                .unwrap_or(*b"????");
            let _pad = cur.u32();
            let offset = cur.u64().unwrap_or(u64::MAX) as usize;
            let len = cur.u64().unwrap_or(u64::MAX) as usize;
            let end = offset.checked_add(len).ok_or(SnapError::SectionBounds { tag })?;
            if offset != expected || end > buf.len() {
                return Err(SnapError::SectionBounds { tag });
            }
            expected = end;
            if sections.iter().any(|(t, _)| *t == tag) {
                return Err(SnapError::DuplicateSection { tag });
            }
            sections.push((tag, offset..end));
        }
        if expected != buf.len() {
            let tag = sections.last().map(|(t, _)| *t).unwrap_or(*b"????");
            return Err(SnapError::SectionBounds { tag });
        }
        Ok(Snapshot { buf, sections })
    }

    /// Reads a snapshot file and validates it.
    pub fn load_file(path: &std::path::Path) -> Result<Snapshot, SnapError> {
        let buf = std::fs::read(path).map_err(|_| SnapError::TooShort { need: HEADER_LEN, got: 0 })?;
        Snapshot::load(buf)
    }

    /// The checksum stored in the header (already verified against the
    /// contents by [`Snapshot::load`]).
    pub fn stored_checksum(&self) -> u64 {
        let mut cur = Cur::new(self.buf.get(24..32).unwrap_or(&[]));
        cur.u64().unwrap_or(0)
    }

    /// The raw validated buffer.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// A section's payload bytes, if the section is present.
    pub fn section(&self, section: Section) -> Option<&[u8]> {
        let tag = section.tag();
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .and_then(|(_, range)| self.buf.get(range.clone())) // lint:allow(hot_alloc, Range<usize> is two words; no heap allocation)
    }

    fn required(&self, section: Section) -> Result<&[u8], SnapError> {
        self.section(section).ok_or(SnapError::MissingSection { tag: section.tag() })
    }

    fn malformed(section: Section, detail: &'static str) -> SnapError {
        SnapError::Malformed { section: section.tag(), detail }
    }

    /// The O(1) counts from the `META` section.
    pub fn meta(&self) -> Result<Meta, SnapError> {
        let mut cur = Cur::new(self.required(Section::Meta)?);
        let err = || Snapshot::malformed(Section::Meta, "truncated counts");
        Ok(Meta {
            units: cur.u32().ok_or_else(err)?,
            kinds: cur.u32().ok_or_else(err)?,
            norm_keys: cur.u32().ok_or_else(err)?,
            cased_keys: cur.u32().ok_or_else(err)?,
            buckets: cur.u32().ok_or_else(err)?,
            dims: cur.u32().ok_or_else(err)?,
        })
    }

    /// Parses the `index`-th unit record straight off the buffer (O(1) via
    /// the `UOFF` table — no section scan, no owned allocation beyond the
    /// alias/keyword list spines).
    pub fn unit_view(&self, index: u32) -> Result<UnitView<'_>, SnapError> {
        let offsets = self.required(Section::UnitOffsets)?;
        let start = (index as usize)
            .checked_mul(4)
            .and_then(|p| offsets.get(p..p + 4))
            .and_then(|s| <[u8; 4]>::try_from(s).ok())
            .map(u32::from_le_bytes)
            .ok_or_else(|| Snapshot::malformed(Section::UnitOffsets, "unit index out of range"))?;
        let units = self.required(Section::Units)?;
        let body = units
            .get(start as usize..)
            .ok_or_else(|| Snapshot::malformed(Section::UnitOffsets, "offset past section end"))?;
        let mut cur = Cur::new(body);
        decode_unit_view(&mut cur)
            .ok_or_else(|| Snapshot::malformed(Section::Units, "truncated unit record"))
    }

    /// Looks a unit up by code via the stored FNV slot table — O(1) probes
    /// over the raw buffer, no decode.
    pub fn unit_by_code(&self, code: &str) -> Result<Option<UnitView<'_>>, SnapError> {
        let mut cur = Cur::new(self.required(Section::Codes)?);
        let cap = cur.u32().ok_or_else(|| Snapshot::malformed(Section::Codes, "missing cap"))? as usize;
        if !cap.is_power_of_two() {
            return Err(Snapshot::malformed(Section::Codes, "cap not a power of two"));
        }
        let slots = cur
            .take(cap.saturating_mul(4))
            .ok_or_else(|| Snapshot::malformed(Section::Codes, "truncated slots"))?;
        let mask = cap - 1;
        let mut slot = (fnv1a(code.as_bytes()) as usize) & mask;
        for _ in 0..cap {
            let raw = slot
                .checked_mul(4)
                .and_then(|p| slots.get(p..p + 4))
                .and_then(|s| <[u8; 4]>::try_from(s).ok())
                .map(u32::from_le_bytes)
                .ok_or_else(|| Snapshot::malformed(Section::Codes, "slot out of range"))?;
            if raw == u32::MAX {
                return Ok(None);
            }
            let view = self.unit_view(raw)?;
            if view.code == code {
                return Ok(Some(view));
            }
            slot = (slot + 1) & mask;
        }
        Ok(None)
    }

    /// Fully decodes the snapshot into a [`DimUnitKb`]: records, naming
    /// dictionaries, kind/dimension indexes, and the interned link index
    /// are all read from their stored tables — nothing is re-derived.
    pub fn decode(&self) -> Result<DimUnitKb, SnapError> {
        let meta = self.meta()?;
        let kinds = self.decode_kinds(meta)?;
        let units = self.decode_units(meta)?;
        let norm_strings = decode_strings(self.required(Section::NormStrings)?, meta.norm_keys)
            .ok_or_else(|| Snapshot::malformed(Section::NormStrings, "bad string table"))?;
        let norm_slots = decode_slots(self.required(Section::NormSlots)?)
            .ok_or_else(|| Snapshot::malformed(Section::NormSlots, "bad slot table"))?;
        let cased_strings = decode_strings(self.required(Section::CasedStrings)?, meta.cased_keys)
            .ok_or_else(|| Snapshot::malformed(Section::CasedStrings, "bad string table"))?;
        let cased_slots = decode_slots(self.required(Section::CasedSlots)?)
            .ok_or_else(|| Snapshot::malformed(Section::CasedSlots, "bad slot table"))?;
        let norm_units = decode_unit_lists(
            self.required(Section::NormUnits)?,
            meta.norm_keys,
            meta.units,
        )
        .ok_or_else(|| Snapshot::malformed(Section::NormUnits, "bad unit lists"))?;
        let cased_units = decode_unit_lists(
            self.required(Section::CasedUnits)?,
            meta.cased_keys,
            meta.units,
        )
        .ok_or_else(|| Snapshot::malformed(Section::CasedUnits, "bad unit lists"))?;
        let fuzzy_units = decode_unit_lists(
            self.required(Section::FuzzyUnits)?,
            meta.norm_keys,
            meta.units,
        )
        .ok_or_else(|| Snapshot::malformed(Section::FuzzyUnits, "bad unit lists"))?;
        let buckets = decode_buckets(self.required(Section::Buckets)?, meta.buckets)
            .ok_or_else(|| Snapshot::malformed(Section::Buckets, "bad buckets"))?;

        // The naming dictionaries re-read the string sections so the maps
        // own their keys without cloning the interner's copies.
        let naming_keys = decode_strings(self.required(Section::NormStrings)?, meta.norm_keys)
            .ok_or_else(|| Snapshot::malformed(Section::NormStrings, "bad string table"))?;
        let naming_vals = decode_unit_lists(
            self.required(Section::NormUnits)?,
            meta.norm_keys,
            meta.units,
        )
        .ok_or_else(|| Snapshot::malformed(Section::NormUnits, "bad unit lists"))?;
        let naming: HashMap<String, Vec<UnitId>> =
            naming_keys.into_iter().zip(naming_vals).collect();
        let cased_keys = decode_strings(self.required(Section::CasedStrings)?, meta.cased_keys)
            .ok_or_else(|| Snapshot::malformed(Section::CasedStrings, "bad string table"))?;
        let cased_vals = decode_unit_lists(
            self.required(Section::CasedUnits)?,
            meta.cased_keys,
            meta.units,
        )
        .ok_or_else(|| Snapshot::malformed(Section::CasedUnits, "bad unit lists"))?;
        let naming_cased: HashMap<String, Vec<UnitId>> =
            cased_keys.into_iter().zip(cased_vals).collect();

        let by_kind = self.decode_by_kind(meta)?;
        let by_dim = self.decode_by_dim(meta)?;

        let norm = SymbolTable::from_parts(norm_strings, norm_slots)
            .ok_or_else(|| Snapshot::malformed(Section::NormSlots, "inconsistent interner"))?;
        let cased = SymbolTable::from_parts(cased_strings, cased_slots)
            .ok_or_else(|| Snapshot::malformed(Section::CasedSlots, "inconsistent interner"))?;
        let link = LinkIndex::from_parts(norm, cased, norm_units, cased_units, fuzzy_units, buckets)
            .ok_or_else(|| Snapshot::malformed(Section::Buckets, "inconsistent link index"))?;
        Ok(DimUnitKb::from_parts(units, kinds, naming, naming_cased, by_kind, by_dim, link))
    }

    fn decode_kinds(&self, meta: Meta) -> Result<Vec<QuantityKind>, SnapError> {
        let mut cur = Cur::new(self.required(Section::Kinds)?);
        let err = || Snapshot::malformed(Section::Kinds, "truncated kind record");
        let mut kinds = Vec::with_capacity((meta.kinds as usize).min(1 << 16));
        for i in 0..meta.kinds {
            let name_en = cur.str().ok_or_else(err)?;
            let name_zh = cur.str().ok_or_else(err)?;
            let dim = cur.dim().ok_or_else(err)?;
            kinds.push(QuantityKind {
                id: KindId(i),
                name_en: name_en.into(),
                name_zh: name_zh.into(),
                dim: dim_from_exps(dim),
            });
        }
        if !cur.finished() {
            return Err(Snapshot::malformed(Section::Kinds, "trailing bytes"));
        }
        Ok(kinds)
    }

    fn decode_units(&self, meta: Meta) -> Result<Vec<Unit>, SnapError> {
        let mut cur = Cur::new(self.required(Section::Units)?);
        let mut units = Vec::with_capacity((meta.units as usize).min(1 << 16));
        for i in 0..meta.units {
            let view = decode_unit_view(&mut cur)
                .ok_or_else(|| Snapshot::malformed(Section::Units, "truncated unit record"))?;
            if view.kind >= meta.kinds {
                return Err(Snapshot::malformed(Section::Units, "kind id out of range"));
            }
            units.push(Unit {
                id: UnitId(i),
                code: view.code.into(),
                label_en: view.label_en.into(),
                label_zh: view.label_zh.into(),
                symbol: view.symbol.into(),
                aliases: view.aliases.iter().map(|s| (*s).into()).collect(),
                description: view.description.into(),
                keywords: view.keywords.iter().map(|s| (*s).into()).collect(),
                frequency: view.frequency,
                kind: KindId(view.kind),
                dim: dim_from_exps(view.dim),
                conversion: Conversion::affine(view.factor, view.offset),
                prefixed: view.prefixed,
            });
        }
        if !cur.finished() {
            return Err(Snapshot::malformed(Section::Units, "trailing bytes"));
        }
        Ok(units)
    }

    fn decode_by_kind(&self, meta: Meta) -> Result<HashMap<KindId, Vec<UnitId>>, SnapError> {
        let mut cur = Cur::new(self.required(Section::ByKind)?);
        let err = || Snapshot::malformed(Section::ByKind, "truncated kind index");
        let entries = cur.u32().ok_or_else(err)?;
        let mut map = HashMap::with_capacity((entries as usize).min(1 << 16));
        for _ in 0..entries {
            let kind = cur.u32().ok_or_else(err)?;
            if kind >= meta.kinds {
                return Err(Snapshot::malformed(Section::ByKind, "kind id out of range"));
            }
            let ids = decode_id_list(&mut cur, meta.units).ok_or_else(err)?;
            map.insert(KindId(kind), ids);
        }
        if !cur.finished() {
            return Err(Snapshot::malformed(Section::ByKind, "trailing bytes"));
        }
        Ok(map)
    }

    fn decode_by_dim(&self, meta: Meta) -> Result<HashMap<DimVec, Vec<UnitId>>, SnapError> {
        let mut cur = Cur::new(self.required(Section::ByDim)?);
        let err = || Snapshot::malformed(Section::ByDim, "truncated dim index");
        let entries = cur.u32().ok_or_else(err)?;
        let mut map = HashMap::with_capacity((entries as usize).min(1 << 16));
        for _ in 0..entries {
            let dim = cur.dim().ok_or_else(err)?;
            let ids = decode_id_list(&mut cur, meta.units).ok_or_else(err)?;
            map.insert(dim_from_exps(dim), ids);
        }
        if !cur.finished() {
            return Err(Snapshot::malformed(Section::ByDim, "trailing bytes"));
        }
        if map.len() != meta.dims as usize {
            return Err(Snapshot::malformed(Section::ByDim, "count disagrees with META"));
        }
        Ok(map)
    }
}

fn decode_unit_view<'a>(cur: &mut Cur<'a>) -> Option<UnitView<'a>> {
    let code = cur.str()?;
    let label_en = cur.str()?;
    let label_zh = cur.str()?;
    let symbol = cur.str()?;
    let description = cur.str()?;
    let alias_count = cur.u32()? as usize;
    let mut aliases = Vec::with_capacity(alias_count.min(64));
    for _ in 0..alias_count {
        aliases.push(cur.str()?);
    }
    let kw_count = cur.u32()? as usize;
    let mut keywords = Vec::with_capacity(kw_count.min(64));
    for _ in 0..kw_count {
        keywords.push(cur.str()?);
    }
    Some(UnitView {
        code,
        label_en,
        label_zh,
        symbol,
        description,
        aliases,
        keywords,
        frequency: cur.f64()?,
        kind: cur.u32()?,
        dim: cur.dim()?,
        factor: cur.f64()?,
        offset: cur.f64()?,
        prefixed: cur.u8()? != 0,
    })
}

fn decode_strings(section: &[u8], count: u32) -> Option<Vec<String>> {
    let mut cur = Cur::new(section);
    let mut out = Vec::with_capacity((count as usize).min(1 << 16));
    for _ in 0..count {
        out.push(cur.str()?.into());
    }
    cur.finished().then_some(out)
}

fn decode_slots(section: &[u8]) -> Option<Vec<u32>> {
    let mut cur = Cur::new(section);
    let cap = cur.u32()? as usize;
    let mut out = Vec::with_capacity(cap.min(1 << 20));
    for _ in 0..cap {
        out.push(cur.u32()?);
    }
    cur.finished().then_some(out)
}

fn decode_id_list(cur: &mut Cur<'_>, unit_count: u32) -> Option<Vec<UnitId>> {
    let count = cur.u32()? as usize;
    let mut ids = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let id = cur.u32()?;
        if id >= unit_count {
            return None;
        }
        ids.push(UnitId(id));
    }
    Some(ids)
}

fn decode_unit_lists(section: &[u8], entries: u32, unit_count: u32) -> Option<Vec<Vec<UnitId>>> {
    let mut cur = Cur::new(section);
    let mut out = Vec::with_capacity((entries as usize).min(1 << 16));
    for _ in 0..entries {
        out.push(decode_id_list(&mut cur, unit_count)?);
    }
    cur.finished().then_some(out)
}

fn decode_buckets(section: &[u8], count: u32) -> Option<Vec<LenBucket>> {
    let mut cur = Cur::new(section);
    let mut out = Vec::with_capacity(count.min(1 << 16) as usize);
    for _ in 0..count {
        let n = cur.u32()? as usize;
        let mut syms = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            syms.push(crate::intern::Symbol(cur.u32()?));
        }
        let mut sigs = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            sigs.push(cur.u64()?);
        }
        out.push(LenBucket { syms, sigs });
    }
    cur.finished().then_some(out)
}

// ---- the lazy KB handle ------------------------------------------------

/// A snapshot-backed KB handle: validation up front (microseconds), full
/// decode deferred to first use. This is what
/// [`DimUnitKb::from_snapshot`] returns.
#[derive(Debug)]
pub struct SnapKb {
    snap: Snapshot,
    kb: OnceLock<Result<DimUnitKb, SnapError>>,
}

impl SnapKb {
    /// Validates a snapshot buffer and wraps it for lazy decoding.
    pub fn load(bytes: Vec<u8>) -> Result<SnapKb, SnapError> {
        Ok(SnapKb { snap: Snapshot::load(bytes)?, kb: OnceLock::new() })
    }

    /// The validated snapshot, for O(1) buffer-level reads.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snap
    }

    /// The decoded KB, materialized on first call and cached.
    pub fn kb(&self) -> Result<&DimUnitKb, SnapError> {
        match self.kb.get_or_init(|| self.snap.decode()) {
            Ok(kb) => Ok(kb),
            Err(e) => Err(e.clone()), // lint:allow(hot_alloc, error propagation out of the cached decode result, not the load path)
        }
    }

    /// Decodes (if not already) and takes ownership of the KB.
    pub fn into_kb(self) -> Result<DimUnitKb, SnapError> {
        let _ = self.kb();
        match self.kb.into_inner() {
            Some(result) => result,
            None => self.snap.decode(),
        }
    }
}
