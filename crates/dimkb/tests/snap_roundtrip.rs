//! Differential round-trip battery for `dimkb::snap`: a KB that goes
//! built → snapshot → load must be behaviorally identical to the built
//! original — same records, same statistics tables, same search results,
//! same naming-dictionary lookups — and emission must be deterministic.

use dimkb::snap;
use dimkb::{search, stats, DimUnitKb, SnapKb};
use proptest::prelude::*;

fn roundtrip(kb: &DimUnitKb) -> DimUnitKb {
    let bytes = kb.to_snapshot();
    let snap = SnapKb::load(bytes).expect("emitted snapshot must validate");
    snap.into_kb().expect("emitted snapshot must decode")
}

/// Every behavioral probe we compare across the built and loaded KBs.
fn assert_equivalent(built: &DimUnitKb, loaded: &DimUnitKb) {
    assert_eq!(built.units(), loaded.units(), "unit records must round-trip");
    assert_eq!(built.kinds(), loaded.kinds(), "kind records must round-trip");
    assert_eq!(
        stats::statistics(built),
        stats::statistics(loaded),
        "statistics tables must round-trip"
    );
    assert_eq!(stats::top_units(built, 25), stats::top_units(loaded, 25));
    assert_eq!(stats::top_kinds(built, 25), stats::top_kinds(loaded, 25));

    // The full naming dictionary: every surface form resolves identically,
    // including cased-index precedence.
    for (surface, _) in built.naming_dictionary() {
        assert_eq!(
            built.lookup(surface),
            loaded.lookup(surface),
            "lookup({surface:?}) must round-trip"
        );
    }

    // Kind and dimension indexes.
    for kind in built.kinds() {
        assert_eq!(built.units_of_kind(kind.id), loaded.units_of_kind(kind.id));
    }
    let mut dims: Vec<_> = built.dimensions().collect();
    dims.sort_by_key(|d| d.exponents());
    let mut loaded_dims: Vec<_> = loaded.dimensions().collect();
    loaded_dims.sort_by_key(|d| d.exponents());
    assert_eq!(dims, loaded_dims, "dimension sets must round-trip");
    for dim in dims {
        assert_eq!(built.units_with_dim(dim), loaded.units_with_dim(dim));
    }
}

#[test]
fn standard_kb_roundtrips_behaviorally() {
    let built = DimUnitKb::shared();
    let loaded = roundtrip(&built);
    assert_equivalent(&built, &loaded);
}

#[test]
fn search_results_roundtrip() {
    let built = DimUnitKb::shared();
    let loaded = roundtrip(&built);
    for query in [
        "kilometre",
        "千米",
        "mW",
        "MW",
        "dyn/cm",
        "flow",
        "pressure",
        "light year",
        "degree",
        "newton metre",
    ] {
        assert_eq!(
            search::search(&built, query, 10),
            search::search(&loaded, query, 10),
            "search({query:?}) must round-trip"
        );
    }
}

#[test]
fn emission_is_deterministic() {
    let kb = DimUnitKb::shared();
    let first = kb.to_snapshot();
    let second = kb.to_snapshot();
    assert_eq!(first, second, "same KB, same bytes");
}

#[test]
fn reemission_from_loaded_kb_is_byte_identical() {
    let built = DimUnitKb::shared();
    let bytes = built.to_snapshot();
    let loaded = SnapKb::load(bytes.clone())
        .expect("validates")
        .into_kb()
        .expect("decodes");
    assert_eq!(loaded.to_snapshot(), bytes, "decode → re-emit must be the identity");
}

#[test]
fn snapshot_meta_matches_statistics() {
    let kb = DimUnitKb::shared();
    let snap = SnapKb::load(kb.to_snapshot()).expect("validates");
    let meta = snap.snapshot().meta().expect("META present");
    let s = stats::statistics(&kb);
    assert_eq!(meta.units as usize, s.units);
    assert_eq!(meta.kinds as usize, kb.kinds().len());
    assert_eq!(meta.dims as usize, s.dim_vectors);
}

#[test]
fn raw_unit_views_match_decoded_records() {
    let kb = DimUnitKb::shared();
    let snap = SnapKb::load(kb.to_snapshot()).expect("validates");
    for unit in kb.units().iter().take(64) {
        let view = snap
            .snapshot()
            .unit_by_code(&unit.code)
            .expect("CODE section valid")
            .unwrap_or_else(|| panic!("code {} must be findable", unit.code));
        assert_eq!(view.code, unit.code);
        assert_eq!(view.label_en, unit.label_en);
        assert_eq!(view.symbol, unit.symbol);
        assert_eq!(view.kind, unit.kind.0);
        assert_eq!(view.factor, unit.conversion.factor);
        assert_eq!(view.prefixed, unit.prefixed);
    }
    assert!(snap
        .snapshot()
        .unit_by_code("NO-SUCH-UNIT-CODE")
        .expect("CODE section valid")
        .is_none());
}

#[test]
fn shared_snap_matches_shared() {
    let built = DimUnitKb::shared();
    let snapped = DimUnitKb::shared_snap();
    assert_equivalent(&built, &snapped);
}

#[test]
fn checksum_is_position_sensitive() {
    assert_ne!(snap::checksum(b"ab"), snap::checksum(b"ba"));
    assert_ne!(snap::checksum(&[0u8; 64]), snap::checksum(&[0u8; 65]));
    let mut long = vec![7u8; 96];
    let base = snap::checksum(&long);
    if let Some(b) = long.get_mut(40) {
        *b ^= 0x10;
    }
    assert_ne!(base, snap::checksum(&long));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random sub-KBs (seeded code-hash subsets of the standard KB, with
    /// varying keep rates) round-trip behaviorally.
    #[test]
    fn mini_kb_roundtrips(seed in 0u64..1000, keep_mod in 2u64..7) {
        let standard = DimUnitKb::shared();
        let mini = standard.subset(|u| {
            let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
            for b in u.code.as_bytes() {
                h = (h ^ u64::from(*b)).wrapping_mul(0x0100_0000_01b3);
            }
            h % keep_mod == 0
        });
        let loaded = roundtrip(&mini);
        assert_equivalent(&mini, &loaded);
    }
}
