//! Loader-robustness battery for `dimkb::snap`: truncations, bit flips,
//! header forgery, and length-field corruption must all come back as typed
//! [`SnapError`]s — never a panic, never an over-read. Corruptions that
//! defeat the checksum (by re-stamping it) must still be caught by
//! structural validation during load or decode.

use dimkb::snap::{self, HEADER_LEN, MAGIC, SECTION_ENTRY_LEN, VERSION};
use dimkb::{DimUnitKb, SnapError, SnapKb, Snapshot};
use std::sync::OnceLock;

/// A small sub-KB snapshot, so every-byte sweeps stay fast.
fn mini_snapshot() -> &'static [u8] {
    static MINI: OnceLock<Vec<u8>> = OnceLock::new();
    MINI.get_or_init(|| {
        let kb = DimUnitKb::shared().subset(|u| u.code.len() <= 3 && !u.prefixed);
        assert!(!kb.units().is_empty(), "mini KB must not be empty");
        kb.to_snapshot()
    })
}

fn standard_snapshot() -> &'static [u8] {
    static STD: OnceLock<Vec<u8>> = OnceLock::new();
    STD.get_or_init(|| DimUnitKb::shared().to_snapshot())
}

/// Re-stamps the header checksum so a corruption survives the checksum
/// gate and must be caught by structural validation instead.
fn restamp(buf: &mut [u8]) {
    let sum = snap::checksum(buf.get(HEADER_LEN..).unwrap_or(&[]));
    if let Some(field) = buf.get_mut(24..32) {
        field.copy_from_slice(&sum.to_le_bytes());
    }
}

/// A tiny deterministic RNG (xorshift*), so the fuzz corpus is stable.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[test]
fn truncation_at_every_offset_is_a_typed_error() {
    let full = mini_snapshot();
    for len in 0..full.len() {
        let err = Snapshot::load(full[..len].to_vec())
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} bytes must fail"));
        match err {
            SnapError::TooShort { .. } | SnapError::BadMagic | SnapError::LengthMismatch { .. } => {}
            other => panic!("truncation to {len}: unexpected error {other:?}"),
        }
    }
}

#[test]
fn truncation_of_the_standard_snapshot_is_a_typed_error() {
    let full = standard_snapshot();
    for len in (0..full.len()).step_by(4096).chain([full.len() - 1]) {
        assert!(
            Snapshot::load(full[..len].to_vec()).is_err(),
            "truncation to {len} bytes must fail"
        );
    }
}

#[test]
fn every_single_bit_flip_is_rejected() {
    // Exhaustive over the mini snapshot's first 4 KiB (header + section
    // table + leading payload), then randomized over the rest.
    let full = mini_snapshot();
    let mut targets: Vec<(usize, u8)> = Vec::new();
    for pos in 0..full.len().min(4096) {
        for bit in 0..8 {
            targets.push((pos, 1u8 << bit));
        }
    }
    let mut rng = Rng(0x5eed1);
    for _ in 0..4096 {
        let pos = (rng.next() as usize) % full.len();
        let mask = 1u8 << (rng.next() % 8);
        targets.push((pos, mask));
    }
    for (pos, mask) in targets {
        let mut buf = full.to_vec();
        if let Some(b) = buf.get_mut(pos) {
            *b ^= mask;
        }
        assert!(
            Snapshot::load(buf).is_err(),
            "bit flip at byte {pos} mask {mask:#04x} must be rejected"
        );
    }
}

#[test]
fn bit_flips_in_the_standard_snapshot_are_rejected() {
    let full = standard_snapshot();
    let mut rng = Rng(0x5eed2);
    for _ in 0..128 {
        let pos = (rng.next() as usize) % full.len();
        let mask = 1u8 << (rng.next() % 8);
        let mut buf = full.to_vec();
        if let Some(b) = buf.get_mut(pos) {
            *b ^= mask;
        }
        assert!(Snapshot::load(buf).is_err(), "bit flip at byte {pos} must be rejected");
    }
}

#[test]
fn wrong_magic_and_version_are_typed_errors() {
    let mut buf = mini_snapshot().to_vec();
    if let Some(b) = buf.get_mut(0) {
        *b = b'X';
    }
    assert_eq!(Snapshot::load(buf).err(), Some(SnapError::BadMagic));

    let mut buf = mini_snapshot().to_vec();
    if let Some(field) = buf.get_mut(8..12) {
        field.copy_from_slice(&(VERSION + 1).to_le_bytes());
    }
    restamp(&mut buf);
    assert_eq!(
        Snapshot::load(buf).err(),
        Some(SnapError::UnsupportedVersion { found: VERSION + 1 })
    );

    assert_eq!(Snapshot::load(MAGIC.to_vec()).err(), Some(SnapError::TooShort { need: 32, got: 8 }));
    assert!(Snapshot::load(Vec::new()).is_err());
}

#[test]
fn corrupted_section_lengths_survive_restamping_but_not_validation() {
    let full = mini_snapshot();
    let section_count = u32::from_le_bytes([full[12], full[13], full[14], full[15]]) as usize;
    for i in 0..section_count {
        let entry = HEADER_LEN + i * SECTION_ENTRY_LEN;
        // Blow up the length field: the section now points past the buffer.
        let mut buf = full.to_vec();
        if let Some(field) = buf.get_mut(entry + 16..entry + 24) {
            field.copy_from_slice(&u64::MAX.to_le_bytes());
        }
        restamp(&mut buf);
        match Snapshot::load(buf) {
            Err(SnapError::SectionBounds { .. }) => {}
            other => panic!("oversized section {i}: expected SectionBounds, got {other:?}"),
        }
        // Point the offset into the header: overlapping the fixed layout
        // is rejected even though it is "within" the buffer.
        let mut buf = full.to_vec();
        if let Some(field) = buf.get_mut(entry + 8..entry + 16) {
            field.copy_from_slice(&4u64.to_le_bytes());
        }
        restamp(&mut buf);
        match Snapshot::load(buf) {
            Err(SnapError::SectionBounds { .. }) => {}
            other => panic!("header-overlap section {i}: expected SectionBounds, got {other:?}"),
        }
        // Shrink the length by one byte: the buffer still validates
        // structurally at load, but decode must fail, not panic.
        let mut buf = full.to_vec();
        let len_field = buf
            .get(entry + 16..entry + 24)
            .and_then(|s| <[u8; 8]>::try_from(s).ok())
            .map(u64::from_le_bytes)
            .unwrap_or(0);
        if len_field == 0 {
            continue;
        }
        if let Some(field) = buf.get_mut(entry + 16..entry + 24) {
            field.copy_from_slice(&(len_field - 1).to_le_bytes());
        }
        restamp(&mut buf);
        if let Ok(snapshot) = Snapshot::load(buf) {
            assert!(
                snapshot.decode().is_err(),
                "shrunken section {i} must fail decode with a typed error"
            );
        }
    }
}

#[test]
fn duplicate_and_missing_sections_are_typed_errors() {
    let full = mini_snapshot();
    // Copy section 1's tag over section 2's.
    let (a, b) = (HEADER_LEN, HEADER_LEN + SECTION_ENTRY_LEN);
    let mut buf = full.to_vec();
    let tag: [u8; 4] = buf
        .get(a..a + 4)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .expect("section table present");
    if let Some(field) = buf.get_mut(b..b + 4) {
        field.copy_from_slice(&tag);
    }
    restamp(&mut buf);
    assert_eq!(Snapshot::load(buf).err(), Some(SnapError::DuplicateSection { tag }));

    // Rename a required section: load succeeds (unknown tags are legal,
    // for forward compatibility) but decode reports the gap.
    let mut buf = full.to_vec();
    if let Some(field) = buf.get_mut(a..a + 4) {
        field.copy_from_slice(b"zzZZ");
    }
    restamp(&mut buf);
    let snapshot = Snapshot::load(buf).expect("unknown tags are tolerated at load");
    assert_eq!(snapshot.decode().err(), Some(SnapError::MissingSection { tag }));
}

#[test]
fn corrupted_meta_counts_fail_decode_not_panic() {
    let full = mini_snapshot();
    let _ = Snapshot::load(full.to_vec()).expect("pristine buffer validates");
    // META is emitted first, directly after the section table.
    let section_count = u32::from_le_bytes([full[12], full[13], full[14], full[15]]) as usize;
    let meta_payload = HEADER_LEN + section_count * SECTION_ENTRY_LEN;
    // Perturb each of the six counts in turn (±1 and huge).
    for field in 0..6 {
        for val in [1u32, u32::MAX, 0] {
            let off = meta_payload + field * 4;
            let mut buf = full.to_vec();
            if let Some(slice) = buf.get_mut(off..off + 4) {
                slice.copy_from_slice(&val.to_le_bytes());
            }
            restamp(&mut buf);
            if let Ok(snapshot) = Snapshot::load(buf) {
                // Must produce a typed result, never a panic; all of these
                // corruptions break some cross-check.
                assert!(
                    snapshot.decode().is_err(),
                    "META field {field} = {val} must fail decode"
                );
            }
        }
    }
}

#[test]
fn payload_bit_flips_with_restamped_checksum_never_panic() {
    let full = mini_snapshot();
    let mut rng = Rng(0x5eed3);
    for _ in 0..400 {
        let pos = HEADER_LEN + (rng.next() as usize) % (full.len() - HEADER_LEN);
        let mask = 1u8 << (rng.next() % 8);
        let mut buf = full.to_vec();
        if let Some(b) = buf.get_mut(pos) {
            *b ^= mask;
        }
        restamp(&mut buf);
        // The corruption is checksum-invisible now; load-or-decode must
        // still terminate with a typed result (Ok is legal — e.g. a flip
        // inside a label changes content, not structure).
        if let Ok(kb) = SnapKb::load(buf) {
            let _ = kb.kb();
        }
    }
}

#[test]
fn random_garbage_buffers_never_panic() {
    let mut rng = Rng(0x5eed4);
    for len in [0usize, 1, 8, 31, 32, 33, 64, 256, 4096] {
        for _ in 0..32 {
            let mut buf = vec![0u8; len];
            for b in buf.iter_mut() {
                *b = rng.next() as u8;
            }
            // Plant the magic half the time so parsing gets further.
            if rng.next().is_multiple_of(2) {
                let n = len.min(8);
                buf[..n].copy_from_slice(&MAGIC[..n]);
            }
            let _ = Snapshot::load(buf);
        }
    }
}
