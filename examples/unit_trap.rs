//! The Fig. 1 unit trap: a physics question whose units are dimensionally
//! inconsistent, which ChatGPT failed to notice. DimKS catches it by
//! comparing dimension vectors.
//!
//! ```sh
//! cargo run --example unit_trap
//! ```

use dimension_perception::core::DimKs;
use dimension_perception::kb::expr;

fn main() {
    let ks = DimKs::standard();
    let kb = ks.kb();

    // Fig. 1's question: "A wooden block experiences a surface tension of
    // 0.1 poundal per centimetre... convert to dyn/cm" — but the asker
    // wrote the force unit where a force-per-length was required.
    let question = "The surface tension of the liquid film is 0.1 poundal, \
                    expressed in dyn/cm. Is that conversion even possible?";
    println!("question: {question}\n");

    let mentions = ks.annotate(question);
    for m in &mentions {
        let unit = kb.unit(m.best_unit());
        println!(
            "found quantity: {} {} -> {} with dimension {}",
            m.value, m.unit_surface, unit.label_en, unit.dim
        );
    }

    let poundal = kb.unit_by_code("PDL").unwrap();
    let dyn_cm = kb.unit_by_code("DYN-PER-CentiM").unwrap();
    println!("\ndim(poundal) = {}  (a force: LMT⁻²)", poundal.dim);
    println!("dim(dyn/cm)  = {}  (a force per length: MT⁻²)", dyn_cm.dim);

    if !poundal.dim.comparable(dyn_cm.dim) {
        println!("\n=> UNIT TRAP DETECTED: the dimension law forbids this conversion.");
        println!("   Only quantities with identical dimensions can be compared or");
        println!("   converted; the question itself is ill-posed.");
    }

    // What the asker probably meant: poundal per centimetre.
    let intended = expr::eval(kb, "poundal / centimetre").unwrap();
    println!("\nthe intended unit was poundal/cm with dim {} — comparable with dyn/cm: {}",
        intended.dim,
        intended.dim.comparable(dyn_cm.dim));
    // And the correct conversion factor:
    let factor = intended.factor / dyn_cm.conversion.factor;
    println!("1 poundal/cm = {factor:.4} dyn/cm");
    println!("0.1 poundal/cm = {:.4} dyn/cm", 0.1 * factor);
}
