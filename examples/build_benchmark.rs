//! Builds the DimEval benchmark end-to-end (both construction algorithms)
//! and prints sample items from every task.
//!
//! ```sh
//! cargo run --example build_benchmark
//! ```

use dimension_perception::eval::{cot, DimEval, DimEvalConfig, TaskKind};
use dimension_perception::kb::DimUnitKb;

fn main() {
    let kb = DimUnitKb::shared();
    let config = DimEvalConfig { per_task: 10, extraction_items: 10, ..Default::default() };
    println!("building DimEval (Algorithm 1 for extraction, Algorithm 2 + heuristic");
    println!("rule-based generation for the choice tasks)...\n");
    let eval = DimEval::build(&kb, &config);

    for task in TaskKind::CHOICE {
        let item = &eval.choice[&task][0];
        println!("== {} [{}] ==", task.name(), task.category().name());
        println!("Q: {}", item.question);
        println!("gold: ({})", dimension_perception::eval::OPTION_LETTERS[item.answer]);
        println!("CoT target: {}\n", cot::format_target(item));
    }

    println!("== {} [Basic Perception] ==", TaskKind::QuantityExtraction.name());
    let ex = &eval.extraction[0];
    println!("text: {}", ex.text);
    for g in &ex.gold {
        println!("  gold quantity: {} {}", g.value, g.unit_surface);
    }
    println!("\ntotal items: {}", eval.len());
}
