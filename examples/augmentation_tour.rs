//! A tour of the four quantity-oriented augmentation methods (Table V of
//! the paper), applied to the paper's own dilution example.
//!
//! ```sh
//! cargo run --example augmentation_tour
//! ```

use dimension_perception::kb::DimUnitKb;
use dimension_perception::mwp::{
    generate, AugmentMethod, Augmenter, GenConfig, Source,
};

fn main() {
    let kb = DimUnitKb::shared();
    // Find a dilution-style problem (the Table V original).
    let base = generate(Source::Math23k, &GenConfig { count: 200, seed: 1 })
        .into_iter()
        .find(|p| p.text().contains("稀释"))
        .expect("dilution template exists");

    println!("original:");
    println!("  {}", base.text());
    println!("  equation: {}   answer: {} {}\n", base.equation_text(), base.answer(), base.answer_unit_surface);

    let methods = [
        (AugmentMethod::ContextFormat, "context-based format substitution"),
        (AugmentMethod::ContextDimension, "context-based dimension substitution"),
        (AugmentMethod::QuestionFormat, "question-based format substitution"),
        (AugmentMethod::QuestionDimension, "question-based dimension substitution"),
    ];
    for (method, label) in methods {
        // Try a few seeds until the method applies (some substitutions have
        // no eligible slot for a given draw).
        let mut shown = false;
        for seed in 0..50 {
            let mut aug = Augmenter::new(&kb, seed);
            if let Some(a) = aug.augment(&base, method) {
                if a.text() == base.text() {
                    continue;
                }
                println!("{label}:");
                println!("  {}", a.text());
                println!(
                    "  equation: {}   answer: {} {}",
                    a.equation_text(),
                    a.answer(),
                    a.answer_unit_surface
                );
                let invariant = (a.answer() - base.answer()).abs() < 1e-9 * base.answer();
                println!(
                    "  answer {}\n",
                    if invariant { "unchanged (context-based invariance)" } else { "rescaled (question-based)" }
                );
                shown = true;
                break;
            }
        }
        if !shown {
            println!("{label}: not applicable to this problem\n");
        }
    }
}
