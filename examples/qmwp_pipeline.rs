//! The full three-step pipeline on quantitative math word problems:
//! build DimKS → fine-tune dimension perception (DimPerc) → train
//! quantitative reasoning with quantity-oriented augmentation, then solve
//! held-out Q-MWP problems.
//!
//! ```sh
//! cargo run --release --example qmwp_pipeline
//! ```

use dimension_perception::core::pipeline::{
    run_full_pipeline, PipelineConfig,
};
use dimension_perception::kb::DimUnitKb;
use dimension_perception::mwp::{
    accuracy, generate, prediction_correct, Augmenter, GenConfig, MwpSolver, Source,
};

fn main() {
    let config = PipelineConfig {
        train_per_task: 250,
        epochs: 4,
        mwp_train: 600,
        eta: 0.5,
        ..Default::default()
    };
    println!("running the full pipeline (steps 1-3 of Fig. 2)...");
    let mut model = run_full_pipeline(&config);
    println!("trained model: {}\n", model.display_name);

    // Held-out Q-MWP evaluation.
    let kb = DimUnitKb::shared();
    let n = generate(Source::Math23k, &GenConfig { count: 150, seed: 0xFACE });
    let q = Augmenter::new(&kb, 0xFACE).to_qmwp(&n);

    println!("sample solves:");
    for p in q.iter().take(4) {
        let pred = model.solve(p);
        let ok = prediction_correct(p, &pred);
        println!("  problem: {}", p.text());
        println!("  gold:    {} (answer {})", p.equation_text(), p.answer());
        println!("  model:   {pred:?}  [{}]\n", if ok { "correct" } else { "wrong" });
    }

    let acc_n = accuracy(&mut model, &n);
    let acc_q = accuracy(&mut model, &q);
    println!("N-MWP accuracy: {:.1}%", acc_n * 100.0);
    println!("Q-MWP accuracy: {:.1}%", acc_q * 100.0);
}
