//! Quickstart: the dimensional knowledge system in five minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dimension_perception::core::DimKs;
use dimension_perception::kb::{expr, DimUnitKb, DimVec};

fn main() {
    // 1. The knowledge base: ~1000 units with full Table II schema.
    let kb = DimUnitKb::shared();
    let stats = dimension_perception::kb::stats::statistics(&kb);
    println!("DimUnitKB: {} units, {} quantity kinds, {} dimension vectors\n",
        stats.units, stats.quantity_kinds, stats.dim_vectors);

    // 2. Dimensions obey the dimension laws.
    let force = DimVec::parse("L M T-2").unwrap();
    let length = DimVec::parse("L").unwrap();
    let surface_tension = force / length;
    println!("dim(force)           = {force}");
    println!("dim(surface tension) = {surface_tension}");
    println!("comparable? {}\n", force.comparable(surface_tension));

    // 3. Conversions, including affine temperature scales.
    let km = kb.unit_by_code("KiloM").unwrap().id;
    let mi = kb.unit_by_code("MI").unwrap().id;
    println!("42.195 km = {:.3} miles", kb.convert(42.195, km, mi).unwrap());
    let c = kb.unit_by_code("DEG-C").unwrap().id;
    let f = kb.unit_by_code("DEG-F").unwrap().id;
    println!("37 °C = {:.1} °F", kb.convert(37.0, c, f).unwrap());

    // 4. Compound unit expressions.
    let v = expr::eval(&kb, "J / (kg * K)").unwrap();
    println!("dim(J/(kg·K)) = {} — specific heat capacity\n", v.dim);

    // 5. The knowledge system: link unit mentions in context, annotate text.
    let ks = DimKs::standard();
    let text = "LeBron James's height is 2.06 meters and Stephen Curry's height is 188 cm.";
    println!("annotating: {text}");
    for m in ks.annotate(text) {
        let unit = ks.kb().unit(m.best_unit());
        println!(
            "  {} {} -> {} [{}], dim {}",
            m.value, m.unit_surface, unit.label_en, unit.code, unit.dim
        );
    }
    // Unit conversion settles the comparison.
    let m_unit = ks.kb().unit_by_code("M").unwrap().id;
    let cm = ks.kb().unit_by_code("CentiM").unwrap().id;
    let curry_m = ks.kb().convert(188.0, cm, m_unit).unwrap();
    println!("\n188 cm = {curry_m} m, so LeBron (2.06 m) is taller: {}", 2.06 > curry_m);
}
