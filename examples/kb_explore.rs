//! Explores DimUnitKB: schema, frequency feature, naming dictionary,
//! ambiguity, serialization round-trip.
//!
//! ```sh
//! cargo run --example kb_explore
//! ```

use dimension_perception::kb::{stats, DimUnitKb};

fn main() {
    let kb = DimUnitKb::shared();

    // Full Table II schema of one record.
    let u = kb.unit_by_code("DYN-PER-CentiM").unwrap();
    println!("UnitID        {}", u.id);
    println!("Code          {}", u.code);
    println!("Label_en      {}", u.label_en);
    println!("Label_zh      {}", u.label_zh);
    println!("Symbol        {}", u.symbol);
    println!("Alias         {:?}", u.aliases);
    println!("Description   {}", u.description);
    println!("Keywords      {:?}", u.keywords);
    println!("Frequency     {:.3}", u.frequency);
    println!("QuantityKind  {}", kb.kind(u.kind).name_en);
    println!("DimensionVec  {}  ({})", u.dim.vector_form(), u.dim);
    println!("ConversionVal {}\n", u.conversion.factor);

    // Ambiguity in the naming dictionary (the 'degree' problem of §III-B).
    for mention in ["degree", "m", "度"] {
        let ids = kb.lookup(mention);
        let names: Vec<&str> = ids.iter().map(|&id| kb.unit(id).label_en.as_str()).collect();
        println!("mention {mention:?} may refer to: {names:?}");
    }

    // The frequency feature orders units by commonness.
    println!("\ntop 10 units by frequency:");
    for (id, f) in stats::top_units(&kb, 10) {
        println!("  {:<20} {:.3}", kb.unit(id).label_en, f);
    }

    // Serialization round-trip.
    let json = kb.to_json();
    let restored = DimUnitKb::from_json(&json).unwrap();
    println!("\nserialized {} bytes of JSON; restored {} units — round-trip ok",
        json.len(), restored.units().len());
}
