//! Chaos harness: deterministic fault injection over the degraded-mode
//! (`try_*`) batch entry points and the full pipeline.
//!
//! The contract under test, per ISSUE/DESIGN §9:
//!
//! - with no plan installed (or rate 0) every `try_*` path produces output
//!   identical to its classic counterpart, at every thread width;
//! - with a fixed `FaultPlan` and rate > 0 the run completes panic-free,
//!   un-faulted slots match the clean run byte-for-byte, and the
//!   quarantine manifest is identical across repeated runs and widths;
//! - a blown error budget is a typed [`BudgetExceeded`] abort, never a
//!   panic.
//!
//! The fault plan is process-global, so every test here serializes on one
//! mutex and clears the plan before and after its chaos window.

use dim_chaos::FaultPlan;
use dimension_perception::core::pipeline::{try_run_full_pipeline, PipelineConfig};
use dimension_perception::eval::{DimEval, DimEvalConfig};
use dimension_perception::kb::degrade::{ErrorBudget, QuarantineEntry};
use dimension_perception::kb::DimUnitKb;
use dimension_perception::link::{Annotator, LinkerConfig, UnitLinker};
use dimension_perception::mwp::{self, Augmenter, GenConfig, Source};
use std::sync::Mutex;

/// Serializes every test in this binary: the chaos plan is process-global
/// and libtest runs tests concurrently.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    dim_chaos::silence_injected_panic_reports();
    dim_chaos::clear();
    match CHAOS_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn annotator() -> Annotator {
    Annotator::new(UnitLinker::new(DimUnitKb::shared(), None, LinkerConfig::default()))
}

fn widths() -> [dim_par::Parallelism; 2] {
    [dim_par::Parallelism::new(1), dim_par::Parallelism::new(4)]
}

/// Clean texts (no decoys): the try path must match classic `annotate`.
fn clean_texts() -> Vec<String> {
    (0..16)
        .map(|i| match i % 3 {
            0 => format!("这条路全长{}千米。", i + 1),
            1 => format!("箱子重{} kg。", i * 2 + 3),
            _ => format!("水温是{}°C。", i + 15),
        })
        .collect()
}

#[test]
fn rate_zero_try_paths_match_classic_at_both_widths() {
    let _guard = lock();
    let budget = ErrorBudget::strict();
    let kb = DimUnitKb::shared();
    let texts = clean_texts();
    let ann = annotator();
    let classic_mentions: Vec<_> = texts.iter().map(|t| ann.annotate(t)).collect();
    let gen_cfg = GenConfig { count: 150, seed: 51 };
    let classic_gen = mwp::generate_with(Source::Math23k, &gen_cfg, dim_par::Parallelism::new(1));
    let classic_qmwp = Augmenter::new(&kb, 99).to_qmwp(&classic_gen);
    let classic_aug = Augmenter::new(&kb, 7)
        .augment_dataset_with(&classic_gen, 0.5, dim_par::Parallelism::new(1));
    let eval_cfg = DimEvalConfig {
        per_task: 24,
        extraction_items: 30,
        seed: 4242,
        ..Default::default()
    };
    let classic_eval = DimEval::build(&kb, &eval_cfg);

    // Install a plan with rate 0: `is_active()` is false, so this must be
    // indistinguishable from no plan at all.
    dim_chaos::install(FaultPlan::new(123, 0.0));
    for par in widths() {
        let d = ann.try_annotate_batch(&texts, par, budget).unwrap();
        assert!(d.quarantine.is_empty());
        let got: Vec<_> = d.items.into_iter().map(Option::unwrap).collect();
        assert_eq!(got, classic_mentions);

        let d = mwp::try_generate_with(Source::Math23k, &gen_cfg, par, budget).unwrap();
        assert!(d.quarantine.is_empty());
        assert_eq!(d.ok_items(), classic_gen);

        let d = Augmenter::new(&kb, 99).try_to_qmwp_with(&classic_gen, par, budget).unwrap();
        assert!(d.quarantine.is_empty());
        assert_eq!(d.ok_items(), classic_qmwp);

        let (aug, quarantine) = Augmenter::new(&kb, 7)
            .try_augment_dataset_with(&classic_gen, 0.5, par, budget)
            .unwrap();
        assert!(quarantine.is_empty());
        assert_eq!(aug, classic_aug);

        let cfg = DimEvalConfig { parallelism: par, ..eval_cfg };
        let (eval, quarantine) = DimEval::try_build(&kb, &cfg, budget).unwrap();
        assert!(quarantine.is_empty());
        assert_eq!(
            serde_json::to_string(&eval).unwrap(),
            serde_json::to_string(&classic_eval).unwrap()
        );
    }
    dim_chaos::clear();
}

#[test]
fn fixed_plan_quarantine_is_deterministic_and_spares_clean_slots() {
    let _guard = lock();
    let budget = ErrorBudget::new(0.5);
    let gen_cfg = GenConfig { count: 400, seed: 314 };
    let clean = mwp::generate_with(Source::Ape210k, &gen_cfg, dim_par::Parallelism::new(1));

    dim_chaos::install(FaultPlan::new(0xC4A05, 0.05));
    let mut manifests: Vec<String> = Vec::new();
    for par in [widths()[0], widths()[1], widths()[0]] {
        let d = mwp::try_generate_with(Source::Ape210k, &gen_cfg, par, budget).unwrap();
        assert!(!d.quarantine.is_empty(), "rate 0.05 over 400 items should fault some");
        assert!(d.failed_count() < clean.len() / 4, "faults should stay near the rate");
        // Un-faulted slots are byte-identical to the clean run, positionally.
        for (i, slot) in d.items.iter().enumerate() {
            if let Some(p) = slot {
                assert_eq!(p, &clean[i], "clean slot {i} must match the fault-free run");
            }
        }
        // Quarantined slots are exactly the manifest's indices.
        let faulted: Vec<usize> = d
            .items
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect();
        let listed: Vec<usize> = d.quarantine.iter().map(|q| q.index).collect();
        assert_eq!(faulted, listed);
        manifests.push(dimension_perception::kb::degrade::manifest(&d.quarantine));
    }
    assert_eq!(manifests[0], manifests[1], "manifest must not depend on thread width");
    assert_eq!(manifests[0], manifests[2], "manifest must not depend on the run");
    dim_chaos::clear();
}

#[test]
fn blown_budget_is_a_typed_abort() {
    let _guard = lock();
    dim_chaos::install(FaultPlan::new(9, 0.9));
    let gen_cfg = GenConfig { count: 200, seed: 77 };
    let err = mwp::try_generate_with(
        Source::Math23k,
        &gen_cfg,
        dim_par::Parallelism::new(4),
        ErrorBudget::new(0.1),
    )
    .unwrap_err();
    assert_eq!(err.site, "mwp.gen.math23k");
    assert_eq!(err.total, 200);
    assert!(err.failed as f64 > 0.1 * err.total as f64);
    assert!(err.to_string().contains("error budget exceeded at mwp.gen.math23k"));
    dim_chaos::clear();
}

#[test]
fn degraded_quick_pipeline_completes_panic_free() {
    let _guard = lock();
    dim_obs::enable();
    let config = PipelineConfig {
        train_per_task: 120,
        epochs: 2,
        mwp_train: 300,
        ..Default::default()
    };
    let counter = |name: &str| {
        dim_obs::snapshot()
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let quarantined_before = counter("pipeline.records_quarantined");
    let degraded_before = counter("pipeline.degraded_runs");

    dim_chaos::install(FaultPlan::new(7, 0.05));
    let mut manifests: Vec<String> = Vec::new();
    for par in widths() {
        let cfg = PipelineConfig { parallelism: par, ..config };
        let (model, report) =
            try_run_full_pipeline(&cfg, ErrorBudget::new(0.5)).expect("budget holds at 5%");
        assert_eq!(model.display_name, "DimPerc");
        assert!(report.is_degraded(), "rate 0.05 must quarantine something");
        manifests.push(report.manifest());
    }
    assert_eq!(manifests[0], manifests[1], "pipeline manifest must not depend on width");
    assert!(counter("pipeline.records_quarantined") > quarantined_before);
    assert!(counter("pipeline.degraded_runs") >= degraded_before + 2);
    dim_chaos::clear();
}

#[test]
fn corpus_decoy_tokens_are_quarantined_not_unwrapped() {
    let _guard = lock();
    // No fault plan: the decoy guard is plan-independent robustness.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(20_24);
    let ann = annotator();
    let budget = ErrorBudget::new(1.0);
    let mut decoys_seen = 0usize;
    for _ in 0..24 {
        let token = dimension_perception::corpus::noise::decoy_token(&mut rng);
        let text = format!("新设备{token}已经部署,线路全长3千米。");
        // Only tokens the annotator actually mis-links as quantities are
        // interesting here; for those, the try path must skip-and-record
        // with a `decoy` error instead of reaching a conversion unwrap.
        if ann.annotate(&text).is_empty() {
            continue;
        }
        let d = ann
            .try_annotate_batch(std::slice::from_ref(&text), dim_par::Parallelism::new(1), budget)
            .unwrap();
        if let Some(q) = d.quarantine.first() {
            assert!(q.error.starts_with("decoy:"), "decoy text {text:?} got {q}");
            decoys_seen += 1;
        }
    }
    assert!(decoys_seen > 0, "corpus decoy tokens never triggered the guard");
}

#[test]
fn quarantine_entries_order_and_render_stably() {
    let _guard = lock();
    dim_chaos::install(FaultPlan::new(0xBEEF, 0.2));
    let d = mwp::try_generate_with(
        Source::Math23k,
        &GenConfig { count: 64, seed: 1 },
        dim_par::Parallelism::new(4),
        ErrorBudget::new(0.8),
    )
    .unwrap();
    let mut shuffled: Vec<QuarantineEntry> = d.quarantine.clone();
    shuffled.reverse();
    assert_eq!(
        dimension_perception::kb::degrade::manifest(&shuffled),
        dimension_perception::kb::degrade::manifest(&d.quarantine),
        "manifest must sort entries, not trust arrival order"
    );
    dim_chaos::clear();
}
