//! End-to-end determinism contract of the `dim-par` fan-out: every
//! parallelized pipeline stage must produce byte-identical output at
//! `threads = 1` and `threads = 4`. Serialized JSON is compared where a
//! serializer exists (the workspace serde writes map keys in sorted order,
//! so equal values mean equal bytes); `PartialEq` otherwise.

use dim_core::pipeline::{self, PipelineConfig};
use dim_mwp::{Augmenter, GenConfig, Source};
use dim_par::Parallelism;
use dimeval::{DimEval, DimEvalConfig};
use dimkb::DimUnitKb;
use dimlink::{Annotator, LinkerConfig, UnitLinker};

const THREADS: usize = 4;

#[test]
fn dimeval_build_is_byte_identical_across_thread_counts() {
    let kb = DimUnitKb::shared();
    let base = DimEvalConfig { per_task: 8, extraction_items: 8, ..Default::default() };
    let seq = DimEval::build(&kb, &base).to_json();
    let par = DimEval::build(
        &kb,
        &DimEvalConfig { parallelism: Parallelism::new(THREADS), ..base },
    )
    .to_json();
    assert_eq!(seq, par);
}

#[test]
fn mwp_generation_and_augmentation_are_byte_identical() {
    let kb = DimUnitKb::shared();
    let cfg = GenConfig { count: 200, seed: 4242 };
    let seq_gen = dim_mwp::generate(Source::Ape210k, &cfg);
    let par_gen = dim_mwp::generate_with(Source::Ape210k, &cfg, Parallelism::new(THREADS));
    assert_eq!(
        serde_json::to_string(&seq_gen).unwrap(),
        serde_json::to_string(&par_gen).unwrap()
    );

    let seq_aug = Augmenter::new(&kb, 7).augment_dataset(&seq_gen, 0.5);
    let par_aug =
        Augmenter::new(&kb, 7).augment_dataset_with(&seq_gen, 0.5, Parallelism::new(THREADS));
    assert_eq!(
        serde_json::to_string(&seq_aug).unwrap(),
        serde_json::to_string(&par_aug).unwrap()
    );
}

#[test]
fn batch_linking_matches_sequential() {
    let kb = DimUnitKb::shared();
    let annotator = Annotator::new(UnitLinker::new(kb, None, LinkerConfig::default()));
    let texts: Vec<String> = (0..60)
        .map(|i| format!("第{i}项记录：距离{}千米，用时{}小时，油耗{} L。", i + 5, i + 1, i % 9 + 3))
        .collect();
    let seq: Vec<_> = texts.iter().map(|t| annotator.annotate(t)).collect();
    let par = annotator.annotate_batch(&texts, Parallelism::new(THREADS));
    assert_eq!(seq, par);
}

#[test]
fn mwp_training_mixture_is_byte_identical() {
    let kb = DimUnitKb::shared();
    let base = PipelineConfig { mwp_train: 150, ..Default::default() };
    let seq = pipeline::build_mwp_training(&kb, &base);
    let par = pipeline::build_mwp_training(
        &kb,
        &PipelineConfig { parallelism: Parallelism::new(THREADS), ..base },
    );
    assert_eq!(serde_json::to_string(&seq).unwrap(), serde_json::to_string(&par).unwrap());
}

#[test]
fn training_mixture_interleaves_augmented_variants() {
    // The reorder must actually mix: with η = 0.5 the last third of the
    // pre-shuffle vector is augmented variants, so after interleaving they
    // must not sit in one contiguous block.
    let kb = DimUnitKb::shared();
    let cfg = PipelineConfig { mwp_train: 150, ..Default::default() };
    let mixed = pipeline::build_mwp_training(&kb, &cfg);
    let n_originals = 2 * cfg.mwp_train;
    assert!(mixed.len() > n_originals);
    // Originals carry ids 0..mwp_train per source; augmented copies keep
    // their source problem's id. Count augmented-vs-original transitions by
    // comparing against a conversion-free regeneration: instead, use the
    // conversions field — augmented problems carry conversion records or
    // differ from any original. Cheap proxy: the first quarter of the mixed
    // vector should already contain some problem with conversions.
    let quarter = mixed.len() / 4;
    assert!(
        mixed[..quarter].iter().any(|p| !p.conversions.is_empty() || p.answer_conversion != 1.0),
        "augmented variants should appear early after interleaving"
    );
}
