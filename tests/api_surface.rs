//! Integration tests for the higher-level public APIs: the unit-trap
//! detector, mention conversion, and benchmark serialization.

use dimension_perception::core::DimKs;
use dimension_perception::eval::{DimEval, DimEvalConfig, TaskKind};
use dimension_perception::kb::DimUnitKb;

#[test]
fn comparability_flags_the_fig1_trap() {
    let ks = DimKs::standard();
    let (mentions, pairs) =
        ks.comparability("The tension is 0.1 poundal, or equivalently 30 dyn/cm.");
    assert_eq!(mentions.len(), 2);
    assert_eq!(pairs.len(), 1);
    assert!(!pairs[0].2, "poundal vs dyn/cm must be flagged incomparable");
}

#[test]
fn comparability_accepts_consistent_text() {
    let ks = DimKs::standard();
    let (mentions, pairs) =
        ks.comparability("LeBron is 2.06 meters tall while Curry is 188 cm tall.");
    assert_eq!(mentions.len(), 2);
    assert!(pairs[0].2, "metres and centimetres are comparable");
}

#[test]
fn convert_mention_applies_the_dimension_law() {
    let ks = DimKs::standard();
    let v = ks.convert_mention("重量是150千克", "斤").expect("converts");
    assert!((v - 300.0).abs() < 1e-9, "150 kg = 300 jin, got {v}");
    // Cross-dimension conversion is refused.
    assert!(ks.convert_mention("重量是150千克", "米").is_none());
}

#[test]
fn benchmark_json_roundtrip() {
    let kb = DimUnitKb::shared();
    let eval = DimEval::build(
        &kb,
        &DimEvalConfig { per_task: 5, extraction_items: 5, ..Default::default() },
    );
    let json = eval.to_json();
    let restored = DimEval::from_json(&json).expect("roundtrip");
    assert_eq!(restored.len(), eval.len());
    assert_eq!(
        restored.choice[&TaskKind::UnitConversion],
        eval.choice[&TaskKind::UnitConversion]
    );
    assert_eq!(restored.extraction, eval.extraction);
}

#[test]
fn kb_statistics_meet_design_floor() {
    // DESIGN.md promises a QUDT-comparable KB; hold the floor in CI.
    let kb = DimUnitKb::shared();
    let stats = dimension_perception::kb::stats::statistics(&kb);
    assert!(stats.units >= 1200, "units {}", stats.units);
    assert!(stats.quantity_kinds >= 100, "kinds {}", stats.quantity_kinds);
    assert!(stats.dim_vectors >= 80, "dim vectors {}", stats.dim_vectors);
}
