//! Robustness property tests: the text-facing components must never panic
//! on arbitrary input, and parsers must fail cleanly rather than crash.

use dimension_perception::core::DimKs;
use dimension_perception::kb::{expr, DimUnitKb};
use dimension_perception::link::{parse_chinese_numeral, scan_numbers};
use dimension_perception::mwp::calculate;
use proptest::prelude::*;
use std::sync::OnceLock;

fn ks() -> &'static DimKs {
    static KS: OnceLock<DimKs> = OnceLock::new();
    KS.get_or_init(DimKs::standard)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn annotator_never_panics(text in "\\PC{0,80}") {
        // Arbitrary printable unicode, including CJK, emoji, digits.
        let _ = ks().annotate(&text);
    }

    #[test]
    fn annotator_handles_numeric_soup(text in "[0-9.千万亿 kmgs%/]{0,40}") {
        let mentions = ks().annotate(&text);
        for m in mentions {
            prop_assert!(m.value.is_finite());
            prop_assert!(m.start <= m.end && m.end <= text.len());
            prop_assert!(text.is_char_boundary(m.start) && text.is_char_boundary(m.end));
        }
    }

    #[test]
    fn number_scanner_spans_are_valid(text in "\\PC{0,60}") {
        for m in scan_numbers(&text) {
            prop_assert!(text.is_char_boundary(m.start) && text.is_char_boundary(m.end));
            prop_assert!(m.start < m.end);
        }
    }

    #[test]
    fn chinese_numeral_parser_never_panics(text in "[零一二两三四五六七八九十百千万亿点]{0,10}") {
        if let Some(v) = parse_chinese_numeral(&text) {
            prop_assert!(v.is_finite() && v >= 0.0);
        }
    }

    #[test]
    fn unit_expression_parser_never_panics(text in "[a-z×·/()^0-9 %°µ]{0,30}") {
        let kb = DimUnitKb::shared();
        let _ = expr::eval(&kb, &text);
    }

    #[test]
    fn unit_expression_parser_survives_arbitrary_unicode(text in "\\PC{0,60}") {
        // Arbitrary multi-script UTF-8 (CJK, emoji, Latin-1 punctuation):
        // parsing must return `Err(KbError)` rather than panic.
        let kb = DimUnitKb::shared();
        let _ = expr::eval(&kb, &text);
    }

    #[test]
    fn unit_expression_parser_survives_operator_soup(
        text in "[×·/()^\\-0-9a-zµ°%⁻¹²³ ]{0,40}"
    ) {
        // Dense operator/exponent soup — adversarial for the exponent
        // tokenizer (`^-`, `^^`, bare `^`, huge exponents, superscripts).
        let kb = DimUnitKb::shared();
        if let Ok(v) = expr::eval(&kb, &text) {
            // Accepted expressions must have sane, clamped exponents.
            for e in v.dim.exponents() {
                prop_assert!(e.unsigned_abs() <= 144, "runaway exponent {e}");
            }
        }
    }

    #[test]
    fn equation_calculator_never_panics(text in "[0-9+\\-*/()%. x=]{0,30}") {
        if let Ok(v) = calculate(&text) {
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn linker_never_panics(mention in "\\PC{0,20}", context in "\\PC{0,40}") {
        let _ = ks().link(&mention, &context);
    }
}
