//! The paper's qualitative findings, asserted as integration tests at
//! reduced scale. These are the claims EXPERIMENTS.md tracks:
//!
//! 1. DimUnitKB dominates WolframAlpha and UoM in coverage (Table IV);
//! 2. Q-MWP has more units and operations than N-MWP (Table VI);
//! 3. every untuned model drops from N-MWP to Q-MWP (Table IX);
//! 4. the headline: DimPerc beats tool-augmented GPT-4 on Q-Ape210k
//!    (the paper's 43.55% → 50.67%);
//! 5. augmentation rate η ≥ 0.5 outperforms η = 0 (Fig. 6);
//! 6. digit (equation) tokenization underperforms regular (Fig. 7).

use dimension_perception::core::experiments::{
    self, quick_config, table4, table6, table9,
};

#[test]
fn table4_coverage_ordering() {
    let rows = table4();
    assert!(rows[0].units < rows[1].units);
    assert!(rows[1].units < rows[2].units);
    assert!(rows[2].freq, "only DimUnitKB has the frequency feature");
    assert_eq!(rows[2].lang, "En&Zh", "only DimUnitKB is bilingual");
}

#[test]
fn table6_q_dominates_n() {
    let cfg = quick_config();
    let rows = table6(&cfg);
    let get = |name: &str| rows.iter().find(|(n, _)| *n == name).unwrap().1.clone();
    for (n, q) in [("N-Math23k", "Q-Math23k"), ("N-Ape210k", "Q-Ape210k")] {
        let (sn, sq) = (get(n), get(q));
        assert!(sq.units > sn.units, "{q} units {} vs {n} {}", sq.units, sn.units);
        let hi = |s: &dimension_perception::mwp::DatasetStats| s.op_buckets[2] + s.op_buckets[3];
        assert!(hi(&sq) >= hi(&sn), "{q} must not have fewer high-op problems");
    }
}

#[test]
fn table9_shapes_hold_at_quick_scale() {
    let cfg = quick_config();
    let rows = table9(&cfg);
    let get = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("row {name} missing: {:?}", rows.iter().map(|r| &r.name).collect::<Vec<_>>()))
            .accuracy
    };
    let gpt4 = get("GPT-4");
    let gpt4_tool = get("GPT-4 + WolframAlpha");
    let bertgen = get("BertGen");
    let dimperc = get("DimPerc");

    // (3) every untuned model drops from N to Q on both dataset styles.
    for acc in [gpt4, gpt4_tool, bertgen] {
        assert!(acc[2] < acc[0], "Q-Math23k {} must trail N-Math23k {}", acc[2], acc[0]);
        assert!(acc[3] < acc[1], "Q-Ape210k {} must trail N-Ape210k {}", acc[3], acc[1]);
    }
    // (4) the headline claim: DimPerc beats the best untuned model
    // (tool-augmented GPT-4) on Q-Ape210k, and beats everything on Q-Math23k.
    assert!(
        dimperc[3] > gpt4_tool[3],
        "headline: DimPerc {} must beat GPT-4+WolframAlpha {} on Q-Ape210k",
        dimperc[3],
        gpt4_tool[3]
    );
    assert!(dimperc[2] > gpt4[2], "DimPerc must lead Q-Math23k");
    // DimPerc retains N-MWP competence (paper: 80.89 on N-Math23k).
    assert!(dimperc[0] > 0.6, "DimPerc N-Math23k {}", dimperc[0]);
}

#[test]
fn fig6_augmentation_helps() {
    let cfg = quick_config();
    let sweep = experiments::fig6(&cfg, &[0.0, 0.5, 1.0]);
    let at = |eta: f64| sweep.iter().find(|(e, _)| *e == eta).unwrap().1;
    assert!(
        at(0.5) > at(0.0),
        "η=0.5 ({}) must beat η=0 ({})",
        at(0.5),
        at(0.0)
    );
    assert!(at(1.0) >= at(0.5) - 0.08, "η=1.0 should not collapse");
}

#[test]
fn fig7_digit_tokenization_hurts_and_dimperc_leads_early() {
    let cfg = quick_config();
    let curves = experiments::fig7(&cfg, 4);
    let find = |label: &str| {
        curves
            .iter()
            .find(|c| c.label == label)
            .unwrap_or_else(|| panic!("curve {label} missing"))
    };
    let dp_reg = find("DimPerc w/o ET");
    let dp_dig = find("DimPerc w/ ET");
    let base_reg = find("LLaMa_IFT w/o ET");
    // (6) final accuracy: regular tokenization ≥ digit tokenization.
    let last = |c: &experiments::Curve| c.points.last().unwrap().1;
    assert!(
        last(dp_reg) >= last(dp_dig),
        "regular {} must not trail digit {}",
        last(dp_reg),
        last(dp_dig)
    );
    // DimPerc starts above the base model (knowledge transfer, Fig. 7).
    let first = |c: &experiments::Curve| c.points.first().unwrap().1;
    assert!(
        first(dp_reg) >= first(base_reg),
        "DimPerc {} must start at or above base {}",
        first(dp_reg),
        first(base_reg)
    );
    // Both improve with training.
    assert!(last(dp_reg) >= first(dp_reg));
    assert!(last(base_reg) >= first(base_reg));
}
