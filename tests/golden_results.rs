//! Golden-results harness: every paper-facing output under `results/` is
//! regenerated in-process (through the same `dim_bench::render` functions
//! the experiment binaries print) and byte-compared against the committed
//! transcript. Any behavioural drift in the pipeline — intended or not —
//! fails here instead of silently rotting the committed tables.
//!
//! The config-independent outputs (Table IV, Fig. 3/4, both ablations)
//! compare against `results/<name>.txt`; the config-dependent tables
//! (VI, VII) run at the `--quick` configuration and compare against
//! `results/quick/<name>.txt`, at thread widths 1 and 4 — proving both
//! the cross-thread determinism contract and that enabling the `dim-obs`
//! metrics layer never perturbs paper-facing bytes.
//!
//! To refresh goldens after an *intentional* output change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_results
//! ```
//!
//! then review the `results/` diff like any other code change.

use dim_bench::render;
use dimension_perception::core::experiments::{quick_config, ExperimentConfig};
use std::fs;
use std::path::PathBuf;

fn golden_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results").join(rel)
}

/// Byte-compares `actual` against the committed golden, or rewrites the
/// golden when `UPDATE_GOLDEN` is set.
fn assert_matches_golden(rel: &str, actual: &str) {
    let path = golden_path(rel);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        eprintln!("golden: rewrote {}", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); generate it with `UPDATE_GOLDEN=1 cargo test --test golden_results`",
            path.display()
        )
    });
    if expected != actual {
        let first_diff = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map(|i| i + 1);
        panic!(
            "regenerated output drifted from {} (first differing line: {first_diff:?}, \
             expected {} bytes, got {} bytes).\n\
             If the change is intentional, refresh with `UPDATE_GOLDEN=1 cargo test --test golden_results` \
             and review the results/ diff.",
            path.display(),
            expected.len(),
            actual.len(),
        );
    }
}

/// The quick experiment configuration at an explicit fan-out width.
fn quick_at(threads: usize) -> ExperimentConfig {
    let mut cfg = quick_config();
    cfg.parallelism = dim_par::Parallelism::new(threads);
    cfg.pipeline.parallelism = dim_par::Parallelism::new(threads);
    cfg
}

#[test]
fn table4_matches_golden() {
    assert_matches_golden("table4.txt", &render::table4());
}

/// Paper parity for Table IV: the grown DimUnitKB must meet the scale the
/// paper reports for its knowledge base — 1778 units across 327 quantity
/// kinds — and the binary snapshot must reproduce exactly the same
/// statistics. Floors, not equalities: the KB may keep growing, but it
/// must never shrink below the paper again.
#[test]
fn table4_reaches_paper_scale_and_snapshot_agrees() {
    use dimension_perception::kb::{stats, DimUnitKb};

    let built = stats::statistics(&DimUnitKb::shared());
    assert!(
        built.units >= 1778,
        "paper reports 1778 units; the KB has regressed to {}",
        built.units,
    );
    assert!(
        built.quantity_kinds >= 327,
        "paper reports 327 quantity kinds; the KB has regressed to {}",
        built.quantity_kinds,
    );
    assert_eq!(built.languages, "En&Zh");
    assert!(built.has_frequency);

    let snapped = stats::statistics(&DimUnitKb::shared_snap());
    assert_eq!(snapped, built, "snapshot-loaded KB must report identical Table IV statistics");
}

#[test]
fn fig3_matches_golden() {
    assert_matches_golden("fig3.txt", &render::fig3());
}

#[test]
fn fig4_matches_golden() {
    assert_matches_golden("fig4.txt", &render::fig4());
}

#[test]
fn ablation_algo1_matches_golden() {
    assert_matches_golden("ablation_algo1.txt", &render::ablation_algo1());
}

#[test]
fn ablation_linking_matches_golden() {
    assert_matches_golden("ablation_linking.txt", &render::ablation_linking());
}

#[test]
fn quick_table6_matches_golden_at_every_thread_width() {
    // Width 1 establishes the golden; width 4 proves the fan-out cannot
    // change paper-facing bytes. Metrics are live during the second run
    // (see `obs_instrumentation_covers_stages_without_perturbing_output`,
    // which may execute concurrently in this process) — that is part of
    // the contract under test.
    for threads in [1, 4] {
        assert_matches_golden("quick/table6.txt", &render::table6(&quick_at(threads)));
    }
}

#[test]
fn quick_table7_matches_golden_at_every_thread_width() {
    for threads in [1, 4] {
        assert_matches_golden("quick/table7.txt", &render::table7(&quick_at(threads)));
    }
}

/// The dim-verify repair table (before/after accuracy of the dimensional
/// rejection/repair pass, DESIGN.md §15) is a paper-facing output like
/// Tables VI/VII: byte-identical at both fan-out widths and pinned
/// against the committed golden. `make verify-gate` additionally asserts
/// the after >= before invariant on the underlying numbers.
#[test]
fn quick_verify_repair_matches_golden_at_every_thread_width() {
    for threads in [1, 4] {
        assert_matches_golden("quick/verify_repair.txt", &render::verify_repair(&quick_at(threads)));
    }
}

/// Same contract for the NUMCoT-style perturbation table (unit-mutation
/// detection rates per mutation class).
#[test]
fn quick_verify_perturb_matches_golden_at_every_thread_width() {
    for threads in [1, 4] {
        assert_matches_golden(
            "quick/verify_perturb.txt",
            &render::verify_perturb(&quick_at(threads)),
        );
    }
}

/// The chaos stage under a fixed `FaultPlan` (seed 7, rate 0.05) renders a
/// byte-identical report — plan banner, stage outcomes, and the full
/// quarantine manifest — at both fan-out widths. This pins the
/// fault-injection decision function and the quarantine contract the same
/// way the other goldens pin paper-facing numbers. Safe alongside the
/// other golden tests: classic paths never consult the injector, so the
/// plan window only affects this report's `try_*` stages.
#[test]
fn chaos_quick_matches_golden() {
    for threads in [1, 4] {
        assert_matches_golden(
            "quick/chaos.txt",
            &render::chaos_report(&quick_at(threads), 7, 0.05),
        );
    }
}

/// Drives every instrumented hot path with a small workload under
/// `dim_obs::enable()` and asserts each acceptance-criteria stage (link,
/// algo1, algo2, mwp-gen, eval) reports a non-zero span timing plus
/// plausible counters. Output-perturbation safety is covered by the
/// golden tests above running in the same (obs-enabled) process.
#[test]
fn obs_instrumentation_covers_stages_without_perturbing_output() {
    use dimension_perception::corpus::{generate, CorpusConfig};
    use dimension_perception::eval::algo1::{self, Algo1Config};
    use dimension_perception::eval::algo2::{self, Algo2Config};
    use dimension_perception::eval::{evaluate, DimEval, DimEvalConfig};
    use dimension_perception::kb::DimUnitKb;
    use dimension_perception::kgraph::{synthesize, SynthConfig};
    use dimension_perception::link::{Annotator, LinkerConfig, UnitLinker};
    use dimension_perception::models::{profile, SimulatedLlm};
    use dimension_perception::mwp::{self, GenConfig, Source};

    dim_obs::enable();

    let kb = DimUnitKb::shared();
    let annotator = Annotator::new(UnitLinker::new(kb.clone(), None, LinkerConfig::default()));

    // kb.search.* : the indexed KB search.
    let hits = dimension_perception::kb::search::search(&kb, "meter", 5);
    assert!(!hits.is_empty());

    // link.* : annotate a sentence with two quantities.
    let mentions = annotator.annotate("LeBron James's height is 2.06 meters and his weight is 113 kg.");
    assert_eq!(mentions.len(), 2);

    // algo1.* : the semi-automated annotation pipeline on a small corpus.
    let corpus = generate(&kb, &CorpusConfig { sentences: 40, seed: 11 });
    let mlm = algo1::train_filter(&corpus);
    algo1::semi_automated_annotate(&annotator, &mlm, &corpus, Algo1Config::default());

    // algo2.* : bootstrapping retrieval over a small synthetic KG.
    let kg = synthesize(&kb, &SynthConfig { entities_per_type: 10, seed: 3 });
    algo2::bootstrap_retrieve(&kg, &annotator, Algo2Config::default());

    // mwp.* : problem generation.
    let problems = mwp::generate(Source::Ape210k, &GenConfig { count: 20, seed: 9 });
    assert_eq!(problems.len(), 20);

    // dimeval.build + eval.* : build a tiny benchmark and evaluate a
    // simulated solver over it.
    let eval =
        DimEval::build(&kb, &DimEvalConfig { per_task: 4, extraction_items: 4, ..Default::default() });
    let mut solver = SimulatedLlm::new(kb.clone(), profile::GPT35_TURBO, 1);
    evaluate(&mut solver, &eval);

    let snap = dim_obs::snapshot();
    for stage in ["link.link", "algo1.run", "algo2.run", "mwp.gen", "eval.evaluate", "dimeval.build"]
    {
        let h = snap
            .histogram(stage)
            .unwrap_or_else(|| panic!("stage {stage} not present in the obs snapshot"));
        assert!(h.count > 0, "stage {stage} recorded no spans");
        assert!(h.sum > 0, "stage {stage} recorded zero elapsed time");
        assert!(h.max >= h.p50, "stage {stage} has inconsistent stats: {h:?}");
    }
    assert!(snap.counter("link.mentions").unwrap() >= 2);
    assert!(snap.counter("algo1.sentences").unwrap() >= 40);
    assert!(snap.counter("mwp.problems").unwrap() >= 20);
    assert!(snap.counter("eval.items").unwrap() > 0);
    assert!(snap.counter("kb.search.queries").unwrap() > 0);
    assert!(
        snap.histogram("kb.search").map(|h| h.count).unwrap_or(0) > 0,
        "the indexed KB search span must record"
    );
}
