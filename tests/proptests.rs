//! Property-based tests of the core invariants.

use dimension_perception::kb::{Conversion, DimUnitKb, DimVec, UnitId};
use dimension_perception::link::lev;
use dimension_perception::mwp::{calculate, Node, Op};
use proptest::prelude::*;

fn arb_dim() -> impl Strategy<Value = DimVec> {
    (
        -4i8..=4,
        -4i8..=4,
        -4i8..=4,
        -4i8..=4,
        -4i8..=4,
        -4i8..=4,
        -4i8..=4,
    )
        .prop_map(|(a, e, l, i, m, h, t)| {
            use dimension_perception::kb::Base;
            DimVec::from_exponents(&[
                (Base::Amount, a),
                (Base::Current, e),
                (Base::Length, l),
                (Base::Luminous, i),
                (Base::Mass, m),
                (Base::Temperature, h),
                (Base::Time, t),
            ])
        })
}

proptest! {
    // ---- dimension algebra laws --------------------------------------

    #[test]
    fn dim_mul_is_commutative(a in arb_dim(), b in arb_dim()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn dim_mul_div_inverse(a in arb_dim(), b in arb_dim()) {
        prop_assert_eq!(a * b / b, a);
    }

    #[test]
    fn dim_dimensionless_is_identity(a in arb_dim()) {
        prop_assert_eq!(a * DimVec::DIMENSIONLESS, a);
        prop_assert_eq!(a / a, DimVec::DIMENSIONLESS);
    }

    #[test]
    fn dim_vector_form_roundtrips(a in arb_dim()) {
        let s = a.vector_form();
        prop_assert_eq!(DimVec::parse(&s).unwrap(), a);
    }

    #[test]
    fn dim_powi_matches_repeated_mul(a in arb_dim(), n in 0i8..=4) {
        let mut acc = DimVec::DIMENSIONLESS;
        for _ in 0..n {
            acc = acc * a;
        }
        prop_assert_eq!(a.powi(n), acc);
    }

    // ---- conversions ----------------------------------------------------

    #[test]
    fn conversion_roundtrips(factor in 1e-9f64..1e9, offset in -500.0f64..500.0, v in -1e6f64..1e6) {
        let c = Conversion::affine(factor, offset);
        let rt = c.from_si(c.to_si(v));
        prop_assert!((rt - v).abs() <= 1e-6 * v.abs().max(1.0));
    }

    // ---- Levenshtein ------------------------------------------------------

    #[test]
    fn levenshtein_identity_and_symmetry(a in "[a-z\u{4e00}-\u{4e2f}]{0,12}", b in "[a-z\u{4e00}-\u{4e2f}]{0,12}") {
        prop_assert_eq!(lev::distance(&a, &a), 0);
        prop_assert_eq!(lev::distance(&a, &b), lev::distance(&b, &a));
        let sim = lev::similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&sim));
    }

    #[test]
    fn levenshtein_bounded_by_longer_string(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
        let d = lev::distance(&a, &b);
        prop_assert!(d <= a.chars().count().max(b.chars().count()));
        prop_assert!(d >= a.chars().count().abs_diff(b.chars().count()));
    }

    // ---- equations -----------------------------------------------------------

    #[test]
    fn equation_render_parse_roundtrip(
        vals in prop::collection::vec(1u32..5000, 2..5),
        ops in prop::collection::vec(0u8..4, 1..4),
    ) {
        // Build a left-leaning tree of the values and ops.
        let mut node = Node::Const(f64::from(vals[0]));
        for (i, op) in ops.iter().enumerate() {
            let v = f64::from(vals[(i + 1) % vals.len()]);
            let op = match op {
                0 => Op::Add,
                1 => Op::Sub,
                2 => Op::Mul,
                _ => Op::Div,
            };
            node = Node::bin(op, node, Node::Const(v));
        }
        let direct = node.eval(&[]);
        prop_assume!(direct.is_finite());
        let text = node.render(&[]);
        let parsed = calculate(&text).unwrap();
        let scale = direct.abs().max(1.0);
        prop_assert!((parsed - direct).abs() <= 1e-9 * scale, "{} -> {} vs {}", text, parsed, direct);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ---- KB-wide invariants (heavier, fewer cases) -----------------------

    #[test]
    fn kb_conversion_roundtrip_between_random_same_dim_units(idx in 0usize..2000, v in 0.001f64..1e6) {
        let kb = DimUnitKb::shared();
        let units = kb.units();
        let a = &units[idx % units.len()];
        let same_dim = kb.units_with_dim(a.dim);
        let b = kb.unit(same_dim[idx % same_dim.len()]);
        let there = kb.convert(v, a.id, b.id).unwrap();
        let back = kb.convert(there, b.id, a.id).unwrap();
        prop_assert!((back - v).abs() <= 1e-6 * v.abs().max(1e-9), "{} -> {} -> {}", v, there, back);
    }

    #[test]
    fn kb_lookup_returns_units_bearing_the_surface(idx in 0usize..2000) {
        let kb = DimUnitKb::shared();
        let units = kb.units();
        let u = &units[idx % units.len()];
        for form in u.surface_forms() {
            let hits = kb.lookup(form);
            prop_assert!(hits.contains(&u.id), "{} not found under {:?}", u.code, form);
        }
    }

    #[test]
    fn kb_conversion_factor_is_consistent_with_convert(idx in 0usize..2000) {
        let kb = DimUnitKb::shared();
        let units = kb.units();
        let a = &units[idx % units.len()];
        if a.conversion.is_affine() {
            return Ok(());
        }
        let same_dim: Vec<UnitId> = kb
            .units_with_dim(a.dim)
            .iter()
            .copied()
            .filter(|&id| !kb.unit(id).conversion.is_affine())
            .collect();
        let b = same_dim[idx % same_dim.len()];
        let beta = kb.conversion_factor(a.id, b).unwrap();
        let via_convert = kb.convert(1.0, a.id, b).unwrap();
        prop_assert!((beta - via_convert).abs() <= 1e-9 * beta.abs().max(1e-12));
    }
}

proptest! {
    // ---- dim-par determinism contract ------------------------------------

    /// `par_map` must equal the sequential map for every item count and
    /// thread width — the invariant every parallelized pipeline stage
    /// leans on for byte-identical paper outputs.
    #[test]
    fn par_map_matches_sequential_at_every_thread_width(
        items in prop::collection::vec(0u64..1_000_000, 0..200),
        threads in 1usize..=8,
    ) {
        let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761) ^ (x >> 7)).collect();
        let got = dim_par::par_map(
            dim_par::Parallelism::new(threads),
            &items,
            |&x| x.wrapping_mul(2654435761) ^ (x >> 7),
        );
        prop_assert_eq!(got, expected);
    }
}
