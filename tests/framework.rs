//! End-to-end integration tests across the workspace crates.

use dimension_perception::core::DimKs;
use dimension_perception::eval::{evaluate, DimEval, DimEvalConfig, TaskKind};
use dimension_perception::kb::DimUnitKb;
use dimension_perception::models::profile::GPT4;
use dimension_perception::models::SimulatedLlm;

#[test]
fn dimks_annotates_bilingual_text_end_to_end() {
    let ks = DimKs::standard();
    let text = "这座塔高三百二十四米，重约7000吨，每年用电约580万千瓦时。";
    let mentions = ks.annotate(text);
    assert!(mentions.len() >= 2, "{mentions:?}");
    let kb = ks.kb();
    let codes: Vec<String> =
        mentions.iter().map(|m| kb.unit(m.best_unit()).code.clone()).collect();
    assert!(codes.contains(&"M".to_string()), "{codes:?}");
    assert!(codes.contains(&"TONNE".to_string()), "{codes:?}");
}

#[test]
fn benchmark_pipeline_is_reproducible_across_processes_shape() {
    // Same seed → identical benchmark; different seed → different items.
    let kb = DimUnitKb::shared();
    let a = DimEval::build(&kb, &DimEvalConfig { per_task: 8, extraction_items: 8, ..Default::default() });
    let b = DimEval::build(&kb, &DimEvalConfig { per_task: 8, extraction_items: 8, ..Default::default() });
    assert_eq!(a.choice[&TaskKind::UnitConversion], b.choice[&TaskKind::UnitConversion]);
    let c = DimEval::build(
        &kb,
        &DimEvalConfig { per_task: 8, extraction_items: 8, seed: 999, ..Default::default() },
    );
    assert_ne!(a.choice[&TaskKind::UnitConversion], c.choice[&TaskKind::UnitConversion]);
}

#[test]
fn simulated_model_runs_the_whole_benchmark() {
    let kb = DimUnitKb::shared();
    let eval = DimEval::build(
        &kb,
        &DimEvalConfig { per_task: 10, extraction_items: 10, ..Default::default() },
    );
    let mut model = SimulatedLlm::new(kb, GPT4, 1);
    let report = evaluate(&mut model, &eval);
    assert_eq!(report.choice.len(), 6);
    for (task, score) in &report.choice {
        assert_eq!(score.total, 10, "{task:?}");
    }
    assert_eq!(report.extraction.qe.gold, eval.extraction.iter().map(|e| e.gold.len()).sum::<usize>());
}

#[test]
fn umbrella_reexports_are_wired() {
    // Every facade module resolves and interoperates.
    let kb = dimension_perception::kb::DimUnitKb::shared();
    let toks = dimension_perception::embed::tokenize::words("3 km away");
    assert_eq!(toks.len(), 3);
    let problems = dimension_perception::mwp::generate(
        dimension_perception::mwp::Source::Math23k,
        &dimension_perception::mwp::GenConfig { count: 3, seed: 1 },
    );
    assert_eq!(problems.len(), 3);
    let mut aug = dimension_perception::mwp::Augmenter::new(&kb, 2);
    let q = aug.to_qmwp(&problems);
    assert_eq!(q.len(), 3);
}
