//! Integration suite for `dim-serve`, the HTTP serving layer over DimKS.
//!
//! What is pinned here, per DESIGN §10:
//!
//! - the smoke transcript is byte-identical to the committed golden
//!   (`results/quick/serve.txt`) — same regeneration protocol as every
//!   other golden: `UPDATE_GOLDEN=1 cargo test --test serve`;
//! - graceful shutdown drains in-flight and queued requests before the
//!   final report is emitted;
//! - a full connection queue is a deterministic `503` (backpressure),
//!   counted in the drain report;
//! - chaos rate 0 is byte-identical to a chaos-free server; rate > 0
//!   degrades faulted requests to structured `503`s — reproducibly across
//!   runs — and never kills the process;
//! - slow-loris trickling exhausts a bounded header-read budget (`408` +
//!   close), half-closes and abrupt disconnects never panic a worker, and
//!   connection-level chaos at rate 0 is byte-identical to no plan;
//! - the sharded LRU reaches identical contents at dim-par widths 1 and 4;
//! - the hand-rolled HTTP parser survives header soup, multi-script UTF-8,
//!   truncation at every byte, and oversize declarations (proptests), and
//!   the `X-Deadline-Ms` budget parser clamps without ever panicking.

use dim_serve::deadline::{parse_header_budget, HeaderBudget, MIN_DEADLINE};
use dim_serve::http::{self, Parsed};
use dim_serve::server::client;
use dim_serve::{AppConfig, ServerConfig, ShardedLru};
use proptest::prelude::*;
use std::io::Write as _;
use std::sync::Mutex;
use std::time::Duration;

/// The chaos plan is process-global; every test touching it serializes
/// here (same pattern as `tests/chaos.rs`).
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_lock() -> std::sync::MutexGuard<'static, ()> {
    dim_chaos::silence_injected_panic_reports();
    dim_chaos::clear();
    match CHAOS_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn test_server(workers: usize, queue: usize) -> dim_serve::ServerHandle {
    dim_serve::start(ServerConfig {
        workers,
        queue_capacity: queue,
        app: AppConfig { batch_window: Duration::ZERO, ..AppConfig::default() },
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

// ===================== golden transcript =====================

fn golden_path(rel: &str) -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results").join(rel)
}

/// Byte-compares against the committed golden, or rewrites it when
/// `UPDATE_GOLDEN` is set (same protocol as `tests/golden_results.rs`).
fn assert_matches_golden(rel: &str, actual: &str) {
    let path = golden_path(rel);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, actual).expect("write golden");
        eprintln!("golden: rewrote {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); generate it with `UPDATE_GOLDEN=1 cargo test --test serve`",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "serve transcript drifted from {} (expected {} bytes, got {}).\n\
         If intentional, refresh with `UPDATE_GOLDEN=1 cargo test --test serve`.",
        path.display(),
        expected.len(),
        actual.len()
    );
}

#[test]
fn smoke_transcript_matches_golden() {
    let _guard = chaos_lock(); // transcript bytes assume no fault plan
    let transcript = dim_serve::smoke::transcript(2).expect("run smoke script");
    assert_matches_golden("quick/serve.txt", &transcript);
}

// ===================== graceful drain =====================

/// An in-flight request — half its bytes on the wire when shutdown begins
/// — is drained, answered, and counted before the report is emitted.
#[test]
fn graceful_shutdown_drains_in_flight_request() {
    let server = test_server(2, 8);
    let addr = server.addr();
    // Park a raw connection mid-request: head sent, body missing.
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let body = "{\"equation\":\"x=6*7\"}";
    stream
        .write_all(
            format!("POST /solve HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len()).as_bytes(),
        )
        .expect("send head");
    // Let a worker adopt the connection and buffer the partial request.
    std::thread::sleep(Duration::from_millis(80));

    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(80));
    // The server is draining; finish the request now.
    stream.write_all(body.as_bytes()).expect("send body");
    let resp = read_raw_response(&mut stream);
    assert!(resp.contains("HTTP/1.1 200"), "in-flight request must complete: {resp}");
    assert!(resp.contains("{\"answer\":42}"), "{resp}");
    assert!(resp.contains("Connection: close"), "drain closes after answering: {resp}");

    let report = shutdown.join().expect("shutdown thread");
    assert!(report.requests >= 1, "drained request must be counted");
    assert!(report.obs_json.contains("\"counters\""));
}

fn read_raw_response(stream: &mut std::net::TcpStream) -> String {
    use std::io::Read;
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

// ===================== backpressure =====================

/// With one worker parked on a live connection and a single-slot queue
/// occupied, the next connection gets the deterministic `503` and the
/// queued one is still served once the worker frees up.
#[test]
fn queue_full_is_deterministic_503_and_backlog_still_drains() {
    let server = test_server(1, 1);
    let addr = server.addr();

    // conn1 parks the only worker (keep-alive: worker stays on it).
    let mut conn1 = client::Conn::connect(addr).expect("conn1");
    let warm = conn1.request("GET", "/healthz", "").expect("warm");
    assert_eq!(warm.status, 200);

    // conn2 occupies the single queue slot (no worker free to pop it).
    let mut conn2 = client::Conn::connect(addr).expect("conn2");

    // Give the acceptor time to enqueue conn2 before conn3 arrives.
    std::thread::sleep(Duration::from_millis(50));

    // conn3 must be refused with the fixed backpressure response.
    let rejected = client::request(addr, "GET", "/healthz", "").expect("conn3 read");
    assert_eq!(rejected.status, 503, "{}", rejected.body);
    assert_eq!(rejected.body, "{\"error\":\"queue full\"}");
    assert!(rejected.close);

    // Freeing the worker lets the queued conn2 get served.
    drop(conn1);
    let late = conn2.request("POST", "/solve", "{\"equation\":\"x=1+1\"}").expect("conn2 served");
    assert_eq!(late.status, 200);
    assert_eq!(late.body, "{\"answer\":2}");

    let report = server.shutdown();
    assert_eq!(report.rejected, 1, "exactly one backpressure rejection");
}

// ===================== overload hardening =====================

/// A peer trickling header bytes holds a worker for at most the total
/// header-read budget, then gets a `408` with `Retry-After` and a close —
/// per-byte progress must NOT keep resetting the clock.
#[test]
fn slow_loris_trickle_is_408_and_closed_after_total_budget() {
    let server = dim_serve::start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        header_read_budget: Duration::from_millis(150),
        app: AppConfig { batch_window: Duration::ZERO, ..AppConfig::default() },
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();

    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone for writer");
    let started = std::time::Instant::now();
    // Drip one header byte every 20 ms — each write is progress, so only a
    // *total* budget (not an idle timeout) can end this connection.
    let trickler = std::thread::spawn(move || {
        let bytes = b"POST /solve HTTP/1.1\r\nX-Slow: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
        for b in bytes {
            if writer.write_all(std::slice::from_ref(b)).is_err() {
                break; // server gave up on us, as it should
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    });
    let resp = read_raw_response(&mut stream);
    let elapsed = started.elapsed();
    trickler.join().expect("trickler");
    assert!(resp.starts_with("HTTP/1.1 408"), "want 408 for a slow-loris peer: {resp}");
    assert!(resp.contains("Retry-After: 1"), "{resp}");
    assert!(resp.contains("Connection: close"), "{resp}");
    assert!(
        elapsed >= Duration::from_millis(150),
        "cut off before the budget elapsed: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "a trickling peer held a worker far past the budget: {elapsed:?}"
    );

    // The worker that served the attacker is free again.
    let ok = client::request(addr, "GET", "/healthz", "").expect("healthz after loris");
    assert_eq!(ok.status, 200);
    let report = server.shutdown();
    assert_eq!(report.open_connections, 0, "no leaked gate permits");
}

/// A peer that half-closes (shutdown of its write side) after a complete
/// request still receives the full response; the worker sees EOF afterward
/// and moves on without panicking.
#[test]
fn half_close_after_request_still_receives_the_response() {
    let server = test_server(1, 4);
    let addr = server.addr();
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let body = "{\"equation\":\"x=6*7\"}";
    stream
        .write_all(
            format!("POST /solve HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len())
                .as_bytes(),
        )
        .expect("send request");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    let resp = read_raw_response(&mut stream);
    assert!(resp.contains("HTTP/1.1 200"), "half-closed peer still gets its answer: {resp}");
    assert!(resp.contains("{\"answer\":42}"), "{resp}");

    // The worker survived EOF; the next connection is served normally.
    let ok = client::request(addr, "GET", "/healthz", "").expect("healthz after half-close");
    assert_eq!(ok.status, 200);
    let report = server.shutdown();
    assert_eq!(report.open_connections, 0);
}

/// Abrupt disconnects — full requests, partial heads, zero bytes — never
/// panic a worker and never leak a connection permit.
#[test]
fn abrupt_disconnects_never_panic_workers_or_leak_permits() {
    let _guard = chaos_lock(); // serializes the panics-counter delta below
    let panics_before =
        dim_obs::snapshot().counter("srv.panics_caught").unwrap_or(0);
    let server = test_server(1, 8);
    let addr = server.addr();
    for i in 0..6 {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        match i % 3 {
            0 => {
                // Complete request, then vanish before reading the answer.
                let body = "{\"equation\":\"x=1+1\"}";
                let _ = stream.write_all(
                    format!("POST /solve HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len())
                        .as_bytes(),
                );
            }
            1 => {
                // Head only — the worker is left waiting on a body.
                let _ = stream.write_all(b"POST /solve HTTP/1.1\r\nContent-Length: 20\r\n\r\n");
            }
            _ => {} // connect and drop without a single byte
        }
        drop(stream);
        // Let the worker adopt (and abandon) the dead connection.
        std::thread::sleep(Duration::from_millis(40));
    }
    let ok = client::request(addr, "GET", "/healthz", "").expect("healthz after disconnects");
    assert_eq!(ok.status, 200);
    let report = server.shutdown();
    assert_eq!(report.open_connections, 0, "a dead peer leaked a gate permit");
    let panics_after = dim_obs::snapshot().counter("srv.panics_caught").unwrap_or(0);
    assert_eq!(panics_after, panics_before, "a disconnect panicked a worker");
}

// ===================== chaos =====================

fn chaos_script() -> Vec<(String, String)> {
    (0..40)
        .map(|i| match i % 4 {
            0 => ("/link".to_string(), format!("{{\"mention\":\"km\",\"context\":\"probe {i}\"}}")),
            1 => ("/solve".to_string(), format!("{{\"equation\":\"x={i}+1\"}}")),
            2 => ("/convert".to_string(), format!("{{\"value\":{i},\"from\":\"m\",\"to\":\"cm\"}}")),
            _ => ("/annotate".to_string(), format!("{{\"text\":\"box {i} weighs {i} kg\"}}")),
        })
        .collect()
}

/// Runs the chaos script over a fresh server, returning per-request
/// `(status, body)` plus the sorted quarantine manifest.
fn run_chaos_script(workers: usize) -> (Vec<(u16, String)>, Vec<String>) {
    let server = test_server(workers, 16);
    let mut conn = client::Conn::connect(server.addr()).expect("connect");
    let mut out = Vec::new();
    for (target, body) in chaos_script() {
        let resp = conn.request("POST", &target, &body).expect("response even under chaos");
        out.push((resp.status, resp.body));
    }
    let mut manifest: Vec<String> =
        server.app().quarantine_entries().iter().map(|q| q.to_string()).collect();
    manifest.sort();
    server.shutdown();
    (out, manifest)
}

#[test]
fn chaos_rate_zero_is_byte_identical_to_no_plan() {
    let _guard = chaos_lock();
    let (clean, clean_q) = run_chaos_script(1);
    dim_chaos::install(dim_chaos::FaultPlan::new(9, 0.0));
    let (zero_rate, zero_q) = run_chaos_script(1);
    dim_chaos::clear();
    assert_eq!(clean, zero_rate, "rate 0 must not change a single byte");
    assert!(clean_q.is_empty() && zero_q.is_empty());
    assert!(clean.iter().all(|(s, _)| *s == 200), "clean script is all 200s");
}

/// `/verify` goes through the same per-request chaos wiring as the other
/// POST routes (its own `srv.request` arm, so the established chaos
/// goldens above are untouched): a rate-0 plan must not change a byte of
/// its responses — consistent, inconsistent, and unresolvable alike.
#[test]
fn verify_chaos_rate_zero_is_byte_identical_to_no_plan() {
    let _guard = chaos_lock();
    let script: Vec<String> = (0..12)
        .map(|i| match i % 3 {
            0 => format!(
                "{{\"equation\":\"x={i}+50\",\"quantities\":[{{\"value\":{i},\"unit\":\"米\"}},{{\"value\":50,\"unit\":\"米\"}}],\"answer_unit\":\"米\"}}"
            ),
            1 => format!(
                "{{\"equation\":\"x={i}+50\",\"quantities\":[{{\"value\":{i},\"unit\":\"米\"}},{{\"value\":50,\"unit\":\"千克\"}}]}}"
            ),
            _ => format!(
                "{{\"equation\":\"x={i}*2\",\"quantities\":[{{\"value\":{i},\"unit\":\"zorblax\"}},{{\"value\":2}}]}}"
            ),
        })
        .collect();
    let run = || {
        let server = test_server(1, 16);
        let mut conn = client::Conn::connect(server.addr()).expect("connect");
        let out: Vec<(u16, String)> = script
            .iter()
            .map(|body| {
                let resp = conn.request("POST", "/verify", body).expect("verify response");
                (resp.status, resp.body)
            })
            .collect();
        server.shutdown();
        out
    };
    let clean = run();
    dim_chaos::install(dim_chaos::FaultPlan::new(9, 0.0));
    let zero_rate = run();
    dim_chaos::clear();
    assert_eq!(clean, zero_rate, "rate 0 must not change a single /verify byte");
    for (i, (status, body)) in clean.iter().enumerate() {
        match i % 3 {
            0 => {
                assert_eq!(*status, 200, "{body}");
                assert!(body.contains("\"accepted\":true"), "{body}");
            }
            1 => {
                assert_eq!(*status, 200, "{body}");
                assert!(body.contains("\"accepted\":false"), "{body}");
                assert!(body.contains("\"site\":\"+\""), "{body}");
            }
            _ => assert_eq!(*status, 422, "{body}"),
        }
    }
}

#[test]
fn chaos_rate_positive_degrades_structurally_and_reproducibly() {
    let _guard = chaos_lock();
    let (clean, _) = run_chaos_script(1);

    dim_chaos::install(dim_chaos::FaultPlan::new(11, 0.35));
    let (run_a, manifest_a) = run_chaos_script(1);
    let (run_b, manifest_b) = run_chaos_script(1);
    dim_chaos::clear();

    // The process surviving to this line is the "never exits" half of the
    // contract — injected panics were caught per-request.
    assert_eq!(run_a, run_b, "fixed plan + fixed script must reproduce exactly");
    assert_eq!(manifest_a, manifest_b, "quarantine manifest must reproduce");
    assert!(!manifest_a.is_empty(), "rate 0.35 over 40 requests must quarantine some");

    let degraded: Vec<&(u16, String)> = run_a.iter().filter(|(s, _)| *s == 503).collect();
    assert!(!degraded.is_empty(), "some requests must degrade");
    assert!(degraded.len() < run_a.len(), "some requests must survive");
    for (_, body) in &degraded {
        assert!(body.contains("\"degraded\":true"), "structured degraded body: {body}");
    }
    // Un-faulted slots answer exactly like the clean run.
    for ((sa, ba), (sc, bc)) in run_a.iter().zip(clean.iter()) {
        if *sa == 200 {
            assert_eq!((sa, ba), (sc, bc), "surviving responses must match clean bytes");
        }
    }
}

/// A rate-0 connection plan must be indistinguishable from no plan at all:
/// same response bytes, same quarantine (none), zero realized faults.
#[test]
fn conn_chaos_rate_zero_is_byte_identical_to_no_plan() {
    let _guard = chaos_lock();
    let (clean, clean_q) = run_chaos_script(1);
    dim_chaos::install_conn(dim_chaos::ConnPlan::new(13, 0.0));
    assert!(!dim_chaos::conn_enabled(), "a rate-0 plan must not arm the injector");
    let (zero_rate, zero_q) = run_chaos_script(1);
    dim_chaos::clear_conn();
    assert_eq!(clean, zero_rate, "conn-chaos rate 0 must not change a single byte");
    assert!(clean_q.is_empty() && zero_q.is_empty());
}

/// With every connection abrupt-closed at adoption, clients see clean
/// transport errors (never garbage bytes), the server neither panics nor
/// leaks permits, and clearing the plan restores service on the same server.
#[test]
fn conn_chaos_abrupt_close_surfaces_as_transport_error_and_clears() {
    let _guard = chaos_lock();
    let server = test_server(1, 8);
    let addr = server.addr();
    dim_chaos::install_conn(dim_chaos::ConnPlan {
        seed: 13,
        rate: 1.0,
        kinds: dim_chaos::ConnFaultKinds::only(dim_chaos::ConnFault::AbruptClose),
    });
    for _ in 0..3 {
        // The drop may surface as EOF, a reset, or a broken pipe depending
        // on whether our bytes were still unread — any *clean* error is the
        // contract; garbage bytes or a hang are not.
        let err = client::request(addr, "GET", "/healthz", "")
            .expect_err("every connection is dropped at adoption");
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
            ),
            "unexpected error kind: {err}"
        );
    }
    dim_chaos::clear_conn();
    let ok = client::request(addr, "GET", "/healthz", "").expect("served after clear");
    assert_eq!(ok.status, 200);
    let report = server.shutdown();
    assert_eq!(report.conn_faults, 3, "exactly the three faulted connections");
    assert_eq!(report.open_connections, 0, "faulted connections released their permits");
}

// ===================== sharded LRU under dim-par =====================

/// Applies each shard's operation subsequence as one dim-par task: the
/// per-shard order is fixed, so the final contents must be identical at
/// any width.
fn fill_cache(par: dim_par::Parallelism) -> ShardedLru {
    let cache = ShardedLru::new(4, 8);
    let keys: Vec<String> = (0..200).map(|i| format!("key-{i}")).collect();
    let mut by_shard: Vec<Vec<&String>> = vec![Vec::new(); cache.shard_count()];
    for key in &keys {
        by_shard[cache.shard_of(key)].push(key);
    }
    dim_par::par_map(par, &by_shard, |group| {
        for (i, key) in group.iter().enumerate() {
            cache.insert(key, format!("value-of-{key}"));
            if i % 3 == 0 {
                // Promotions shuffle the LRU order deterministically.
                let _ = cache.get(key);
            }
        }
    });
    cache
}

#[test]
fn lru_contents_identical_across_par_widths() {
    let sequential = fill_cache(dim_par::Parallelism::new(1));
    let wide = fill_cache(dim_par::Parallelism::new(4));
    assert_eq!(sequential.len(), wide.len());
    for shard in 0..sequential.shard_count() {
        assert_eq!(
            sequential.shard_keys(shard),
            wide.shard_keys(shard),
            "shard {shard} diverged between widths 1 and 4"
        );
    }
    // Capacity is enforced per shard.
    for shard in 0..sequential.shard_count() {
        assert!(sequential.shard_keys(shard).len() <= sequential.per_shard_capacity());
    }
}

// ===================== HTTP parser proptests =====================

fn render_request(target: &str, headers: &[(String, String)], body: &str) -> Vec<u8> {
    let mut raw = format!("POST {target} HTTP/1.1\r\n").into_bytes();
    for (name, value) in headers {
        raw.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    raw.extend_from_slice(format!("Content-Length: {}\r\n\r\n", body.len()).as_bytes());
    raw.extend_from_slice(body.as_bytes());
    raw
}

proptest! {
    /// Header soup + multi-script UTF-8 bodies: any well-formed frame
    /// parses back to its exact body bytes; header names survive as
    /// lowercase.
    #[test]
    fn parser_roundtrips_header_soup_and_utf8_bodies(
        headers in prop::collection::vec(("[a-z]{1,10}", "\\PC{0,24}"), 0..6),
        body in "\\PC{0,200}",
    ) {
        let raw = render_request("/link", &headers, &body);
        match http::parse(&raw) {
            Ok(Parsed::Complete { request, consumed }) => {
                prop_assert_eq!(consumed, raw.len());
                prop_assert_eq!(request.body.as_slice(), body.as_bytes());
                for (name, _) in &request.headers {
                    let lowered = name.to_ascii_lowercase();
                    prop_assert_eq!(&lowered, name);
                }
            }
            other => prop_assert!(false, "well-formed request failed: {:?}", other),
        }
    }

    /// Truncation at every byte is either `Partial` (a valid prefix) —
    /// never an error, never a panic — and feeding the remainder completes.
    #[test]
    fn parser_handles_truncation_at_any_byte(
        body in "\\PC{0,80}",
        cut_permille in 0usize..1000,
    ) {
        let raw = render_request("/annotate", &[], &body);
        let cut = cut_permille * raw.len() / 1000;
        match http::parse(&raw[..cut]) {
            Ok(Parsed::Partial) => {
                // Completing the frame must now parse cleanly.
                match http::parse(&raw) {
                    Ok(Parsed::Complete { consumed, .. }) => prop_assert_eq!(consumed, raw.len()),
                    other => prop_assert!(false, "full frame failed: {:?}", other),
                }
            }
            Ok(Parsed::Complete { .. }) => prop_assert!(cut == raw.len() || body.is_empty()),
            Err(e) => prop_assert!(false, "prefix of a valid request errored: {:?}", e),
        }
    }

    /// Oversize declarations — bodies past the 64 KiB `dimkb::degrade`
    /// record guard — are a clean `413` before any body byte is buffered,
    /// and garbage declarations are a clean `400`.
    #[test]
    fn parser_rejects_oversize_and_garbage_lengths_cleanly(
        over in 1usize..1_000_000,
        garbage in "[a-z]{1,8}",
    ) {
        let declared = http::MAX_BODY_BYTES + over;
        let raw = format!("POST /solve HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        match http::parse(raw.as_bytes()) {
            Err(e) => prop_assert_eq!(e.status(), 413),
            other => prop_assert!(false, "oversize accepted: {:?}", other),
        }
        let raw = format!("POST /solve HTTP/1.1\r\nContent-Length: {garbage}\r\n\r\n");
        match http::parse(raw.as_bytes()) {
            Err(e) => prop_assert!(e.status() == 400),
            other => prop_assert!(false, "garbage length accepted: {:?}", other),
        }
    }

    /// Arbitrary byte soup (not even HTTP) never panics the parser: every
    /// outcome is `Partial`, `Complete`, or a typed `4xx`/`5xx`.
    #[test]
    fn parser_never_panics_on_byte_soup(bytes in prop::collection::vec(0u8..=255u8, 0..300)) {
        match http::parse(&bytes) {
            Ok(_) => {}
            Err(e) => {
                let s = e.status();
                prop_assert!((400..=599).contains(&s), "status {s} out of range");
            }
        }
    }

    /// Every numeric `X-Deadline-Ms` value (with arbitrary surrounding
    /// whitespace) parses to a budget clamped into `[MIN_DEADLINE, max]` —
    /// never `Invalid`, never out of range, never a panic.
    #[test]
    fn deadline_budget_clamps_every_numeric_header(
        ms in 0u64..u64::MAX / 2,
        pad_left in "[ ]{0,3}",
        pad_right in "[ ]{0,3}",
        max_ms in 1u64..600_000,
    ) {
        let max = Duration::from_millis(max_ms);
        let raw = format!("{pad_left}{ms}{pad_right}");
        match parse_header_budget(Some(&raw), max) {
            HeaderBudget::Requested(d) => {
                prop_assert!(d >= MIN_DEADLINE, "below floor: {d:?}");
                prop_assert!(d <= max, "above ceiling: {d:?} > {max:?}");
                let clamped = Duration::from_millis(ms).clamp(MIN_DEADLINE, max);
                prop_assert_eq!(d, clamped);
            }
            other => prop_assert!(false, "numeric value {raw:?} parsed as {other:?}"),
        }
    }

    /// Any header value that is not a plain non-negative integer is
    /// `Invalid` (a deterministic `400` upstream), and an absent header is
    /// always `Default` — no input string can panic the parser.
    #[test]
    fn deadline_budget_rejects_non_numeric_headers(value in "\\PC{0,24}") {
        let max = Duration::from_secs(30);
        let expected_numeric = value.trim().parse::<u64>().is_ok();
        match parse_header_budget(Some(&value), max) {
            HeaderBudget::Requested(_) => prop_assert!(expected_numeric, "{value:?}"),
            HeaderBudget::Invalid => prop_assert!(!expected_numeric, "{value:?}"),
            HeaderBudget::Default => prop_assert!(false, "present header parsed as Default"),
        }
        prop_assert_eq!(parse_header_budget(None, max), HeaderBudget::Default);
    }
}
