//! `dimks` — a command-line interface to the dimensional knowledge system.
//!
//! ```text
//! dimks convert <value> <from-unit> <to-unit>   unit conversion
//! dimks link <mention> [context …]              rank candidate units
//! dimks annotate <text>                         find quantities in text
//! dimks dim <unit-expression>                   dimension + SI factor
//! dimks check <text>                            pairwise comparability
//! dimks info <unit>                             full Table II record
//! dimks top [k]                                 most frequent units
//! dimks search <query>                          free-text unit search
//! ```

use dimension_perception::core::DimKs;
use dimension_perception::kb::{expr, stats, DimUnitKb};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match command {
        "convert" => convert(&args[1..]),
        "link" => link(&args[1..]),
        "annotate" => annotate(&args[1..]),
        "dim" => dim(&args[1..]),
        "check" => check(&args[1..]),
        "info" => info(&args[1..]),
        "top" => top(&args[1..]),
        "search" => search_cmd(&args[1..]),
        _ => {
            eprintln!("unknown command {command:?}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  dimks convert <value> <from-unit> <to-unit>
  dimks link <mention> [context ...]
  dimks annotate <text>
  dimks dim <unit-expression>
  dimks check <text>
  dimks info <unit>
  dimks top [k]
  dimks search <query>";

fn convert(args: &[String]) -> ExitCode {
    let [value, from, to] = args else {
        eprintln!("usage: dimks convert <value> <from-unit> <to-unit>");
        return ExitCode::FAILURE;
    };
    let Ok(value) = value.parse::<f64>() else {
        eprintln!("not a number: {value:?}");
        return ExitCode::FAILURE;
    };
    let ks = DimKs::standard();
    let kb = ks.kb();
    let resolve = |surface: &str| ks.link(surface, "").first().map(|r| r.unit);
    let (Some(f), Some(t)) = (resolve(from), resolve(to)) else {
        eprintln!("cannot resolve one of the units");
        return ExitCode::FAILURE;
    };
    match kb.convert(value, f, t) {
        Ok(out) => {
            println!(
                "{value} {} = {out} {}",
                kb.unit(f).label_en,
                kb.unit(t).label_en
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("conversion refused: {e}");
            ExitCode::FAILURE
        }
    }
}

fn link(args: &[String]) -> ExitCode {
    let Some((mention, context)) = args.split_first() else {
        eprintln!("usage: dimks link <mention> [context ...]");
        return ExitCode::FAILURE;
    };
    let context = context.join(" ");
    let ks = DimKs::standard();
    let results = ks.link(mention, &context);
    if results.is_empty() {
        eprintln!("no candidates for {mention:?}");
        return ExitCode::FAILURE;
    }
    for (rank, r) in results.iter().enumerate() {
        let u = ks.kb().unit(r.unit);
        println!(
            "{:>2}. {:<28} [{}]  dim {:<10} score {:.4} (prior {:.2}, mention {:.2}, context {:.2})",
            rank + 1,
            u.label_en,
            u.code,
            u.dim.formula(),
            r.score,
            r.prior,
            r.mention_sim,
            r.context_prob
        );
    }
    ExitCode::SUCCESS
}

fn annotate(args: &[String]) -> ExitCode {
    let text = args.join(" ");
    if text.is_empty() {
        eprintln!("usage: dimks annotate <text>");
        return ExitCode::FAILURE;
    }
    let ks = DimKs::standard();
    let mentions = ks.annotate(&text);
    if mentions.is_empty() {
        println!("no quantities found");
        return ExitCode::SUCCESS;
    }
    for m in mentions {
        let u = ks.kb().unit(m.best_unit());
        println!(
            "[{}..{}] {} {} -> {} [{}], dim {}",
            m.start,
            m.end,
            m.value,
            m.unit_surface,
            u.label_en,
            u.code,
            u.dim.formula()
        );
    }
    ExitCode::SUCCESS
}

fn dim(args: &[String]) -> ExitCode {
    let input = args.join(" ");
    if input.is_empty() {
        eprintln!("usage: dimks dim <unit-expression>");
        return ExitCode::FAILURE;
    }
    let kb = DimUnitKb::shared();
    match expr::eval(&kb, &input) {
        Ok(v) => {
            println!("dim({input}) = {}", v.dim.formula());
            println!("vector form  = {}", v.dim.vector_form());
            println!("SI factor    = {:e}", v.factor);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let text = args.join(" ");
    if text.is_empty() {
        eprintln!("usage: dimks check <text>");
        return ExitCode::FAILURE;
    }
    let ks = DimKs::standard();
    let (mentions, pairs) = ks.comparability(&text);
    for (i, m) in mentions.iter().enumerate() {
        let u = ks.kb().unit(m.best_unit());
        println!("#{i}: {} {} ({}, dim {})", m.value, m.unit_surface, u.label_en, u.dim.formula());
    }
    let mut traps = 0;
    for (a, b, ok) in pairs {
        if !ok {
            traps += 1;
            println!("!! #{a} and #{b} are NOT comparable — the dimension law forbids mixing them");
        }
    }
    if traps == 0 {
        println!("all quantity pairs are dimensionally comparable");
    }
    ExitCode::SUCCESS
}

fn info(args: &[String]) -> ExitCode {
    let surface = args.join(" ");
    if surface.is_empty() {
        eprintln!("usage: dimks info <unit>");
        return ExitCode::FAILURE;
    }
    let ks = DimKs::standard();
    let kb = ks.kb();
    let Some(best) = ks.link(&surface, "").into_iter().next() else {
        eprintln!("unknown unit {surface:?}");
        return ExitCode::FAILURE;
    };
    let u = kb.unit(best.unit);
    println!("UnitID        {}", u.id);
    println!("Code          {}", u.code);
    println!("Label_en      {}", u.label_en);
    println!("Label_zh      {}", u.label_zh);
    println!("Symbol        {}", u.symbol);
    println!("Alias         {:?}", u.aliases);
    println!("Description   {}", u.description);
    println!("Keywords      {:?}", u.keywords);
    println!("Frequency     {:.3}", u.frequency);
    println!("QuantityKind  {}", kb.kind(u.kind).name_en);
    println!("DimensionVec  {} ({})", u.dim.vector_form(), u.dim.formula());
    println!("ConversionVal {}", u.conversion.factor);
    if u.conversion.is_affine() {
        println!("Offset        {}", u.conversion.offset);
    }
    ExitCode::SUCCESS
}

fn search_cmd(args: &[String]) -> ExitCode {
    let query = args.join(" ");
    if query.is_empty() {
        eprintln!("usage: dimks search <query>");
        return ExitCode::FAILURE;
    }
    let kb = DimUnitKb::shared();
    let hits = stats_free_search(&kb, &query);
    if hits.is_empty() {
        println!("no units match {query:?}");
        return ExitCode::SUCCESS;
    }
    for (i, hit) in hits.iter().enumerate() {
        let u = kb.unit(hit.unit);
        println!(
            "{:>2}. {:<26} [{}]  {} — dim {}  (score {:.2})",
            i + 1,
            u.label_en,
            u.code,
            u.label_zh,
            u.dim.formula(),
            hit.score
        );
    }
    ExitCode::SUCCESS
}

fn stats_free_search(
    kb: &DimUnitKb,
    query: &str,
) -> Vec<dimension_perception::kb::search::SearchHit> {
    dimension_perception::kb::search::search(kb, query, 10)
}

fn top(args: &[String]) -> ExitCode {
    let k: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(15);
    let kb = DimUnitKb::shared();
    for (i, (id, freq)) in stats::top_units(&kb, k).into_iter().enumerate() {
        println!("{:>3}. {:<26} {:.3}", i + 1, kb.unit(id).label_en, freq);
    }
    ExitCode::SUCCESS
}
