//! # dimension-perception
//!
//! A Rust reproduction of *Enhancing Quantitative Reasoning Skills of Large
//! Language Models through Dimension Perception* (ICDE 2024).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`kb`] — DimUnitKB, the dimensional unit knowledge base (§III-A);
//! * [`link`] — the unit linking module and text annotator (§III-B);
//! * [`eval`] — the DimEval benchmark, construction algorithms and metrics
//!   (§IV);
//! * [`mwp`] — math word problems, the equation engine and quantity-
//!   oriented augmentation (§V);
//! * [`models`] — the model substrate: simulated baselines, the Wolfram
//!   tool engine, and the trainable TinyLM suite;
//! * [`core`] — the three-step framework and the experiment runners;
//! * [`embed`], [`kgraph`], [`corpus`] — supporting substrates.
//!
//! ```
//! use dimension_perception::kb::DimUnitKb;
//!
//! let kb = DimUnitKb::shared();
//! let pdl = kb.unit_by_code("PDL").unwrap();
//! let dyncm = kb.unit_by_code("DYN-PER-CentiM").unwrap();
//! // The Fig. 1 unit trap: poundal and dyn/cm are NOT comparable.
//! assert!(!pdl.dim.comparable(dyncm.dim));
//! ```

/// DimUnitKB: dimension vectors, units, kinds, conversion (re-export of `dimkb`).
pub use dimkb as kb;

/// Word embeddings and bilingual tokenization (re-export of `dim-embed`).
pub use dim_embed as embed;

/// The triple-store substrate (re-export of `dim-kgraph`).
pub use dim_kgraph as kgraph;

/// Zero-dependency tracing/metrics layer (re-export of `dim-obs`).
pub use dim_obs as obs;

/// Corpus generation and the masked-LM filter (re-export of `dim-corpus`).
pub use dim_corpus as corpus;

/// Unit linking and annotation (re-export of `dimlink`).
pub use dimlink as link;

/// The DimEval benchmark (re-export of `dimeval`).
pub use dimeval as eval;

/// Math word problems and augmentation (re-export of `dim-mwp`).
pub use dim_mwp as mwp;

/// The model substrate (re-export of `dim-models`).
pub use dim_models as models;

/// The framework and experiments (re-export of `dim-core`).
pub use dim_core as core;
