.PHONY: verify build test clippy smoke golden no-artifacts bench-baseline

# Full offline verification: release build, workspace tests, lints, the
# golden-results harness, a quick end-to-end smoke of the experiment suite
# (with the metrics layer live), and a check that no build artifacts are
# tracked. No network required.
verify: build test clippy golden smoke no-artifacts

build:
	cargo build --workspace --release

test:
	cargo test --workspace -q

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

# Byte-compares regenerated paper outputs against the committed transcripts
# in results/. After an intentional output change, refresh with
#   UPDATE_GOLDEN=1 cargo test --test golden_results
# and review the results/ diff.
golden:
	cargo test --release --test golden_results -q

smoke:
	cargo run --release -p dim-bench --bin all_experiments -- --quick --obs

# target/ must never be committed (it is in .gitignore; this catches
# force-adds and historical regressions).
no-artifacts:
	test -z "$$(git ls-files target/)"

# Regenerates BENCH_baseline.json (criterion micro-benchmarks with JSON
# aggregation; see EXPERIMENTS.md "Micro-benchmark methodology").
bench-baseline:
	BENCH_JSON=$(CURDIR)/BENCH_baseline.json cargo bench --workspace
