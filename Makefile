.PHONY: verify build test clippy smoke bench-baseline

# Full offline verification: release build, workspace tests, lints, and a
# quick end-to-end smoke of the experiment suite. No network required.
verify: build test clippy smoke

build:
	cargo build --workspace --release

test:
	cargo test --workspace -q

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

smoke:
	cargo run --release -p dim-bench --bin all_experiments -- --quick

# Regenerates BENCH_baseline.json (criterion micro-benchmarks with JSON
# aggregation; see EXPERIMENTS.md "Micro-benchmark methodology").
bench-baseline:
	BENCH_JSON=$(CURDIR)/BENCH_baseline.json cargo bench --workspace
