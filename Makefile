.PHONY: verify build test clippy lint lint-gate smoke golden chaos serve-smoke serve-soak no-panic-hotpath no-artifacts bench-baseline bench-serve bench-gate snap-gate verify-gate

# Full offline verification: release build, workspace tests, lints (clippy
# plus the dim-lint invariant engine), the golden-results harness, the
# chaos (fault-injection) harness, a quick end-to-end smoke of the
# experiment suite (with the metrics layer live), the serving-layer smoke
# (golden HTTP transcript over an ephemeral port), the overload/chaos soak
# gate, and a check that no build artifacts are tracked. No network
# required.
verify: build test clippy lint golden chaos smoke serve-smoke serve-soak bench-gate snap-gate lint-gate verify-gate no-artifacts

build:
	cargo build --workspace --release

test:
	cargo test --workspace -q

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

# Byte-compares regenerated paper outputs against the committed transcripts
# in results/. After an intentional output change, refresh with
#   UPDATE_GOLDEN=1 cargo test --test golden_results
# and review the results/ diff.
golden:
	cargo test --release --test golden_results -q

smoke:
	cargo run --release -p dim-bench --bin all_experiments -- --quick --obs

# Deterministic fault-injection harness: rate 0 must be byte-identical to
# the clean run, rate > 0 must complete panic-free with a reproducible
# quarantine manifest (see tests/chaos.rs and DESIGN.md §9).
chaos:
	cargo test --release --test chaos -q

# Serving-layer smoke: runs the fixed request script against an in-process
# dim-serve on an ephemeral port and byte-compares the transcript with
# results/quick/serve.txt. Refresh after an intentional change with
#   UPDATE_GOLDEN=1 cargo test --test serve
serve-smoke:
	cargo test --release --test serve -q

# Overload/chaos soak gate: four short deterministic soaks of an
# overloaded in-process server (clients beyond the admission limit, tight
# deadlines). Asserts the deterministic block is byte-identical across
# identical runs and under a rate-0 connection-fault plan, and that a
# positive-rate plan (stall / partial-write / abrupt-close) is survived
# with zero panics, zero leaked connection permits, and unchanged final
# response bytes (see EXPERIMENTS.md "Overload soak methodology").
serve-soak:
	cargo run --release -p dim-serve --bin serve_soak

# The workspace invariant linter (crates/lint, DESIGN.md §11 and §16):
# the string- and comment-aware per-file rules (no-panic-hotpath,
# determinism, thread-discipline, relaxed-ordering, zero-dep, hot-alloc)
# plus the --deep workspace analyses over the cross-crate call graph
# (panic-reachability, lock-order, atomic-pairing). Exits nonzero on any
# error-severity finding; warnings print but do not gate. Also writes the
# machine-readable v2 report consumed alongside obs_report.json.
lint:
	cargo run --release -p dim-lint --bin dimlint -- --deep --json lint_report.json

# Deep-lint regression gate: byte-identical reports at thread widths 1
# and 4, and a 20-sample median runtime budget for the full deep run
# (see EXPERIMENTS.md "Deep-lint gate").
lint-gate:
	cargo run --release -p dim-bench --bin lint_gate

# The no-panic rule alone (degraded-mode hot paths must degrade, never
# die). Kept as a named target because it predates the full engine; it now
# shells to dim-lint instead of the old awk scan, which could not see
# strings, comments, or `#[cfg(test)]` regions past the first marker.
no-panic-hotpath:
	cargo run --release -p dim-lint --bin dimlint -- --rule no-panic-hotpath

# target/ must never be committed (it is in .gitignore; this catches
# force-adds and historical regressions).
no-artifacts:
	test -z "$$(git ls-files target/)"

# Thread-width regression gate: re-times the two batch benchmarks at
# widths 1 and 4 in-process and fails if the width-4 median is slower than
# width-1 beyond a 10% noise tolerance (see EXPERIMENTS.md "Thread-width
# regression gate"). Pins the ROADMAP item 1 invariant that parallelism
# must never hurt.
bench-gate:
	cargo run --release -p dim-bench --bin bench_gate

# Snapshot cold-start gate: emit determinism, decode/re-emit identity,
# record fidelity, and a <100 us median validation time for SnapKb::load
# (see EXPERIMENTS.md "Snapshot cold-start gate").
snap-gate:
	cargo run --release -p dim-bench --bin snap_gate

# Dimensional-verification regression gate: regenerates the dim-verify
# repair table and the perturbation detection table at thread widths 1
# and 4, byte-compares them against results/quick/verify_repair.txt and
# verify_perturb.txt, and asserts the after >= before repair invariant
# plus nonzero detection on every mutation class (see EXPERIMENTS.md
# "Perturbation methodology"). Refresh goldens after an intentional
# change with
#   UPDATE_GOLDEN=1 cargo run --release -p dim-bench --bin verify_gate
verify-gate:
	cargo run --release -p dim-bench --bin verify_gate

# Regenerates BENCH_baseline.json (criterion micro-benchmarks with JSON
# aggregation; see EXPERIMENTS.md "Micro-benchmark methodology").
bench-baseline:
	BENCH_JSON=$(CURDIR)/BENCH_baseline.json cargo bench --workspace

# Regenerates BENCH_serve.json: the seeded retrying load generator over an
# in-process dim-serve in the overload soak profile — ≥100k logical
# requests against a server admitting fewer connections than there are
# clients (see EXPERIMENTS.md "Serving-layer load methodology"). The
# "deterministic" block must be byte-identical run-to-run; the "load" and
# "timing" blocks vary with the machine.
bench-serve:
	cargo run --release -p dim-serve --bin loadgen -- --soak --out $(CURDIR)/BENCH_serve.json
