.PHONY: verify build test clippy smoke golden chaos no-panic-hotpath no-artifacts bench-baseline

# Full offline verification: release build, workspace tests, lints, the
# golden-results harness, the chaos (fault-injection) harness, a quick
# end-to-end smoke of the experiment suite (with the metrics layer live),
# the no-panic hot-path lint, and a check that no build artifacts are
# tracked. No network required.
verify: build test clippy golden chaos smoke no-panic-hotpath no-artifacts

build:
	cargo build --workspace --release

test:
	cargo test --workspace -q

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

# Byte-compares regenerated paper outputs against the committed transcripts
# in results/. After an intentional output change, refresh with
#   UPDATE_GOLDEN=1 cargo test --test golden_results
# and review the results/ diff.
golden:
	cargo test --release --test golden_results -q

smoke:
	cargo run --release -p dim-bench --bin all_experiments -- --quick --obs

# Deterministic fault-injection harness: rate 0 must be byte-identical to
# the clean run, rate > 0 must complete panic-free with a reproducible
# quarantine manifest (see tests/chaos.rs and DESIGN.md §9).
chaos:
	cargo test --release --test chaos -q

# Degraded-mode hot paths must stay panic-free: no new `.unwrap()` or
# `.expect(` may appear in dimlink, core::pipeline, or par outside test
# code. Scans each file only up to its first `#[cfg(test)]` marker.
no-panic-hotpath:
	@bad=0; \
	for f in crates/dimlink/src/*.rs crates/core/src/pipeline.rs crates/par/src/*.rs; do \
		hits=$$(awk '/#\[cfg\(test\)\]/ { exit } /\.unwrap\(\)|\.expect\(/ { print FILENAME ":" FNR ": " $$0 }' $$f); \
		if [ -n "$$hits" ]; then echo "$$hits"; bad=1; fi; \
	done; \
	if [ $$bad -ne 0 ]; then echo "no-panic-hotpath: unwrap()/expect( found in hot-path code (quarantine or propagate a typed error instead)"; exit 1; fi
	@echo "no-panic-hotpath: clean"

# target/ must never be committed (it is in .gitignore; this catches
# force-adds and historical regressions).
no-artifacts:
	test -z "$$(git ls-files target/)"

# Regenerates BENCH_baseline.json (criterion micro-benchmarks with JSON
# aggregation; see EXPERIMENTS.md "Micro-benchmark methodology").
bench-baseline:
	BENCH_JSON=$(CURDIR)/BENCH_baseline.json cargo bench --workspace
